#!/usr/bin/env python3
"""Inspect HammerHead's reputation scores and schedule changes directly.

This example uses the library below the network layer: it grows a DAG by
hand (as each validator's local view would), runs the Bullshark commit
rule with a HammerHead schedule manager on top, and prints how reputation
scores evolve and how the leader schedule changes when some validators
stop voting.  It is the quickest way to understand the mechanism without
running a full simulation.

Run with::

    python examples/schedule_inspection.py
"""

from __future__ import annotations

from repro import (
    BullsharkConsensus,
    CommitCountPolicy,
    Committee,
    DagStore,
    HammerHeadScheduleManager,
    genesis_vertices,
    initial_schedule,
    make_vertex,
)


def build_round(dag, committee, round_number, participants):
    """Create one vertex per participant, referencing the previous round."""
    parents = [vertex.id for vertex in dag.vertices_at(round_number - 1)]
    vertices = []
    for source in participants:
        vertex = make_vertex(round_number, source, edges=parents)
        dag.add(vertex)
        vertices.append(vertex)
    return vertices


def main() -> None:
    committee = Committee.build(10)
    dag = DagStore(committee)
    schedule = initial_schedule(committee, seed=0, permute=False)
    manager = HammerHeadScheduleManager(
        committee,
        schedule,
        policy=CommitCountPolicy(4),      # change the schedule every 4 commits
        exclude_fraction=1.0 / 3.0,
    )
    consensus = BullsharkConsensus(
        owner=0, committee=committee, dag=dag, schedule_manager=manager, record_sequence=True
    )

    for vertex in genesis_vertices(committee):
        dag.add(vertex)

    # Validators 7, 8, 9 crash after round 6: they stop producing vertices
    # and therefore stop voting for leaders.
    crashed_after = 6
    crashed = {7, 8, 9}
    print("Initial schedule slots:", list(schedule.slots))
    print()

    for round_number in range(1, 41):
        if round_number <= crashed_after:
            participants = list(committee.validators)
        else:
            participants = [v for v in committee.validators if v not in crashed]
        for vertex in build_round(dag, committee, round_number, participants):
            consensus.process_vertex(vertex)

    print(f"Committed {consensus.commit_count} anchors over 40 rounds.")
    print(f"The schedule changed {len(manager.change_records)} times:")
    print()
    for record in manager.change_records:
        demoted = [
            validator
            for validator in committee.validators
            if manager.history[record.epoch].slots_of(validator) == 0
        ]
        print(
            f"  epoch {record.epoch:2d} (from round {record.new_initial_round:3d}): "
            f"scores={{{', '.join(f'{v}:{int(s)}' for v, s in sorted(record.scores.items()))}}} "
            f"-> validators without slots: {demoted}"
        )
    print()
    final = manager.active_schedule
    print("Final schedule slots:", list(final.slots))
    print(f"Crashed validators {sorted(crashed)} hold "
          f"{sum(final.slots_of(v) for v in crashed)} slots in the final schedule.")


if __name__ == "__main__":
    main()
