#!/usr/bin/env python3
"""Quickstart: run HammerHead and baseline Bullshark on a small committee.

This script runs two short simulated deployments (10 validators, 3 of
them crashed) — one with the HammerHead reputation schedule and one with
the static round-robin baseline — and prints the resulting performance
side by side, together with the schedule changes HammerHead performed.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ExperimentConfig, format_table, run_experiment


def main() -> None:
    reports = []
    results = {}
    for protocol in ("hammerhead", "bullshark"):
        config = ExperimentConfig(
            protocol=protocol,
            committee_size=10,
            faults=3,                 # the maximum a committee of 10 tolerates
            input_load_tps=1000.0,
            duration=80.0,
            warmup=40.0,
            commits_per_schedule=10,  # the paper's evaluation parameter
            seed=1,
        )
        print(f"Running {config.label()} ...")
        result = run_experiment(config)
        results[protocol] = result
        reports.append(result.report)

    print()
    print(format_table(reports, title="HammerHead vs Bullshark, 10 validators, 3 crashed"))

    hammerhead = results["hammerhead"]
    print()
    print(f"HammerHead performed {hammerhead.report.schedule_changes} schedule changes.")
    print("Leaders that committed anchors (validator id -> commits):")
    for leader, commits in sorted(hammerhead.commits_per_leader.items()):
        print(f"  validator {leader:2d}: {commits}")
    crashed = hammerhead.crashed_validators
    print(f"Crashed validators {crashed} were excluded from the leader schedule; ")
    print("the static baseline kept electing them, which is why its latency is higher.")


if __name__ == "__main__":
    main()
