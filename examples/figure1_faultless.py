#!/usr/bin/env python3
"""Reproduce Figure 1: latency/throughput in ideal conditions (no faults).

The paper runs HammerHead and Bullshark with 10, 50, and 100 honest
validators under increasing load.  This script regenerates the same
series on the simulator by compiling the registered ``faultless``
scenario — by default with reduced committee sizes and durations so it
finishes in a few minutes; pass ``--paper-scale`` for the full committee
sizes of the paper (much slower).

Run with::

    python examples/figure1_faultless.py
    python examples/figure1_faultless.py --committees 10 50 --loads 1000 3000 4500
    python -m repro.scenarios run faultless           # the raw scenario
"""

from __future__ import annotations

import argparse

from repro import format_table
from repro.scenarios import compile_spec, get_scenario
from repro.sim.sweep import run_sweep


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--committees", type=int, nargs="+", default=[10, 25])
    parser.add_argument(
        "--loads", type=float, nargs="+", default=[1000.0, 2500.0, 4000.0]
    )
    parser.add_argument("--duration", type=float, default=40.0)
    parser.add_argument("--warmup", type=float, default=10.0)
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's committee sizes (10, 50, 100) and longer runs",
    )
    parser.add_argument(
        "--parallelism",
        type=int,
        default=None,
        help="worker processes for the sweep (default: REPRO_SWEEP_PARALLELISM "
        "or the CPU count); results are identical at any setting",
    )
    return parser.parse_args()


def build_spec(args: argparse.Namespace):
    """The faultless scenario with this invocation's overrides."""
    committees = (10, 50, 100) if args.paper_scale else tuple(args.committees)
    duration = 120.0 if args.paper_scale else args.duration
    warmup = 20.0 if args.paper_scale else args.warmup
    return get_scenario("faultless").with_overrides(
        committee_sizes=committees,
        loads=tuple(args.loads),
        duration=duration,
        warmup=warmup,
        seed=args.seed,
    )


def main() -> None:
    args = parse_args()
    spec = build_spec(args)

    all_reports = []
    for committee_size in spec.committee_sizes:
        points = compile_spec(spec.with_overrides(committee_sizes=(committee_size,)))
        print(f"Sweeping committee of {committee_size} validators ...")
        results = run_sweep(
            [point.config for point in points], parallelism=args.parallelism
        )
        all_reports.extend(result.report for result in results)

    print()
    print(
        format_table(
            all_reports,
            title="Figure 1 - latency/throughput with no faults (HammerHead vs Bullshark)",
        )
    )
    print()
    print("Expected shape (paper, Figure 1): both systems reach the same peak")
    print("throughput; HammerHead's latency is no worse than Bullshark's.")
    print(f"(scenario_digest: {spec.scenario_digest()})")


if __name__ == "__main__":
    main()
