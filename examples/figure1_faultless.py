#!/usr/bin/env python3
"""Reproduce Figure 1: latency/throughput in ideal conditions (no faults).

The paper runs HammerHead and Bullshark with 10, 50, and 100 honest
validators under increasing load.  This script regenerates the same
series on the simulator.  By default it uses reduced committee sizes and
durations so it finishes in a few minutes; pass ``--paper-scale`` for the
full committee sizes of the paper (much slower).

Run with::

    python examples/figure1_faultless.py
    python examples/figure1_faultless.py --committees 10 50 --loads 1000 3000 4500
"""

from __future__ import annotations

import argparse

from repro import ExperimentConfig, format_table
from repro.sim.sweep import compare_systems


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--committees", type=int, nargs="+", default=[10, 25])
    parser.add_argument(
        "--loads", type=float, nargs="+", default=[1000.0, 2500.0, 4000.0]
    )
    parser.add_argument("--duration", type=float, default=40.0)
    parser.add_argument("--warmup", type=float, default=10.0)
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's committee sizes (10, 50, 100) and longer runs",
    )
    parser.add_argument(
        "--parallelism",
        type=int,
        default=None,
        help="worker processes for the sweep (default: REPRO_SWEEP_PARALLELISM "
        "or the CPU count); results are identical at any setting",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    committees = [10, 50, 100] if args.paper_scale else args.committees
    duration = 120.0 if args.paper_scale else args.duration
    warmup = 20.0 if args.paper_scale else args.warmup

    all_reports = []
    for committee_size in committees:
        base = ExperimentConfig(
            committee_size=committee_size,
            faults=0,
            duration=duration,
            warmup=warmup,
            seed=args.seed,
            commits_per_schedule=10,
        )
        print(f"Sweeping committee of {committee_size} validators ...")
        curves = compare_systems(base, loads=args.loads, parallelism=args.parallelism)
        for protocol, results in curves.items():
            for result in results:
                all_reports.append(result.report)

    print()
    print(
        format_table(
            all_reports,
            title="Figure 1 - latency/throughput with no faults (HammerHead vs Bullshark)",
        )
    )
    print()
    print("Expected shape (paper, Figure 1): both systems reach the same peak")
    print("throughput; HammerHead's latency is no worse than Bullshark's.")


if __name__ == "__main__":
    main()
