#!/usr/bin/env python3
"""Reproduce Figure 2: latency/throughput under maximum crash faults.

The paper crashes the maximum tolerable number of validators (3/16/33 for
committees of 10/50/100) and shows that baseline Bullshark loses 25-40%
throughput and 2-3x latency, while HammerHead keeps its fault-free
performance.  This script regenerates those series on the simulator.

Run with::

    python examples/figure2_faults.py
    python examples/figure2_faults.py --committees 10 --loads 1000 2500 4000
"""

from __future__ import annotations

import argparse

from repro import ExperimentConfig, format_table
from repro.sim.sweep import compare_systems


def max_faults(committee_size: int) -> int:
    return (committee_size - 1) // 3


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--committees", type=int, nargs="+", default=[10, 25])
    parser.add_argument("--loads", type=float, nargs="+", default=[1000.0, 2500.0, 4000.0])
    parser.add_argument("--duration", type=float, default=80.0)
    parser.add_argument(
        "--warmup",
        type=float,
        default=40.0,
        help="measurement starts here; generous so HammerHead's first schedule "
        "epoch (still containing the crashed leaders) is excluded, as in the "
        "paper's 10-minute steady-state runs",
    )
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument("--paper-scale", action="store_true")
    parser.add_argument(
        "--parallelism",
        type=int,
        default=None,
        help="worker processes for the sweep (default: REPRO_SWEEP_PARALLELISM "
        "or the CPU count); results are identical at any setting",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    committees = [10, 50, 100] if args.paper_scale else args.committees
    duration = 180.0 if args.paper_scale else args.duration
    warmup = 80.0 if args.paper_scale else args.warmup

    all_reports = []
    for committee_size in committees:
        faults = max_faults(committee_size)
        base = ExperimentConfig(
            committee_size=committee_size,
            faults=faults,
            duration=duration,
            warmup=warmup,
            seed=args.seed,
            commits_per_schedule=10,
        )
        print(f"Sweeping committee of {committee_size} validators with {faults} crashed ...")
        curves = compare_systems(base, loads=args.loads, parallelism=args.parallelism)
        for protocol, results in curves.items():
            for result in results:
                all_reports.append(result.report)

    print()
    print(
        format_table(
            all_reports,
            title="Figure 2 - latency/throughput under maximum crash faults",
        )
    )
    print()
    print("Expected shape (paper, Figure 2): Bullshark suffers a large latency")
    print("increase and a throughput drop; HammerHead stays close to its")
    print("fault-free performance because crashed validators lose their slots.")


if __name__ == "__main__":
    main()
