#!/usr/bin/env python3
"""Reproduce Figure 2: latency/throughput under maximum crash faults.

The paper crashes the maximum tolerable number of validators (3/16/33 for
committees of 10/50/100) and shows that baseline Bullshark loses 25-40%
throughput and 2-3x latency, while HammerHead keeps its fault-free
performance.  This script regenerates those series by compiling the
registered ``figure2-faults`` scenario, whose fault timeline crashes the
maximum tolerable ``f`` at t=0 for every committee size.

Run with::

    python examples/figure2_faults.py
    python examples/figure2_faults.py --committees 10 --loads 1000 2500 4000
    python -m repro.scenarios run figure2-faults      # the raw scenario
"""

from __future__ import annotations

import argparse

from repro import format_table
from repro.scenarios import compile_spec, get_scenario
from repro.sim.sweep import run_sweep


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--committees", type=int, nargs="+", default=[10, 25])
    parser.add_argument("--loads", type=float, nargs="+", default=[1000.0, 2500.0, 4000.0])
    parser.add_argument("--duration", type=float, default=80.0)
    parser.add_argument(
        "--warmup",
        type=float,
        default=40.0,
        help="measurement starts here; generous so HammerHead's first schedule "
        "epoch (still containing the crashed leaders) is excluded, as in the "
        "paper's 10-minute steady-state runs",
    )
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument("--paper-scale", action="store_true")
    parser.add_argument(
        "--parallelism",
        type=int,
        default=None,
        help="worker processes for the sweep (default: REPRO_SWEEP_PARALLELISM "
        "or the CPU count); results are identical at any setting",
    )
    return parser.parse_args()


def build_spec(args: argparse.Namespace):
    """The figure2-faults scenario with this invocation's overrides."""
    committees = (10, 50, 100) if args.paper_scale else tuple(args.committees)
    duration = 180.0 if args.paper_scale else args.duration
    warmup = 80.0 if args.paper_scale else args.warmup
    return get_scenario("figure2-faults").with_overrides(
        committee_sizes=committees,
        loads=tuple(args.loads),
        duration=duration,
        warmup=warmup,
        seed=args.seed,
    )


def main() -> None:
    args = parse_args()
    spec = build_spec(args)

    all_reports = []
    for committee_size in spec.committee_sizes:
        points = compile_spec(spec.with_overrides(committee_sizes=(committee_size,)))
        faults = points[0].config.faults
        print(f"Sweeping committee of {committee_size} validators with {faults} crashed ...")
        results = run_sweep(
            [point.config for point in points], parallelism=args.parallelism
        )
        all_reports.extend(result.report for result in results)

    print()
    print(
        format_table(
            all_reports,
            title="Figure 2 - latency/throughput under maximum crash faults",
        )
    )
    print()
    print("Expected shape (paper, Figure 2): Bullshark suffers a large latency")
    print("increase and a throughput drop; HammerHead stays close to its")
    print("fault-free performance because crashed validators lose their slots.")
    print(f"(scenario_digest: {spec.scenario_digest()})")


if __name__ == "__main__":
    main()
