#!/usr/bin/env python3
"""Reproduce the Sui mainnet incident described in the introduction.

On August 29, roughly 10% of the validators became less responsive for
two hours.  Although the system was under low load (about 130 tx/s), p95
latency rose from 3.0 s to 4.6 s and p50 from 1.9 s to 2.2 s, because the
static leader schedule kept electing the degraded validators.  This
script reproduces the scenario at low load and shows how HammerHead
removes the degraded validators from the schedule and restores latency.

The incident is a registered scenario — this script is a thin wrapper
over the declarative spec, comparing it against its healthy twin::

    python examples/sui_incident.py
    python examples/sui_incident.py --committee 26 --extra-delay 0.8
    python -m repro.scenarios run sui-incident        # the raw scenario
"""

from __future__ import annotations

import argparse

from repro import format_table, run_experiment
from repro.scenarios import FaultSpec, compile_spec, get_scenario


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--committee", type=int, default=13, help="one validator per AWS region")
    parser.add_argument("--load", type=float, default=130.0, help="the incident's ~130 tx/s")
    parser.add_argument("--fraction", type=float, default=0.10)
    parser.add_argument("--extra-delay", type=float, default=0.6)
    parser.add_argument("--duration", type=float, default=90.0)
    parser.add_argument("--warmup", type=float, default=40.0)
    parser.add_argument("--seed", type=int, default=5)
    return parser.parse_args()


def build_spec(args: argparse.Namespace):
    """The sui-incident scenario with this invocation's overrides."""
    return get_scenario("sui-incident").with_overrides(
        committee_sizes=(args.committee,),
        loads=(args.load,),
        duration=args.duration,
        warmup=args.warmup,
        seed=args.seed,
        faults=(
            FaultSpec(kind="slow", fraction=args.fraction, extra_delay=args.extra_delay),
        ),
    )


def main() -> None:
    args = parse_args()
    spec = build_spec(args)
    degraded_configs = {
        point.protocol: point.config for point in compile_spec(spec)
    }
    healthy_configs = {
        point.protocol: point.config for point in compile_spec(spec.without_faults())
    }
    reports = []
    results = {}
    for protocol in spec.protocols:
        for degraded in (False, True):
            config = (degraded_configs if degraded else healthy_configs)[protocol]
            label = f"{protocol}, {'degraded' if degraded else 'healthy'}"
            print(f"Running {label} ...")
            result = run_experiment(config)
            result.report.extra["degraded_validators"] = 1.0 if degraded else 0.0
            results[(protocol, degraded)] = result
            reports.append(result.report)

    print()
    print(format_table(reports, title="Sui incident scenario - 10% degraded validators, low load"))
    print()
    healthy = results[("bullshark", False)]
    static = results[("bullshark", True)]
    dynamic = results[("hammerhead", True)]
    print(f"Static schedule:     p50 {static.report.p50_latency_s:.2f}s, p95 {static.report.p95_latency_s:.2f}s")
    print(f"Healthy baseline:    p50 {healthy.report.p50_latency_s:.2f}s, p95 {healthy.report.p95_latency_s:.2f}s")
    print(f"HammerHead degraded: p50 {dynamic.report.p50_latency_s:.2f}s, p95 {dynamic.report.p95_latency_s:.2f}s")
    print()
    print("As in the incident, the static schedule's tail latency rises even at")
    print("low load; HammerHead demotes the degraded validators after the first")
    print("schedule epoch and latency returns close to the healthy baseline.")
    print(f"(scenario_digest: {spec.scenario_digest()})")


if __name__ == "__main__":
    main()
