"""Shared assertions for the repository's CLI exit-code contract.

Every ``python -m repro.*`` entry point routes its command handlers
through :func:`repro.cliutil.run_guarded` and therefore promises:

* exit 0 on success (including a downstream ``BrokenPipeError`` — a
  closed pager is not an error);
* exit 1 on findings/divergence (the handler's own return value);
* exit 2 on operational errors (``ReproError`` or ``OSError``), with a
  single ``error: ...`` line on stderr, nothing on stdout, and never a
  traceback.

The CLI test modules import these helpers (``from tests.cli_contract
import ...``) instead of copy-pasting the capsys plumbing and the
contract assertions per CLI.
"""

from repro.cliutil import EXIT_ERROR, EXIT_FINDINGS, EXIT_OK  # noqa: F401 - re-exported


def run_cli(main, capsys, *argv):
    """Invoke a CLI ``main`` and return ``(exit_code, stdout, stderr)``."""
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def assert_ok(main, capsys, *argv):
    """Assert a clean run: exit 0, empty stderr.  Returns stdout."""
    code, out, err = run_cli(main, capsys, *argv)
    assert code == EXIT_OK, f"expected exit {EXIT_OK}, got {code} (stderr: {err!r})"
    assert err == ""
    return out


def assert_error_contract(main, capsys, *argv, match=None):
    """Assert the operational-error contract: exit 2, one stderr
    ``error:`` line, clean stdout.  Returns stderr for extra checks."""
    code, out, err = run_cli(main, capsys, *argv)
    assert code == EXIT_ERROR, f"expected exit {EXIT_ERROR}, got {code} (stdout: {out!r})"
    assert out == ""
    assert err.startswith("error:"), f"stderr must be a single 'error:' line, got {err!r}"
    assert "Traceback" not in err
    if match is not None:
        assert match in err, f"expected {match!r} in stderr, got {err!r}"
    return err
