"""End-to-end integration tests: full simulated deployments.

These tests run complete experiments through the public API and check the
paper's protocol-level properties: liveness, total order across
validators, schedule agreement, and determinism.
"""

import pytest

from repro.sim.experiment import ExperimentConfig, run_experiment
from repro.sim.runner import SimulationRunner


def small_config(**overrides):
    """A fast experiment configuration for integration tests."""
    base = dict(
        protocol="hammerhead",
        committee_size=4,
        input_load_tps=150.0,
        duration=20.0,
        warmup=4.0,
        seed=3,
        commits_per_schedule=4,
        latency_model="uniform",
        leader_timeout=1.0,
        min_round_interval=0.10,
        record_sequences=True,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def run_runner(config):
    runner = SimulationRunner(config)
    result = runner.run()
    return runner, result


class TestFaultlessRuns:
    def test_hammerhead_is_live_and_commits_load(self):
        result = run_experiment(small_config())
        assert result.report.commits > 10
        assert result.report.throughput_tps > 100.0
        assert 0.0 < result.report.avg_latency_s < 3.0
        assert result.report.schedule_changes >= 1

    def test_bullshark_baseline_is_live(self):
        result = run_experiment(small_config(protocol="bullshark"))
        assert result.report.commits > 10
        assert result.report.throughput_tps > 100.0
        assert result.report.schedule_changes == 0

    def test_total_order_across_validators(self):
        runner, _ = run_runner(small_config())
        sequences = [node.consensus.ordered_ids() for node in runner.nodes.values()]
        shortest = min(len(sequence) for sequence in sequences)
        assert shortest > 50
        reference = sequences[0][:shortest]
        for sequence in sequences[1:]:
            assert sequence[:shortest] == reference

    def test_schedule_agreement_across_validators(self):
        """Proposition 1: every validator walks the same schedule sequence."""
        runner, result = run_runner(small_config(committee_size=7, duration=25.0))
        histories = list(result.schedule_histories.values())
        # Validators may have advanced a different number of epochs, but the
        # histories must agree on their common prefix.
        shortest = min(len(history) for history in histories)
        assert shortest >= 2
        for history in histories:
            assert history[:shortest] == histories[0][:shortest]
        # And the slot assignments themselves agree, not only the rounds.
        slot_histories = [
            [tuple(schedule.slots) for schedule in node.schedule_manager.history]
            for node in runner.nodes.values()
        ]
        for slots in slot_histories:
            assert slots[:shortest] == slot_histories[0][:shortest]

    def test_every_validator_commits_every_transaction_once(self):
        runner, result = run_runner(small_config(input_load_tps=100.0, duration=15.0))
        observer = runner.nodes[0]
        seen = [
            transaction.tx_id
            for record in observer.consensus.ordered_sequence
            for transaction in record.vertex.block
        ]
        assert len(seen) == len(set(seen))
        assert result.report.committed_transactions > 0

    def test_no_leader_timeouts_without_faults(self):
        _, result = run_runner(small_config())
        assert sum(result.leader_timeouts.values()) == 0

    def test_all_validators_lead_commits_under_round_robin(self):
        _, result = run_runner(small_config(protocol="bullshark", duration=25.0))
        assert set(result.commits_per_leader.keys()) == set(range(4))


class TestDeterminism:
    def test_same_seed_same_results(self):
        first = run_experiment(small_config(seed=11))
        second = run_experiment(small_config(seed=11))
        assert first.report.throughput_tps == second.report.throughput_tps
        assert first.report.avg_latency_s == second.report.avg_latency_s
        assert first.report.commits == second.report.commits
        assert first.ordering_digests == second.ordering_digests

    def test_different_seeds_differ(self):
        first = run_experiment(small_config(seed=11))
        second = run_experiment(small_config(seed=12))
        assert (
            first.report.avg_latency_s != second.report.avg_latency_s
            or first.ordering_digests != second.ordering_digests
        )


class TestPartialSynchrony:
    def test_progress_resumes_after_gst(self):
        config = small_config(
            gst=5.0,
            delta=1.0,
            duration=30.0,
            warmup=10.0,
            input_load_tps=80.0,
        )
        runner, result = run_runner(config)
        # After GST the system must be live: commits happened and all
        # validators agree on the ordered prefix.
        assert result.report.commits > 5
        sequences = [node.consensus.ordered_ids() for node in runner.nodes.values()]
        shortest = min(len(sequence) for sequence in sequences)
        reference = sequences[0][:shortest]
        for sequence in sequences[1:]:
            assert sequence[:shortest] == reference

    def test_safety_holds_despite_pre_gst_asynchrony(self):
        config = small_config(gst=8.0, delta=1.5, duration=25.0, warmup=10.0, committee_size=7)
        runner, result = run_runner(config)
        histories = list(result.schedule_histories.values())
        shortest = min(len(history) for history in histories)
        for history in histories:
            assert history[:shortest] == histories[0][:shortest]
