"""Cross-backend equivalence: lockstep-on-sim oracle vs real sockets.

The core claim of the net backend — the reason it can be trusted at all
— is that for the same spec + seed, the committed ordering digests over
real asyncio sockets are **byte-identical** to the discrete-event
oracle's.  CI enforces this at registry-scenario scale
(``cross-backend-smoke``); these tests enforce it at tiny scale on
every ``pytest`` run, for both a faultless and a crash-faulted
committee, plus the scenario-runner plumbing (``--backend`` selection
and artifact tagging).
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.netexec.lockstep import run_lockstep_experiment
from repro.netexec.runner import run_net_experiment
from repro.scenarios.diff import diff_artifacts
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.sim.experiment import ExperimentConfig


def config(**overrides):
    base = dict(
        protocol="hammerhead",
        committee_size=4,
        input_load_tps=200.0,
        duration=8.0,
        warmup=1.0,
        seed=1,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def _tiny_spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="cross-backend-tiny",
        description="cross-backend equivalence at test scale",
        committee_sizes=(4,),
        loads=(200.0,),
        seed=1,
        protocols=("hammerhead",),
        duration=8.0,
        warmup=1.0,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestDigestEquivalence:
    def test_faultless_digests_match_across_backends(self):
        oracle = run_lockstep_experiment(config())
        net = run_net_experiment(config())
        assert net.ordering_digests == oracle.ordering_digests
        assert net.crashed_validators == oracle.crashed_validators
        assert net.schedule_histories == oracle.schedule_histories

    def test_faulty_digests_match_across_backends(self):
        faulty = dict(committee_size=7, faults=1, fault_time=0.0, seed=2)
        oracle = run_lockstep_experiment(config(**faulty))
        net = run_net_experiment(config(**faulty))
        assert net.ordering_digests == oracle.ordering_digests
        assert net.crashed_validators == oracle.crashed_validators == [6]

    def test_net_backend_is_repeatable(self):
        first = run_net_experiment(config(seed=3))
        second = run_net_experiment(config(seed=3))
        assert first.ordering_digests == second.ordering_digests


class TestScenarioPlumbing:
    def test_scenario_artifacts_diff_clean_across_backends(self):
        spec = _tiny_spec()
        oracle = run_scenario(spec, backend="lockstep")
        net = run_scenario(spec, backend="net")
        assert oracle["backend"] == "lockstep"
        assert net["backend"] == "net"
        exit_code, report = diff_artifacts(oracle, net)
        assert exit_code == 0, "\n".join(report)

    def test_sim_backend_artifacts_are_untagged_only_by_value(self):
        # The default backend still runs the free-running simulation and
        # records itself in the artifact, so provenance is auditable.
        artifact = run_scenario(_tiny_spec(duration=6.0), backend="sim")
        assert artifact["backend"] == "sim"

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            run_scenario(_tiny_spec(), backend="telnet")
