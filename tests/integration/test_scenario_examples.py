"""The rewritten figure/sui examples stay byte-identical to pre-refactor.

Before the scenario engine, ``examples/figure1_faultless.py``,
``figure2_faults.py``, and ``sui_incident.py`` hand-built their
:class:`ExperimentConfig` objects.  The rewritten examples compile them
from registered scenario specs instead.  Runs are deterministic functions
of their configuration, so the guarantee "reports are byte-identical to
the pre-refactor outputs" reduces to: the compiled configurations equal
the legacy hand-built ones, field for field — checked here at the
examples' full default scale — plus one scaled-down actual run whose
report JSON must match bit for bit.
"""

import json

from repro import Committee, ExperimentConfig, run_experiment
from repro.faults.slow import degrade_fraction
from repro.scenarios import compile_spec, get_scenario


def legacy_figure_configs(fault_mode: bool):
    """The exact construction the pre-scenario figure examples used."""
    configs = []
    for committee_size in (10, 25):
        faults = (committee_size - 1) // 3 if fault_mode else 0
        base = ExperimentConfig(
            committee_size=committee_size,
            faults=faults,
            duration=80.0 if fault_mode else 40.0,
            warmup=40.0 if fault_mode else 10.0,
            seed=2,
            commits_per_schedule=10,
        )
        for protocol in ("hammerhead", "bullshark"):
            for load in (1000.0, 2500.0, 4000.0):
                configs.append(
                    base.with_overrides(protocol=protocol, input_load_tps=load)
                )
    return configs


def legacy_sui_configs():
    """The exact construction the pre-scenario sui example used."""
    committee = Committee.build(13)
    configs = []
    for protocol in ("bullshark", "hammerhead"):
        for degraded in (False, True):
            extra_faults = ()
            if degraded:
                extra_faults = (
                    degrade_fraction(committee, fraction=0.10, extra_delay=0.6),
                )
            configs.append(
                ExperimentConfig(
                    protocol=protocol,
                    committee_size=13,
                    input_load_tps=130.0,
                    duration=90.0,
                    warmup=40.0,
                    seed=5,
                    commits_per_schedule=10,
                    extra_faults=extra_faults,
                )
            )
    return configs


class TestCompiledConfigsMatchLegacy:
    def test_figure1_configs_are_identical(self):
        compiled = [point.config for point in compile_spec(get_scenario("faultless"))]
        assert compiled == legacy_figure_configs(fault_mode=False)

    def test_figure2_configs_are_identical(self):
        compiled = [point.config for point in compile_spec(get_scenario("figure2-faults"))]
        assert compiled == legacy_figure_configs(fault_mode=True)

    def test_sui_configs_are_identical(self):
        spec = get_scenario("sui-incident")
        degraded = {point.protocol: point.config for point in compile_spec(spec)}
        healthy = {
            point.protocol: point.config
            for point in compile_spec(spec.without_faults())
        }
        compiled = [
            healthy["bullshark"],
            degraded["bullshark"],
            healthy["hammerhead"],
            degraded["hammerhead"],
        ]
        assert compiled == legacy_sui_configs()


class TestScaledRunIsByteIdentical:
    def test_sui_incident_report_bytes_match(self):
        """One scaled-down run through both construction paths."""
        committee = Committee.build(7)
        legacy = ExperimentConfig(
            protocol="hammerhead",
            committee_size=7,
            input_load_tps=130.0,
            duration=15.0,
            warmup=5.0,
            seed=5,
            commits_per_schedule=10,
            extra_faults=(degrade_fraction(committee, fraction=0.10, extra_delay=0.6),),
        )
        spec = get_scenario("sui-incident").with_overrides(
            committee_sizes=(7,), duration=15.0, warmup=5.0, protocols=("hammerhead",)
        )
        (point,) = compile_spec(spec)
        legacy_result = run_experiment(legacy)
        scenario_result = run_experiment(point.config)
        legacy_bytes = json.dumps(legacy_result.report.as_dict(), sort_keys=True)
        scenario_bytes = json.dumps(scenario_result.report.as_dict(), sort_keys=True)
        assert legacy_bytes == scenario_bytes
        assert legacy_result.ordering_digests == scenario_result.ordering_digests
