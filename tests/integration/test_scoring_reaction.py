"""Reputation-reaction integration tests: scoring rules vs the adversaries.

The paper's qualitative claim (and the reason the scoring rule is
pluggable) is that reputation reacts to misbehavior — but how sharply
depends on what the rule measures.  These tests pin the observable
ordering for each rule:

* the naive vote withholder is demoted **no later** than the
  reputation-gaming adversary under every rule, and **strictly earlier**
  under the paper's vote-based HammerHead rule (the gamer banks votes
  around its own slots and never enters the demoted set);
* Shoal's leader-based and Carousel's activity-based rules never
  attribute withheld votes to the withholder at all — both adversaries
  survive, which is exactly the weakness the ablation benchmarks of the
  scoring rules discuss.

The scenario registry exercises the same machinery end-to-end; the
artifact test below checks that every adversarial scenario records the
reputation-reaction metrics the comparison rests on.
"""

from functools import partial

import pytest

from repro.behavior import (
    AdaptiveSilentFanoutPolicy,
    ReputationGamingPolicy,
    VoteWithholdingPolicy,
)
from repro.faults.behavior import BehaviorFault
from repro.faults.partition import NetworkDisturbanceFault
from repro.scenarios import get_scenario, run_scenario
from repro.sim.experiment import ExperimentConfig, run_experiment

ADVERSARY = 9
INFINITY = 10**9
ALL_RULES = ("hammerhead", "shoal", "carousel", "completeness")


def reaction_to(policy_factory, scoring):
    """Run one committee-10 experiment with ``ADVERSARY`` under the policy."""
    config = ExperimentConfig(
        committee_size=10,
        input_load_tps=1000.0,
        duration=50.0,
        warmup=10.0,
        seed=4,
        scoring=scoring,
        extra_faults=(
            BehaviorFault(validators=(ADVERSARY,), policy_factory=policy_factory),
        ),
    )
    reputation = run_experiment(config).reputation
    scores = [
        epoch["scores"].get(ADVERSARY, 0.0) for epoch in reputation["trajectory"]
    ]
    return {
        "demotion_round": reputation["rounds_until_demotion"][ADVERSARY],
        "demoted_epochs": reputation["demoted_epochs"][ADVERSARY],
        "slot_share": reputation["faulty_slot_share_converged"],
        "schedule_changes": reputation["schedule_changes"],
        "scores": scores,
    }


def demotion_or_infinity(reaction):
    round_number = reaction["demotion_round"]
    return INFINITY if round_number is None else round_number


class TestGamerIsDemotedSlowerThanWithholder:
    @pytest.mark.parametrize("scoring", ["hammerhead", "shoal", "carousel"])
    def test_every_rule_demotes_the_gamer_no_faster(self, scoring):
        withholder = reaction_to(VoteWithholdingPolicy, scoring)
        gamer = reaction_to(partial(ReputationGamingPolicy, window=9), scoring)
        assert withholder["schedule_changes"] >= 3, "not enough epochs to compare"
        assert demotion_or_infinity(gamer) >= demotion_or_infinity(withholder)
        assert gamer["demoted_epochs"] <= withholder["demoted_epochs"]
        assert gamer["slot_share"] >= withholder["slot_share"]
        # The gamer never reads as *more* faulty than the withholder.
        for gamer_score, withholder_score in zip(gamer["scores"], withholder["scores"]):
            assert gamer_score >= withholder_score

    def test_hammerhead_separates_them_strictly(self):
        """The vote-based rule catches the withholder but not the gamer."""
        withholder = reaction_to(VoteWithholdingPolicy, "hammerhead")
        gamer = reaction_to(partial(ReputationGamingPolicy, window=9), "hammerhead")
        # The naive withholder scores zero and falls at the first change...
        assert withholder["demotion_round"] is not None
        assert all(score == 0.0 for score in withholder["scores"])
        assert withholder["slot_share"] == 0.0
        # ...while the gamer harvests a near-honest score and keeps its
        # slots: the scoring rule itself has been defeated.
        assert demotion_or_infinity(gamer) > withholder["demotion_round"]
        assert gamer["demoted_epochs"] < withholder["demoted_epochs"]
        assert gamer["slot_share"] > withholder["slot_share"]
        assert min(gamer["scores"]) > 0.0


def reputation_for(scoring, committee_size, extra_faults, seed=4, duration=60.0):
    config = ExperimentConfig(
        committee_size=committee_size,
        input_load_tps=1000.0,
        duration=duration,
        warmup=10.0,
        seed=seed,
        scoring=scoring,
        extra_faults=tuple(extra_faults),
    )
    return run_experiment(config).reputation


def strict_gamer_fault(committee_size=13):
    """The window-9 gamer on a committee where the window actually bites.

    At 13 validators the 19-round honest window no longer covers the
    26-round rotation, so the policy must withhold real votes (unlike the
    committee-10 canonical scenario, where it is vacuously honest)."""
    return BehaviorFault(
        validators=(committee_size - 1,),
        policy_factory=partial(ReputationGamingPolicy, window=9),
    )


def adaptive_dos_fault():
    """The schedule-aware DoS coalition (duty-rotated, stride 2)."""
    return BehaviorFault(
        validators=(7, 8, 9),
        policy_factory=partial(AdaptiveSilentFanoutPolicy, stride=2),
        coordinated=True,
    )


class TestCompletenessHeadline:
    """The attack x rule ablation headline, pinned.

    * ``CompletenessScoring`` demotes the (really-withholding) window-9
      gamer and every member of the adaptive schedule-aware DoS
      coalition within two schedule changes.
    * Shoal and Carousel demote **neither** — leader- and activity-based
      scores structurally cannot attribute withheld votes to the
      withholder (Shoal instead punishes the DoS *victims* via their
      skipped anchors).
    * The PR 4 open question — "the vote-based rule never demotes the
      window-9 gamer" — is resolved, not patched: at committee 10 the
      gamer's completeness is *exactly 1.0 every epoch*, i.e. it never
      misses a countable vote (the ±9-round window covers the whole
      20-round rotation), so its evasion was vacuous honesty that no
      deterministic rule can or should punish.
    * What the completeness rule buys over raw vote counts is
      *precision under timing noise*: with fabric jitter, honest raw
      scores scatter (and the gamer's raw count ties the honest minimum,
      making it indistinguishable), while honest completeness stays at
      exactly 1.0 and the gamer is the unique sub-1.0 scorer in the
      epochs it actually withheld.
    """

    def test_completeness_demotes_strict_gamer_within_two_changes(self):
        rep = reputation_for("completeness", 13, [strict_gamer_fault()])
        assert rep["schedule_changes"] >= 3
        demotion = rep["rounds_until_demotion"][12]
        assert demotion is not None
        # Within two schedule changes: at or before the second epoch's
        # initial round.
        second_change = rep["trajectory"][1]["new_initial_round"]
        assert demotion <= second_change

    @pytest.mark.parametrize("scoring", ["shoal", "carousel"])
    def test_shoal_and_carousel_never_demote_the_strict_gamer(self, scoring):
        rep = reputation_for(scoring, 13, [strict_gamer_fault()])
        assert rep["schedule_changes"] >= 3
        assert rep["rounds_until_demotion"][12] is None

    def test_completeness_demotes_the_whole_dos_coalition(self):
        rep = reputation_for("completeness", 10, [adaptive_dos_fault()])
        second_change = rep["trajectory"][1]["new_initial_round"]
        for member in (7, 8, 9):
            demotion = rep["rounds_until_demotion"][member]
            assert demotion is not None, member
            assert demotion <= second_change

    def test_shoal_never_demotes_the_dos_coalition(self):
        rep = reputation_for("shoal", 10, [adaptive_dos_fault()])
        assert rep["schedule_changes"] >= 3
        assert all(
            rep["rounds_until_demotion"][member] is None for member in (7, 8, 9)
        )

    def test_completeness_is_no_slower_than_the_vote_rule(self):
        for committee, faults in ((13, [strict_gamer_fault()]), (10, [adaptive_dos_fault()])):
            culprits = faults[0].validators
            vote_rule = reputation_for("hammerhead", committee, faults)
            completeness = reputation_for("completeness", committee, faults)
            for culprit in culprits:
                vote_round = vote_rule["rounds_until_demotion"][culprit]
                comp_round = completeness["rounds_until_demotion"][culprit]
                assert comp_round is not None
                assert vote_round is None or comp_round <= vote_round

    @pytest.mark.parametrize("scoring", sorted(ALL_RULES))
    def test_canonical_window9_gamer_is_vacuously_honest(self, scoring):
        """No rule demotes the committee-10 window-9 gamer — and the
        completeness trajectory proves why: it never misses a vote."""
        fault = BehaviorFault(
            validators=(ADVERSARY,),
            policy_factory=partial(ReputationGamingPolicy, window=9),
        )
        rep = reputation_for(scoring, 10, [fault])
        assert rep["schedule_changes"] >= 4
        assert rep["rounds_until_demotion"][ADVERSARY] is None
        if scoring == "completeness":
            scores = [
                epoch["scores"][ADVERSARY] for epoch in rep["trajectory"]
            ]
            assert scores and all(score == 1.0 for score in scores)

    def test_completeness_is_noise_free_under_jitter(self):
        """Honest validators keep completeness exactly 1.0 under fabric
        jitter, while their raw vote counts scatter — the false-positive
        channel the completeness rule closes."""
        faults = [
            strict_gamer_fault(),
            NetworkDisturbanceFault(jitter=0.2, loss_rate=0.0, start=0.0, end=None),
        ]
        completeness = reputation_for("completeness", 13, faults)
        vote_rule = reputation_for("hammerhead", 13, faults)
        honest = [v for v in range(13) if v != 12]
        # Every honest validator, every epoch: completeness exactly 1.0.
        for epoch in completeness["trajectory"]:
            assert all(epoch["scores"][v] == 1.0 for v in honest)
        # The gamer is the unique sub-1.0 scorer in some early epoch.
        gamer_scores = [e["scores"][12] for e in completeness["trajectory"]]
        assert min(gamer_scores[:3]) < 1.0
        # Raw counts scatter across honest validators under the same
        # jitter (at least one epoch where honest min < honest max).
        scattered = any(
            min(e["scores"][v] for v in honest) < max(e["scores"][v] for v in honest)
            for e in vote_rule["trajectory"]
        )
        assert scattered


class TestAdversarialScenarioArtifacts:
    @pytest.mark.parametrize(
        "name",
        [
            "equivocation-split",
            "silent-saboteur",
            "lazy-leader",
            "reputation-gamer",
            "reputation-gamer-strict",
            "colluding-silence",
            "adaptive-dos",
            "coalition-gaming",
            "adaptive-equivocation",
        ],
    )
    def test_artifact_records_reputation_reaction(self, name):
        artifact = run_scenario(get_scenario(name).smoke(), parallelism=1)
        assert artifact["points"], name
        for point in artifact["points"]:
            reputation = point["reputation"]
            assert reputation["faulty_validators"], name
            for validator in reputation["faulty_validators"]:
                assert validator in reputation["rounds_until_demotion"]
            assert 0.0 <= reputation["faulty_slot_share_converged"] <= 1.0
            assert "trajectory" in reputation
            # The run made progress under the adversary.
            assert point["ordered_count"] > 0

    def test_lazy_leader_skips_show_up_in_the_report(self):
        artifact = run_scenario(get_scenario("lazy-leader").smoke(), parallelism=1)
        skipped = sum(
            point["report"]["skipped_anchor_rounds"] for point in artifact["points"]
        )
        assert skipped > 0
