"""Reputation-reaction integration tests: scoring rules vs the adversaries.

The paper's qualitative claim (and the reason the scoring rule is
pluggable) is that reputation reacts to misbehavior — but how sharply
depends on what the rule measures.  These tests pin the observable
ordering for each rule:

* the naive vote withholder is demoted **no later** than the
  reputation-gaming adversary under every rule, and **strictly earlier**
  under the paper's vote-based HammerHead rule (the gamer banks votes
  around its own slots and never enters the demoted set);
* Shoal's leader-based and Carousel's activity-based rules never
  attribute withheld votes to the withholder at all — both adversaries
  survive, which is exactly the weakness the ablation benchmarks of the
  scoring rules discuss.

The scenario registry exercises the same machinery end-to-end; the
artifact test below checks that every adversarial scenario records the
reputation-reaction metrics the comparison rests on.
"""

from functools import partial

import pytest

from repro.behavior import ReputationGamingPolicy, VoteWithholdingPolicy
from repro.faults.behavior import BehaviorFault
from repro.scenarios import get_scenario, run_scenario
from repro.sim.experiment import ExperimentConfig, run_experiment

ADVERSARY = 9
INFINITY = 10**9


def reaction_to(policy_factory, scoring):
    """Run one committee-10 experiment with ``ADVERSARY`` under the policy."""
    config = ExperimentConfig(
        committee_size=10,
        input_load_tps=1000.0,
        duration=50.0,
        warmup=10.0,
        seed=4,
        scoring=scoring,
        extra_faults=(
            BehaviorFault(validators=(ADVERSARY,), policy_factory=policy_factory),
        ),
    )
    reputation = run_experiment(config).reputation
    scores = [
        epoch["scores"].get(ADVERSARY, 0.0) for epoch in reputation["trajectory"]
    ]
    return {
        "demotion_round": reputation["rounds_until_demotion"][ADVERSARY],
        "demoted_epochs": reputation["demoted_epochs"][ADVERSARY],
        "slot_share": reputation["faulty_slot_share_converged"],
        "schedule_changes": reputation["schedule_changes"],
        "scores": scores,
    }


def demotion_or_infinity(reaction):
    round_number = reaction["demotion_round"]
    return INFINITY if round_number is None else round_number


class TestGamerIsDemotedSlowerThanWithholder:
    @pytest.mark.parametrize("scoring", ["hammerhead", "shoal", "carousel"])
    def test_every_rule_demotes_the_gamer_no_faster(self, scoring):
        withholder = reaction_to(VoteWithholdingPolicy, scoring)
        gamer = reaction_to(partial(ReputationGamingPolicy, window=9), scoring)
        assert withholder["schedule_changes"] >= 3, "not enough epochs to compare"
        assert demotion_or_infinity(gamer) >= demotion_or_infinity(withholder)
        assert gamer["demoted_epochs"] <= withholder["demoted_epochs"]
        assert gamer["slot_share"] >= withholder["slot_share"]
        # The gamer never reads as *more* faulty than the withholder.
        for gamer_score, withholder_score in zip(gamer["scores"], withholder["scores"]):
            assert gamer_score >= withholder_score

    def test_hammerhead_separates_them_strictly(self):
        """The vote-based rule catches the withholder but not the gamer."""
        withholder = reaction_to(VoteWithholdingPolicy, "hammerhead")
        gamer = reaction_to(partial(ReputationGamingPolicy, window=9), "hammerhead")
        # The naive withholder scores zero and falls at the first change...
        assert withholder["demotion_round"] is not None
        assert all(score == 0.0 for score in withholder["scores"])
        assert withholder["slot_share"] == 0.0
        # ...while the gamer harvests a near-honest score and keeps its
        # slots: the scoring rule itself has been defeated.
        assert demotion_or_infinity(gamer) > withholder["demotion_round"]
        assert gamer["demoted_epochs"] < withholder["demoted_epochs"]
        assert gamer["slot_share"] > withholder["slot_share"]
        assert min(gamer["scores"]) > 0.0


class TestAdversarialScenarioArtifacts:
    @pytest.mark.parametrize(
        "name",
        [
            "equivocation-split",
            "silent-saboteur",
            "lazy-leader",
            "reputation-gamer",
        ],
    )
    def test_artifact_records_reputation_reaction(self, name):
        artifact = run_scenario(get_scenario(name).smoke(), parallelism=1)
        assert artifact["points"], name
        for point in artifact["points"]:
            reputation = point["reputation"]
            assert reputation["faulty_validators"], name
            for validator in reputation["faulty_validators"]:
                assert validator in reputation["rounds_until_demotion"]
            assert 0.0 <= reputation["faulty_slot_share_converged"] <= 1.0
            assert "trajectory" in reputation
            # The run made progress under the adversary.
            assert point["ordered_count"] > 0

    def test_lazy_leader_skips_show_up_in_the_report(self):
        artifact = run_scenario(get_scenario("lazy-leader").smoke(), parallelism=1)
        skipped = sum(
            point["report"]["skipped_anchor_rounds"] for point in artifact["points"]
        )
        assert skipped > 0
