"""Committee-100 smoke differential: arena/bitset tree vs the rescan oracle.

The committee-100/200 scaling work (quorum bitsets, digest interning,
arena vertex storage) is pure optimization — at any committee size the
optimized tree must order exactly what the seed implementation ordered.
The property suite pins that on small random committees; this smoke
suite pins it at the scale the sprint actually targets: a deterministic
committee-100 DAG driven through both the arena-backed incremental
engine and the dict-rescan oracle (``incremental=False`` +
``cache_reachability=False``), plus a full-pipeline determinism check
through ``run_experiment``.

CI runs this file as its own ``committee-100-smoke`` step in the bench
job, so a divergence is reported as its own failure before the perf gate
muddies the water.
"""

import random

from repro.committee import Committee
from repro.consensus.bullshark import BullsharkConsensus
from repro.core.manager import HammerHeadScheduleManager
from repro.core.schedule_change import CommitCountPolicy
from repro.dag.store import DagStore
from repro.dag.vertex import genesis_vertices, make_vertex
from repro.schedule.round_robin import initial_schedule
from repro.sim.experiment import ExperimentConfig, run_experiment

COMMITTEE_SIZE = 100
ROUNDS = 10


def build_committee100_dag(seed: int = 7):
    """A deterministic 100-validator DAG with sub-quorum edge variety."""
    committee = Committee.build(COMMITTEE_SIZE)
    rng = random.Random(seed)
    quorum = committee.quorum_threshold
    rounds = [list(genesis_vertices(committee))]
    previous = [vertex.id for vertex in rounds[0]]
    for round_number in range(1, ROUNDS + 1):
        # A handful of validators sit out each round so anchors are
        # sometimes skipped and vote stakes vary.
        absent = set(rng.sample(range(COMMITTEE_SIZE), rng.randint(0, 10)))
        current = []
        for source in range(COMMITTEE_SIZE):
            if source in absent:
                continue
            if rng.random() < 0.5:
                edges = rng.sample(previous, rng.randint(quorum, len(previous)))
            else:
                edges = list(previous)
            current.append(make_vertex(round_number, source, edges=edges))
        rounds.append(current)
        previous = [vertex.id for vertex in current]
    return committee, rounds


def make_engine(committee, incremental):
    dag = DagStore(committee, cache_reachability=incremental)
    schedule = initial_schedule(committee, seed=0, permute=False)
    manager = HammerHeadScheduleManager(
        committee, schedule, policy=CommitCountPolicy(5)
    )
    return BullsharkConsensus(
        owner=0,
        committee=committee,
        dag=dag,
        schedule_manager=manager,
        record_sequence=True,
        incremental=incremental,
    )


def test_committee100_arena_matches_rescan_oracle():
    committee, rounds = build_committee100_dag()
    genesis, *later = rounds
    arena = make_engine(committee, incremental=True)
    oracle = make_engine(committee, incremental=False)
    for vertex in genesis:
        arena.dag.add(vertex)
        oracle.dag.add(vertex)
    for index, round_vertices in enumerate(later):
        for vertex in round_vertices:
            arena.dag.add(vertex)
            oracle.dag.add(vertex)
        for engine in (arena, oracle):
            engine.try_commit()
            if index % 4 == 3:
                # Exercise arena slab recycling mid-stream.
                engine.garbage_collect(keep_rounds=4)
        assert arena.ordering_digest == oracle.ordering_digest, (
            f"divergence after round {index + 1}"
        )
        assert arena.ordered_count == oracle.ordered_count
    assert arena.ordered_count > 0, "smoke DAG must actually order vertices"
    assert arena.ordered_ids() == oracle.ordered_ids()
    assert arena.commit_count == oracle.commit_count


def smoke_config(**overrides) -> ExperimentConfig:
    base = dict(
        committee_size=COMMITTEE_SIZE,
        faults=0,
        input_load_tps=2000.0,
        duration=2.0,
        warmup=0.5,
        seed=2,
        commits_per_schedule=10,
        latency_model="geo",
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def test_committee100_full_pipeline_is_deterministic():
    """Two identical committee-100 runs produce one ordering digest."""
    first = run_experiment(smoke_config())
    second = run_experiment(smoke_config())
    assert first.ordering_digests == second.ordering_digests
    count, _ = first.ordering_digests[0]
    assert count > 0


def test_committee100_bounded_tracing_is_digest_neutral():
    """A ring-buffer-bounded trace never perturbs the ordering."""
    plain = run_experiment(smoke_config())
    traced = run_experiment(smoke_config(trace=True, trace_limit=500))
    assert traced.ordering_digests == plain.ordering_digests
    assert len(traced.trace) <= 501  # ring bound + one truncation marker
