"""Integration tests with faults: crashes, recovery, degraded validators,
and Byzantine vote withholding.

These tests check the protocol-level claims of the paper at small scale:
HammerHead removes failing validators from the leader schedule (Leader
Utilization), reintegrates recovered ones, and keeps safety throughout.
"""

import pytest

from repro.faults.byzantine import VoteWithholdingFault
from repro.faults.crash import CrashRecoveryFault
from repro.faults.slow import SlowValidatorFault
from repro.sim.experiment import ExperimentConfig, run_experiment
from repro.sim.runner import SimulationRunner


def fault_config(**overrides):
    base = dict(
        protocol="hammerhead",
        committee_size=7,
        input_load_tps=150.0,
        duration=40.0,
        warmup=15.0,
        seed=4,
        commits_per_schedule=4,
        latency_model="uniform",
        leader_timeout=1.0,
        min_round_interval=0.10,
        record_sequences=True,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def run_runner(config):
    runner = SimulationRunner(config)
    return runner, runner.run()


class TestCrashFaults:
    def test_liveness_with_maximum_crash_faults(self):
        for protocol in ("hammerhead", "bullshark"):
            result = run_experiment(fault_config(protocol=protocol, faults=2))
            assert result.report.commits > 5, protocol
            assert result.report.throughput_tps > 80.0, protocol

    def test_safety_with_crash_faults(self):
        runner, result = run_runner(fault_config(faults=2))
        honest = [node for node in runner.nodes.values() if not node.crashed]
        sequences = [node.consensus.ordered_ids() for node in honest]
        shortest = min(len(sequence) for sequence in sequences)
        assert shortest > 20
        reference = sequences[0][:shortest]
        for sequence in sequences[1:]:
            assert sequence[:shortest] == reference

    def test_hammerhead_removes_crashed_validators_from_schedule(self):
        runner, result = run_runner(fault_config(faults=2))
        assert result.report.schedule_changes >= 1
        observer = runner.nodes[0]
        final_schedule = observer.schedule_manager.active_schedule
        for crashed in result.crashed_validators:
            assert final_schedule.slots_of(crashed) == 0

    def test_crashed_validators_have_lowest_reputation(self):
        runner, result = run_runner(fault_config(faults=2))
        observer = runner.nodes[0]
        records = observer.schedule_manager.change_records
        assert records
        last_scores = records[-1].scores
        crashed_scores = [last_scores[validator] for validator in result.crashed_validators]
        alive_scores = [
            score
            for validator, score in last_scores.items()
            if validator not in result.crashed_validators
        ]
        assert max(crashed_scores) <= min(alive_scores)

    def test_bullshark_keeps_electing_crashed_leaders(self):
        _, result = run_runner(fault_config(protocol="bullshark", faults=2))
        # The static schedule keeps the crashed validators' slots, so their
        # anchor rounds are skipped for the whole run.
        assert result.report.skipped_anchor_rounds > 0
        skipped_leaders = set(result.skipped_rounds_per_leader)
        assert skipped_leaders & set(result.crashed_validators)

    def test_hammerhead_outperforms_bullshark_under_faults(self):
        """Claim C2 at small scale: lower latency and no fewer commits."""
        hammerhead = run_experiment(fault_config(faults=2, seed=6))
        bullshark = run_experiment(fault_config(protocol="bullshark", faults=2, seed=6))
        assert hammerhead.report.avg_latency_s < bullshark.report.avg_latency_s
        assert hammerhead.report.commits > bullshark.report.commits
        assert hammerhead.report.throughput_tps >= 0.95 * bullshark.report.throughput_tps

    def test_hammerhead_latency_with_faults_close_to_faultless(self):
        """Claim C3 at small scale: only a slight latency degradation."""
        faultless = run_experiment(fault_config(faults=0, seed=7))
        faulty = run_experiment(fault_config(faults=2, seed=7))
        assert faulty.report.avg_latency_s <= faultless.report.avg_latency_s + 1.0
        assert faulty.report.throughput_tps >= 0.9 * faultless.report.throughput_tps

    def test_leader_timeouts_stop_after_schedule_adapts(self):
        runner, result = run_runner(fault_config(faults=2, duration=50.0, warmup=20.0))
        observer = runner.nodes[0]
        # After the last schedule change, the crashed validators hold no
        # slots, so no anchor round can time out any more; the total number
        # of timeouts is therefore bounded by the pre-adaptation phase.
        changes = observer.schedule_manager.change_records
        assert changes
        assert result.report.skipped_anchor_rounds <= 3 * len(changes) * 4


class TestLeaderUtilization:
    def test_skipped_rounds_bounded_by_schedule_adaptation(self):
        """Lemma 6 (qualitatively): in crash-only runs the number of anchor
        rounds without a commit is bounded, once normalized by the
        schedule-change period and the number of crashed validators."""
        result = run_experiment(fault_config(faults=2, duration=60.0, warmup=20.0))
        commits_per_schedule = 4
        faults = 2
        bound = 3 * commits_per_schedule * faults  # O(T) * f with slack
        assert result.report.skipped_anchor_rounds <= bound

    def test_bullshark_skips_keep_accumulating(self):
        hammerhead = run_experiment(fault_config(faults=2, duration=60.0, warmup=20.0))
        bullshark = run_experiment(
            fault_config(protocol="bullshark", faults=2, duration=60.0, warmup=20.0)
        )
        assert bullshark.report.skipped_anchor_rounds > hammerhead.report.skipped_anchor_rounds


class TestCrashRecovery:
    def test_recovered_validator_regains_leader_slots(self):
        """The introduction's scenario: a validator goes down for maintenance,
        loses its slots, and is reintegrated once it recovers."""
        plan = CrashRecoveryFault(validators=(5,), crash_at=2.0, recover_at=20.0)
        config = fault_config(
            faults=0,
            duration=70.0,
            warmup=10.0,
            extra_faults=(plan,),
            commits_per_schedule=3,
        )
        runner, result = run_runner(config)
        observer = runner.nodes[0]
        schedules = observer.schedule_manager.history
        # While validator 5 was down, some schedule dropped its slots.
        assert any(schedule.slots_of(5) == 0 for schedule in schedules)
        # After recovery it regains representation: per-epoch scores are
        # small, so occasional tie-break noise can still exclude it from a
        # single schedule, but it must hold slots in most recent schedules.
        recent = schedules[-5:]
        with_slots = sum(1 for schedule in recent if schedule.slots_of(5) >= 1)
        assert with_slots >= 3
        # And the recovered node is alive and made progress.
        assert not runner.nodes[5].crashed
        assert runner.nodes[5].commit_count > 0

    def test_safety_across_crash_and_recovery(self):
        plan = CrashRecoveryFault(validators=(6,), crash_at=3.0, recover_at=12.0)
        config = fault_config(faults=0, duration=40.0, extra_faults=(plan,))
        runner, _ = run_runner(config)
        reference = runner.nodes[0].consensus.ordered_ids()
        recovered = runner.nodes[6].consensus.ordered_ids()
        assert len(recovered) > 10
        # The recovered validator may have skipped an interval of history via
        # state sync, so its sequence is not necessarily a prefix of the
        # reference; it must however be a *subsequence*: it never orders two
        # vertices in the opposite relative order from the rest of the
        # committee, and never orders a vertex the committee did not.
        positions = {vertex_id: index for index, vertex_id in enumerate(reference)}
        assert all(vertex_id in positions for vertex_id in recovered)
        recovered_positions = [positions[vertex_id] for vertex_id in recovered]
        assert recovered_positions == sorted(recovered_positions)
        assert len(set(recovered_positions)) == len(recovered_positions)


class TestDegradedValidators:
    def test_slow_validators_raise_bullshark_tail_latency(self):
        """The Sui incident of the introduction: ~10% degraded validators
        push p95 latency up under the static schedule."""
        slow = SlowValidatorFault(validators=(6,), extra_delay=0.6, start=0.0)
        healthy = run_experiment(fault_config(protocol="bullshark", seed=9))
        degraded = run_experiment(
            fault_config(protocol="bullshark", seed=9, extra_faults=(slow,))
        )
        assert degraded.report.p95_latency_s > healthy.report.p95_latency_s

    def test_hammerhead_recovers_from_degraded_validators(self):
        slow = SlowValidatorFault(validators=(6,), extra_delay=0.6, start=0.0)
        bullshark = run_experiment(
            fault_config(protocol="bullshark", seed=9, duration=60.0, warmup=25.0, extra_faults=(slow,))
        )
        hammerhead = run_experiment(
            fault_config(protocol="hammerhead", seed=9, duration=60.0, warmup=25.0, extra_faults=(slow,))
        )
        assert hammerhead.report.p95_latency_s <= bullshark.report.p95_latency_s

    def test_degraded_validator_loses_slots_under_hammerhead(self):
        slow = SlowValidatorFault(validators=(6,), extra_delay=0.8, start=0.0)
        runner, result = run_runner(
            fault_config(duration=60.0, warmup=20.0, extra_faults=(slow,))
        )
        observer = runner.nodes[0]
        assert observer.schedule_manager.active_schedule.slots_of(6) == 0


class TestByzantineVoteWithholding:
    def test_withholding_validator_loses_reputation_and_slots(self):
        byzantine = VoteWithholdingFault(validators=(5, 6))
        runner, result = run_runner(
            fault_config(
                duration=50.0, warmup=15.0, commits_per_schedule=8, extra_faults=(byzantine,)
            )
        )
        observer = runner.nodes[0]
        records = observer.schedule_manager.change_records
        assert records
        # Averaged over all schedule epochs, vote withholding costs the
        # Byzantine validators reputation relative to every honest one.
        average_scores = {
            validator: sum(record.scores[validator] for record in records) / len(records)
            for validator in runner.committee.validators
        }
        withholding_average = max(average_scores[5], average_scores[6])
        honest_average = min(average_scores[validator] for validator in range(5))
        assert withholding_average < honest_average
        # And they hold no slots in the schedule in force at the end.
        assert observer.schedule_manager.active_schedule.slots_of(5) == 0
        assert observer.schedule_manager.active_schedule.slots_of(6) == 0

    def test_withholding_does_not_break_safety_or_liveness(self):
        byzantine = VoteWithholdingFault(validators=(5,))
        runner, result = run_runner(fault_config(extra_faults=(byzantine,)))
        assert result.report.commits > 10
        sequences = [node.consensus.ordered_ids() for node in runner.nodes.values()]
        shortest = min(len(sequence) for sequence in sequences)
        reference = sequences[0][:shortest]
        for sequence in sequences[1:]:
            assert sequence[:shortest] == reference
