"""Differential digest-neutrality suite for the observability layer.

The tentpole guarantee: turning tracing (or profiling) on changes
*nothing* the protocol computes — byte-identical ordering digests and
identical full DAG state — while producing a faithful, deterministic
event stream.  Also pins the auditor-facing contract: the trace module
lives inside the digest purity closure and passes the determinism rules;
the wall-clock profiler stays outside it on the allowlist.
"""

import pytest

from repro.obs.trace import KNOWN_KINDS
from repro.scenarios import get_scenario
from repro.scenarios.spec import compile_spec
from repro.sim.experiment import ExperimentConfig, run_experiment
from repro.sim.runner import SimulationRunner


def dag_fingerprint(runner):
    """Full DAG state per node: every vertex's identity, digest, and
    edge set, plus the pending buffer — byte-comparable across runs."""
    state = {}
    for validator, node in sorted(runner.nodes.items()):
        vertices = sorted(
            (vertex.round, vertex.source, vertex.digest, tuple(sorted(vertex.edges)))
            for vertex in node.dag
        )
        state[validator] = (
            node.dag.lowest_round,
            node.dag.highest_round(),
            tuple(vertices),
            tuple(sorted(node.dag.pending_missing())),
        )
    return state


def run_pair(**overrides):
    """Run the same config with tracing off and on; return both runners."""
    base = ExperimentConfig(**overrides)
    plain = SimulationRunner(base)
    plain_result = plain.run()
    traced = SimulationRunner(base.with_overrides(trace=True))
    traced_result = traced.run()
    return plain, plain_result, traced, traced_result


class TestDigestNeutrality:
    @pytest.mark.parametrize("committee_size", [10, 25])
    def test_tracing_is_digest_and_state_neutral(self, committee_size):
        plain, plain_result, traced, traced_result = run_pair(
            committee_size=committee_size,
            duration=10.0,
            warmup=2.0,
            input_load_tps=300.0,
            faults=1,
            fault_time=3.0,
            seed=3,
        )
        # Byte-identical ordering digests on every validator.
        assert traced_result.ordering_digests == plain_result.ordering_digests
        # Identical schedule evolution and full DAG state.
        assert traced_result.schedule_histories == plain_result.schedule_histories
        assert dag_fingerprint(traced) == dag_fingerprint(plain)
        # And the traced run actually observed the protocol.
        assert len(traced_result.trace) > 0
        assert plain_result.trace == []

    @pytest.mark.parametrize("scenario_name", ["reputation-gamer", "adaptive-dos"])
    def test_adversarial_scenarios_trace_neutral(self, scenario_name):
        """Behavior-policy adversaries (including the coordinated DoS
        coalition) emit adversary events without bending any decision."""
        spec = get_scenario(scenario_name).smoke()
        point = compile_spec(spec, seed=spec.seed)[0]
        plain = run_experiment(point.config)
        traced = run_experiment(point.config.with_overrides(trace=True))
        assert traced.ordering_digests == plain.ordering_digests
        assert traced.report.committed_transactions == plain.report.committed_transactions
        assert len(traced.trace) > 0
        # The detailed registry tier only exists on the traced run.
        assert "detailed" in traced.counters
        assert "detailed" not in plain.counters

    def test_trace_events_are_well_formed_and_reproducible(self):
        config = ExperimentConfig(
            committee_size=4, duration=8.0, warmup=1.0, input_load_tps=200.0,
            faults=1, fault_time=2.0, seed=5, trace=True,
        )
        first = run_experiment(config)
        second = run_experiment(config)
        # Same config + seed -> byte-identical event stream.
        assert first.trace == second.trace
        for event in first.trace:
            assert event["kind"] in KNOWN_KINDS
            assert isinstance(event["t"], float)

    def test_profiler_is_digest_neutral_and_reports_phases(self):
        config = ExperimentConfig(
            committee_size=4, duration=6.0, warmup=1.0, input_load_tps=200.0, seed=2,
        )
        plain = run_experiment(config)
        profiled = run_experiment(config.with_overrides(profile=True))
        assert profiled.ordering_digests == plain.ordering_digests
        phases = profiled.profile["phases"]
        assert {"event_loop", "rbc", "commit_path", "scoring"} <= set(phases)
        assert all(stats["self_seconds"] >= 0.0 for stats in phases.values())
        assert plain.profile == {}

    def test_recovery_reinstalls_tracing(self):
        """Crash recovery rebuilds dag/consensus/broadcast; the recovered
        node must keep emitting (the re-propagation path)."""
        from repro.faults.crash import CrashRecoveryFault

        config = ExperimentConfig(
            committee_size=4,
            duration=12.0,
            warmup=1.0,
            input_load_tps=100.0,
            extra_faults=(CrashRecoveryFault(validators=(3,), crash_at=3.0, recover_at=6.0),),
            seed=4,
            trace=True,
        )
        result = run_experiment(config)
        kinds = {event["kind"] for event in result.trace}
        assert "validator_crashed" in kinds and "validator_recovered" in kinds
        recovered_at = next(
            event["t"] for event in result.trace if event["kind"] == "validator_recovered"
        )
        post_recovery = [
            event
            for event in result.trace
            if event.get("node") == 3
            and event["t"] > recovered_at
            and event["kind"] in ("vertex_proposed", "vertex_inserted", "anchor_committed")
        ]
        assert post_recovery, "recovered node went dark — observability not reinstalled"


class TestCountersContract:
    def test_always_on_counters_present_without_tracing(self):
        result = run_experiment(
            ExperimentConfig(committee_size=4, duration=5.0, warmup=1.0, input_load_tps=100.0)
        )
        always = result.counters["always"]
        assert always["net.messages_sent"] > 0
        assert always["node.proposals_made"] > 0
        assert "memo.broadcast_digest.hits" in always
        assert "memo.signer_quorum.hits" in always

    def test_detailed_counters_track_message_types(self):
        result = run_experiment(
            ExperimentConfig(
                committee_size=4, duration=5.0, warmup=1.0, input_load_tps=100.0, trace=True
            )
        )
        detailed = result.counters["detailed"]
        assert any(name.startswith("messages.") for name in detailed["counters"])
        assert any(name.startswith("bytes.") for name in detailed["counters"])
        assert "rbc.batch_fill" in detailed.get("histograms", {})


class TestCliEndToEnd:
    def test_scenarios_run_trace_flag_writes_jsonl(self, capsys, tmp_path, monkeypatch):
        from repro.obs import query
        from repro.scenarios.cli import main as scenarios_main

        monkeypatch.chdir(tmp_path)
        trace_path = tmp_path / "t.jsonl"
        code = scenarios_main(
            ["run", "faultless", "--smoke", "--parallelism", "1", "--trace", str(trace_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"wrote trace {trace_path}" in out
        events = query.load_trace(str(trace_path))
        assert query.point_labels(events)  # tagged with point labels
        assert all("seed" in event for event in events)

    def test_obs_trace_then_explain_first_skip(self, capsys, tmp_path, monkeypatch):
        """The CI observability-smoke recipe: trace a faulty scenario,
        then explain its first skipped anchor from the JSONL alone."""
        from repro.obs.cli import main as obs_main

        monkeypatch.chdir(tmp_path)
        trace_path = tmp_path / "f2.jsonl"
        code = obs_main(
            ["trace", "figure2-faults", "--smoke", "--parallelism", "1",
             "--output", str(trace_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "anchor_skipped" in out and "ordering_digest" in out
        code = obs_main(["explain", str(trace_path), "--first-skip"])
        out, err = capsys.readouterr()
        assert code == 0 and err == ""
        assert "skipped on validator" in out
        assert "crashed" in out  # figure2 skips come from crashed leaders


class TestAuditorContract:
    def test_profiler_is_allowlisted_for_wallclock(self):
        from repro.analysis.config import repo_config

        assert "repro.obs.profiler" in repo_config().wallclock_allowlist

    def test_trace_module_in_purity_closure_profiler_outside(self):
        from repro.analysis.config import repo_config
        from repro.analysis.purity import build_purity_map
        from repro.analysis.source import load_package

        config = repo_config()
        modules = load_package(config.root, config.package)
        purity = build_purity_map(modules, config)
        assert "repro.obs.trace" in purity.closure
        assert "repro.obs.profiler" not in purity.closure

    def test_repo_check_is_clean(self, capsys):
        from repro.analysis.cli import main as analysis_main

        assert analysis_main(["check"]) == 0
