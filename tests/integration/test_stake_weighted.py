"""Integration tests with heterogeneous stake.

The introduction motivates HammerHead with real blockchains where
validators hold different amounts of stake and high-stake validators lead
more often — and therefore hurt more when they fail.  These tests run the
full system with a geometric stake distribution and check that leader
frequency follows stake and that HammerHead still removes a crashed
high-stake validator from the schedule.
"""

import pytest

from repro.sim.experiment import ExperimentConfig
from repro.sim.runner import SimulationRunner
from repro.faults.crash import CrashFault


def stake_config(**overrides):
    base = dict(
        protocol="hammerhead",
        committee_size=7,
        stake="geometric",
        input_load_tps=120.0,
        duration=30.0,
        warmup=8.0,
        seed=6,
        commits_per_schedule=5,
        latency_model="uniform",
        leader_timeout=1.0,
        min_round_interval=0.10,
        record_sequences=True,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def run_runner(config):
    runner = SimulationRunner(config)
    return runner, runner.run()


class TestStakeWeightedCommittee:
    def test_leader_slots_proportional_to_stake(self):
        runner, result = run_runner(stake_config(protocol="bullshark"))
        committee = runner.committee
        schedule = runner.nodes[0].schedule_manager.active_schedule
        counts = schedule.slot_counts()
        heaviest = committee.by_stake()[0]
        lightest = committee.by_stake()[-1]
        assert counts.get(heaviest, 0) > counts.get(lightest, 0)

    def test_system_is_live_and_safe_with_weighted_stake(self):
        runner, result = run_runner(stake_config())
        assert result.report.commits > 5
        sequences = [node.consensus.ordered_ids() for node in runner.nodes.values()]
        shortest = min(len(sequence) for sequence in sequences)
        reference = sequences[0][:shortest]
        for sequence in sequences[1:]:
            assert sequence[:shortest] == reference

    def test_crashed_high_stake_validator_loses_slots(self):
        runner, result = run_runner(
            stake_config(
                duration=45.0,
                warmup=15.0,
                extra_faults=(CrashFault(validators=(1,), at_time=0.0),),
            )
        )
        observer = runner.nodes[0]
        final_schedule = observer.schedule_manager.active_schedule
        initial_schedule = observer.schedule_manager.history[0]
        # Validator 1 holds multiple slots initially (high stake) and none
        # once the reputation schedule reacts to its crash.
        assert initial_schedule.slots_of(1) >= 1
        assert final_schedule.slots_of(1) == 0
        assert result.report.schedule_changes >= 1
        assert result.report.commits > 5
