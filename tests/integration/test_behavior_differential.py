"""Differential pin: HonestPolicy runs are byte-identical to the pre-policy tree.

The behavior-policy refactor routed every validator decision point
(parent selection, proposal timing, fan-out, ack participation, fetch
service) through a policy indirection.  The honest default must be a
pure fast path: the digests below were recorded at the PR 3 HEAD
(commit ``69a3c5b``, before ``repro.behavior`` existed) and every run
here must still reproduce them bit for bit.

Two families are pinned:

* dedicated committee-10/25/50 configurations with a crash plan and a
  jitter/loss window (the fault classes whose hot paths the refactor
  touched), and
* every scenario of the PR 3 registry at smoke scale — including
  ``targeted-leader-attack``, whose vote-withholding fault is now a shim
  over :class:`~repro.behavior.adversarial.VoteWithholdingPolicy`, so
  this additionally pins the policy port against the old
  ``parent_filter`` implementation.
"""

import pytest

from repro.faults.crash import CrashFault
from repro.faults.partition import NetworkDisturbanceFault
from repro.scenarios import get_scenario
from repro.scenarios.spec import compile_spec
from repro.sim.experiment import ExperimentConfig, run_experiment

# (ordered_count, ordering_digest) of the observer, recorded pre-refactor.
PR3_CONFIG_DIGESTS = {
    10: (117, "3a97d1ffbaf9dbae809a45b388e08ab818ec36260fbd1de15d097bdd0e24cc3a"),
    25: (477, "83fd3d9cedde7752b5b2ed940bc5a6b6b20c2cf8718898c81a236b36abff6b6d"),
    50: (888, "29dace5faf4a16b77caed1bd9cef45ea7cd4576d12b332b61a98fa9484eb7a18"),
}

# Per registry scenario (smoke scale): [protocol, load, count, digest] per
# compiled point, in compile order.  Recorded pre-refactor.
PR3_SCENARIO_DIGESTS = {
    "faultless": [
        ["hammerhead", 300.0, 129, "bfde0f6a6af855804dd571f6c3fef4b2a36c660afcc4c30e201bc47b7aba8c60"],
        ["bullshark", 300.0, 129, "b2610f9c6c4825f08c0c44e22169c072730f1e5814183f71e44e5d228dd040de"],
    ],
    "figure2-faults": [
        ["hammerhead", 300.0, 50, "9d43b4ac028af553f5c0f2185f344ba4b10f4ed3fd2ee9d95d73b297a928464c"],
        ["bullshark", 300.0, 50, "9d43b4ac028af553f5c0f2185f344ba4b10f4ed3fd2ee9d95d73b297a928464c"],
    ],
    "sui-incident": [
        ["bullshark", 130.0, 51, "e21c228eaf017fed7c17c519dfd21a772a27aa9582125d37c418ce67bbfb2ec2"],
        ["hammerhead", 130.0, 51, "e21c228eaf017fed7c17c519dfd21a772a27aa9582125d37c418ce67bbfb2ec2"],
    ],
    "rolling-crash-churn": [
        ["hammerhead", 300.0, 32, "15b1dea0c5d090a778de2f745982f2292fdb60ea64a805dd25a17a721b184198"],
        ["bullshark", 300.0, 32, "15b1dea0c5d090a778de2f745982f2292fdb60ea64a805dd25a17a721b184198"],
    ],
    "targeted-leader-attack": [
        ["hammerhead", 300.0, 129, "58969e8e000a4234f5d1ec227f398812448274216ea8660fce7f3b2d0d094a72"],
        ["bullshark", 300.0, 129, "738d5f4b899a5650398480752788fbf69f8d37961d392b20242db58276f9e970"],
    ],
    "asymmetric-partition": [
        ["hammerhead", 300.0, 85, "d318822791fc10ce90436f367693a98afee982508f8c325e3f40eaa0093db38f"],
        ["bullshark", 300.0, 85, "d318822791fc10ce90436f367693a98afee982508f8c325e3f40eaa0093db38f"],
    ],
    "load-spike": [
        ["hammerhead", 303.448, 129, "d6ea54c8ea48d927d0fb1c54a0fe6c16d8edc5d735c3c8a498ae69551790e542"],
        ["bullshark", 303.448, 129, "8d11259bc0972a0d6b74bfb0787965d52bd134517f9c13100297932f06ead469"],
    ],
    "mixed-adversary": [
        ["hammerhead", 268.966, 48, "8e59bf68ce79320e45878a2d95ddc70aa58c37ab3c485b2502fe9e85966ce939"],
        ["bullshark", 268.966, 48, "8e59bf68ce79320e45878a2d95ddc70aa58c37ab3c485b2502fe9e85966ce939"],
    ],
}

# Per PR 4 registry scenario (smoke scale): the same shape, recorded at
# the PR 4 HEAD (commit ``924cf69``) immediately before the scoring-view
# refactor and the coalition adversaries landed.  The scoring stack grew
# a view, a registry, and a fourth rule in this PR; none of it may move
# a single byte of these runs.
PR4_SCENARIO_DIGESTS = {
    "equivocation-split": [
        ["hammerhead", 300.0, 129, "7e67eb06b346c052653dbabeaf501fcdef0df619fcb992028571ddfbf3d228c6"],
        ["bullshark", 300.0, 129, "51e823f618fd2275b9cb1c1d97e3041a11fb4f5f49c7b6ac0d37beb4514a9cfb"],
    ],
    "silent-saboteur": [
        ["hammerhead", 300.0, 129, "7a5dfb8735bfac1270128298e756ad01eff00b6ef921559b3e4afc8a0b2a7460"],
        ["bullshark", 300.0, 129, "dea7aee9a58b1c0a06e06dc0eddcb60278b0acf4e7f6119dc5b9a5d747e1afed"],
    ],
    "lazy-leader": [
        ["hammerhead", 300.0, 51, "01bc30cfb644d2ff165b02bb7820a356ba5656a8f93b06f32ecda83b2fb44073"],
        ["bullshark", 300.0, 51, "01bc30cfb644d2ff165b02bb7820a356ba5656a8f93b06f32ecda83b2fb44073"],
    ],
    "reputation-gamer": [
        ["hammerhead", 300.0, 129, "bbbd10b0de25438cb2107e430fdbd9fbbaee108243ae8f5aee0756182bbf3a6e"],
        ["bullshark", 300.0, 129, "738d5f4b899a5650398480752788fbf69f8d37961d392b20242db58276f9e970"],
    ],
    "partition-failover": [
        ["hammerhead", 300.0, 85, "d318822791fc10ce90436f367693a98afee982508f8c325e3f40eaa0093db38f"],
        ["bullshark", 300.0, 85, "d318822791fc10ce90436f367693a98afee982508f8c325e3f40eaa0093db38f"],
    ],
    "maintenance-churn+recovery-spike": [
        ["hammerhead", 248.69, 97, "76b698e6b22579e04757bc8c05d66a61867326d5e7055f5e42e45686de4e8239"],
        ["bullshark", 248.69, 97, "eca3283bef95a269183a0c10d1f9c0c7fededb18e9df9c94c606aac10850173c"],
    ],
}


def differential_config(committee_size: int) -> ExperimentConfig:
    """The exact configuration the pre-refactor digests were recorded with."""
    return ExperimentConfig(
        committee_size=committee_size,
        input_load_tps=800.0,
        duration=10.0,
        warmup=2.0,
        seed=3,
        extra_faults=(
            CrashFault(validators=(committee_size - 1,), at_time=3.0),
            NetworkDisturbanceFault(jitter=0.05, loss_rate=0.02, start=4.0, end=7.0),
        ),
    )


class TestHonestPolicyDifferential:
    @pytest.mark.parametrize("committee_size", sorted(PR3_CONFIG_DIGESTS))
    def test_committee_run_matches_pre_refactor_digest(self, committee_size):
        result = run_experiment(differential_config(committee_size))
        assert tuple(result.ordering_digests[0]) == PR3_CONFIG_DIGESTS[committee_size]

    @pytest.mark.parametrize("name", sorted(PR3_SCENARIO_DIGESTS))
    def test_registry_scenario_matches_pre_refactor_digest(self, name):
        expected = PR3_SCENARIO_DIGESTS[name]
        points = compile_spec(get_scenario(name).smoke())
        assert len(points) == len(expected)
        for point, (protocol, load, count, digest) in zip(points, expected):
            assert point.protocol == protocol
            assert point.load == pytest.approx(load)
            result = run_experiment(point.config)
            observed_count, observed_digest = result.ordering_digests[0]
            assert (observed_count, observed_digest) == (count, digest), (
                f"{name} [{point.config.label()}] diverged from the "
                f"pre-refactor ordering"
            )

    def test_honest_runs_carry_no_behavior_overhead_state(self):
        # The honest policy is shared and transparent: after a full run,
        # no node may hold a non-transparent policy.
        result = run_experiment(differential_config(10))
        assert result.reputation["faulty_validators"] == [9]

    @pytest.mark.parametrize("name", sorted(PR4_SCENARIO_DIGESTS))
    def test_pr4_scenario_matches_pre_refactor_digest(self, name):
        expected = PR4_SCENARIO_DIGESTS[name]
        points = compile_spec(get_scenario(name).smoke())
        assert len(points) == len(expected)
        for point, (protocol, load, count, digest) in zip(points, expected):
            assert point.protocol == protocol
            assert point.load == pytest.approx(load)
            result = run_experiment(point.config)
            observed_count, observed_digest = result.ordering_digests[0]
            assert (observed_count, observed_digest) == (count, digest), (
                f"{name} [{point.config.label()}] diverged from the PR 4 ordering"
            )

    @pytest.mark.parametrize("scoring", ["shoal", "carousel"])
    @pytest.mark.parametrize("committee_size", sorted(PR3_CONFIG_DIGESTS))
    def test_every_existing_rule_reproduces_the_pinned_digest(
        self, scoring, committee_size
    ):
        """The registry refactor may not move a byte under any old rule.

        At the PR 4 HEAD these configurations produced identical digests
        under all three rules (the single early crash dominates every
        ranking), so the hammerhead-recorded pins cover shoal and
        carousel too — re-verified at capture time.
        """
        config = differential_config(committee_size).with_overrides(scoring=scoring)
        result = run_experiment(config)
        assert tuple(result.ordering_digests[0]) == PR3_CONFIG_DIGESTS[committee_size]
