"""Unit tests for the scoring-rule registry, the ScoringView, and
CompletenessScoring's vote accounting."""

import pytest

from repro.core.manager import HammerHeadScheduleManager
from repro.core.schedule_change import CommitCountPolicy
from repro.core.scores import ReputationScores
from repro.core.scoring import (
    CarouselScoring,
    CompletenessScoring,
    HammerHeadScoring,
    ScoringContext,
    ScoringRule,
    ScoringView,
    ShoalScoring,
    make_scoring_rule,
    register_scoring_rule,
    scoring_rule_names,
    SCORING_RULE_REGISTRY,
)
from repro.dag.vertex import make_vertex
from repro.errors import ConfigurationError
from repro.schedule.round_robin import initial_schedule
from tests.conftest import vid


def make_manager(committee, commits=2, scoring=None):
    return HammerHeadScheduleManager(
        committee,
        initial_schedule(committee, permute=False),
        policy=CommitCountPolicy(commits),
        scoring=scoring,
    )


def make_anchor(round_number, source, parent_sources):
    return make_vertex(
        round_number,
        source,
        edges=[vid(round_number - 1, parent) for parent in parent_sources],
    )


class TestScoringRuleRegistry:
    def test_builtin_rules_registered_in_order(self):
        names = scoring_rule_names()
        assert names[:4] == ("hammerhead", "shoal", "carousel", "completeness")

    @pytest.mark.parametrize(
        "name, cls",
        [
            ("hammerhead", HammerHeadScoring),
            ("shoal", ShoalScoring),
            ("carousel", CarouselScoring),
            ("completeness", CompletenessScoring),
        ],
    )
    def test_make_scoring_rule(self, name, cls):
        rule = make_scoring_rule(name)
        assert isinstance(rule, cls)
        assert rule.name == name

    def test_unknown_rule_rejected_with_known_list(self):
        with pytest.raises(ConfigurationError, match="completeness"):
            make_scoring_rule("does-not-exist")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_scoring_rule("hammerhead", HammerHeadScoring)

    def test_custom_rule_registers_and_unregisters(self):
        class NullRule(ScoringRule):
            name = "null-rule"

        register_scoring_rule("null-rule", NullRule)
        try:
            assert isinstance(make_scoring_rule("null-rule"), NullRule)
            assert "null-rule" in scoring_rule_names()
        finally:
            del SCORING_RULE_REGISTRY["null-rule"]

    def test_replace_flag_allows_override(self):
        original = SCORING_RULE_REGISTRY["carousel"]
        try:
            register_scoring_rule("carousel", CarouselScoring, replace=True)
        finally:
            SCORING_RULE_REGISTRY["carousel"] = original


class TestScoringView:
    def test_scoring_context_alias_and_signature(self, committee4):
        # The old two-field construction still works (ScoringContext is
        # the view now).
        context = ScoringContext(committee=committee4, scores=ReputationScores(committee4))
        assert isinstance(context, ScoringView)
        assert context.active_schedule is None
        with pytest.raises(ConfigurationError):
            context.leader_for_round(2)

    def test_view_exposes_schedule_and_leader_lookup(self, committee4):
        manager = make_manager(committee4)
        view = manager._view
        assert view.active_schedule is manager.active_schedule
        assert view.leader_for_round(2) == manager.leader_for_round(2)
        assert view.schedule_for_round(2) is manager.schedule_for_round(2)

    def test_commit_accounting(self, committee4):
        manager = make_manager(committee4, commits=5)
        view = manager._view
        manager.on_anchor_committed(make_anchor(2, 0, [0, 1, 2]))
        manager.on_anchor_committed(make_anchor(4, 1, [0, 1, 2]))
        assert view.commits_in_epoch == 2
        assert view.committed_anchor_rounds == [2, 4]
        assert view.last_committed_anchor_round == 4

    def test_count_rules_do_not_track_votes(self, committee4):
        manager = make_manager(committee4, scoring=HammerHeadScoring())
        voter = make_vertex(3, 1, edges=[vid(2, 0), vid(2, 1), vid(2, 2)])
        manager.on_vertex_ordered(make_anchor(2, 0, [0, 1, 2]))
        manager.on_vertex_ordered(voter)
        view = manager._view
        assert not view.track_votes
        assert view.votes_cast == {}
        assert view.votes_expected == {}


class TestCompletenessScoring:
    def _feed_round(self, manager, anchor_round, leader, voters, withholders):
        """Order the leader vertex of ``anchor_round`` and the round+1
        vertices of ``voters`` (linking) and ``withholders`` (not)."""
        committee = manager.committee
        manager.on_vertex_ordered(
            make_anchor(anchor_round, leader, list(committee.validators))
        )
        for voter in voters:
            manager.on_vertex_ordered(
                make_vertex(
                    anchor_round + 1,
                    voter,
                    edges=[vid(anchor_round, source) for source in committee.validators],
                )
            )
        others = [v for v in committee.validators if v != leader]
        for withholder in withholders:
            manager.on_vertex_ordered(
                make_vertex(
                    anchor_round + 1,
                    withholder,
                    edges=[vid(anchor_round, source) for source in others],
                )
            )

    def test_expected_and_cast_counting(self, committee4):
        manager = make_manager(committee4, scoring=CompletenessScoring())
        view = manager._view
        assert view.track_votes
        self._feed_round(manager, 2, leader=0, voters=(1, 2), withholders=(3,))
        assert view.votes_expected == {1: 1, 2: 1, 3: 1}
        assert view.votes_cast == {1: 1, 2: 1}
        assert view.expected_voters(2) == frozenset({1, 2, 3})
        assert view.completeness_of(1) == 1.0
        assert view.completeness_of(3) == 0.0

    def test_scores_materialized_at_schedule_change(self, committee4):
        manager = make_manager(committee4, commits=2, scoring=CompletenessScoring())
        self._feed_round(manager, 2, leader=0, voters=(0, 1, 2), withholders=(3,))
        self._feed_round(manager, 4, leader=1, voters=(0, 1, 2), withholders=(3,))
        manager.on_anchor_committed(make_anchor(2, 0, [0, 1, 2]))
        changed = manager.on_anchor_committed(make_anchor(4, 1, [0, 1, 2]))
        assert changed is not None
        record = manager.change_records[0]
        assert record.scoring == "completeness"
        assert record.scores[0] == 1.0
        assert record.scores[1] == 1.0
        assert record.scores[3] == 0.0
        # The withholder lost its slots to a perfect-completeness peer.
        assert changed.slot_counts().get(3, 0) < manager.history[0].slot_counts()[3]
        # Epoch accounting reset with the change.
        assert manager._view.votes_cast == {}
        assert manager._view.votes_expected == {}

    def test_votes_before_leader_count_retroactively(self, committee4):
        manager = make_manager(committee4, scoring=CompletenessScoring())
        view = manager._view
        # Round-3 vertices of 1 and 2 are ordered *before* the round-2
        # leader vertex: not yet countable.
        others = [v for v in committee4.validators if v != 0]
        for voter in (1, 2):
            manager.on_vertex_ordered(
                make_vertex(3, voter, edges=[vid(2, source) for source in others])
            )
        assert view.votes_expected == {}
        # The leader vertex of round 2 arrives late in the linearization:
        # both missed votes become countable opportunities now.
        manager.on_vertex_ordered(make_anchor(2, 0, [0, 1, 2]))
        assert view.votes_expected == {1: 1, 2: 1}
        assert view.votes_cast == {}

    def test_never_ordered_leader_never_counts(self, committee4):
        manager = make_manager(committee4, scoring=CompletenessScoring())
        view = manager._view
        others = [v for v in committee4.validators if v != 0]
        manager.on_vertex_ordered(
            make_vertex(3, 1, edges=[vid(2, source) for source in others])
        )
        # No leader vertex ever enters the prefix; pruning drops the
        # pending opportunity without counting it.
        view.prune_below(10_000)
        manager.on_vertex_ordered(make_anchor(2, 0, [0, 1, 2]))
        assert view.votes_expected == {}

    def test_zero_opportunity_scores_zero(self, committee4):
        rule = CompletenessScoring()
        manager = make_manager(committee4, commits=1, scoring=rule)
        self._feed_round(manager, 2, leader=0, voters=(1,), withholders=())
        manager.on_anchor_committed(make_anchor(2, 0, [0, 1, 2]))
        record = manager.change_records[0]
        assert record.scores[1] == 1.0
        # Validators 2 and 3 had no ordered round-3 vertices at all.
        assert record.scores[2] == 0.0
        assert record.scores[3] == 0.0

    def test_scale_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            CompletenessScoring(scale=0.0)

    def test_state_sync_round_trip(self, committee4):
        source = make_manager(committee4, commits=10, scoring=CompletenessScoring())
        self._feed_round(source, 2, leader=0, voters=(1, 2), withholders=(3,))
        others = [v for v in committee4.validators if v != 1]
        # Park a pending (not yet countable) missed vote too.
        source.on_vertex_ordered(
            make_vertex(5, 2, edges=[vid(4, source_id) for source_id in others])
        )
        source.on_anchor_committed(make_anchor(2, 0, [0, 1, 2]))
        blob = source.vote_accounting_snapshot()
        assert blob is not None

        target = make_manager(committee4, commits=10, scoring=CompletenessScoring())
        target.adopt_state(
            list(source.history),
            source.scores.as_dict(),
            source.commits_in_epoch,
            vote_accounting=blob,
        )
        view = target._view
        assert view.votes_cast == source._view.votes_cast
        assert view.votes_expected == source._view.votes_expected
        assert view.ordered_leader_rounds() == source._view.ordered_leader_rounds()
        # The parked vote is adopted too: when the round-4 leader orders,
        # both managers count the retro opportunity identically.
        for manager in (source, target):
            manager.on_vertex_ordered(make_anchor(4, 1, [0, 1, 2]))
        assert target._view.votes_expected == source._view.votes_expected

    def test_count_rules_snapshot_is_none(self, committee4):
        manager = make_manager(committee4, scoring=ShoalScoring())
        assert manager.vote_accounting_snapshot() is None
