"""Unit tests for committees and stake distributions."""

import pytest

from repro.committee import Committee, equal_stake, geometric_stake, zipfian_stake
from repro.committee.committee import DEFAULT_REGIONS
from repro.errors import CommitteeError


class TestStakeDistributions:
    def test_equal_stake(self):
        distribution = equal_stake(5, per_validator=3)
        assert distribution.size == 5
        assert distribution.total == 15
        assert distribution.stake_of(2) == 3

    def test_equal_stake_requires_positive_size(self):
        with pytest.raises(CommitteeError):
            equal_stake(0)

    def test_geometric_stake_is_decreasing(self):
        distribution = geometric_stake(8, ratio=0.8)
        stakes = distribution.as_list()
        assert all(earlier >= later for earlier, later in zip(stakes, stakes[1:]))

    def test_geometric_stake_is_always_positive(self):
        distribution = geometric_stake(40, ratio=0.5)
        assert all(stake >= 1 for stake in distribution.as_list())

    def test_geometric_stake_rejects_bad_ratio(self):
        with pytest.raises(CommitteeError):
            geometric_stake(5, ratio=0.0)
        with pytest.raises(CommitteeError):
            geometric_stake(5, ratio=1.5)

    def test_zipfian_stake_is_decreasing(self):
        stakes = zipfian_stake(10).as_list()
        assert all(earlier >= later for earlier, later in zip(stakes, stakes[1:]))

    def test_zipfian_rejects_negative_exponent(self):
        with pytest.raises(CommitteeError):
            zipfian_stake(5, exponent=-1.0)

    def test_stake_must_be_positive(self):
        from repro.committee.stake import StakeDistribution

        with pytest.raises(CommitteeError):
            StakeDistribution((1, 0, 1))

    def test_stake_distribution_needs_members(self):
        from repro.committee.stake import StakeDistribution

        with pytest.raises(CommitteeError):
            StakeDistribution(())


class TestCommitteeConstruction:
    def test_build_creates_indexed_members(self, committee10):
        assert committee10.size == 10
        assert committee10.validators == tuple(range(10))

    def test_members_spread_over_paper_regions(self):
        committee = Committee.build(26)
        used_regions = {committee.region_of(validator).name for validator in committee.validators}
        assert used_regions == set(DEFAULT_REGIONS)

    def test_region_distribution_is_balanced(self):
        committee = Committee.build(26)
        counts = {}
        for validator in committee.validators:
            name = committee.region_of(validator).name
            counts[name] = counts.get(name, 0) + 1
        assert all(count == 2 for count in counts.values())

    def test_build_requires_positive_size(self):
        with pytest.raises(CommitteeError):
            Committee.build(0)

    def test_stake_distribution_size_must_match(self):
        with pytest.raises(CommitteeError):
            Committee.build(5, stake=equal_stake(4))

    def test_unknown_validator_rejected(self, committee4):
        with pytest.raises(CommitteeError):
            committee4.info(99)

    def test_contains(self, committee4):
        assert 0 in committee4
        assert 3 in committee4
        assert 4 not in committee4

    def test_public_keys_are_distinct(self, committee10):
        keys = {committee10.public_key_of(validator).material for validator in committee10.validators}
        assert len(keys) == 10

    def test_keypairs_match_public_keys(self):
        committee = Committee.build(4, seed=5)
        keypairs = Committee.keypairs(4, seed=5)
        for validator in committee.validators:
            assert keypairs[validator].public == committee.public_key_of(validator)


class TestCommitteeStakeArithmetic:
    def test_equal_stake_thresholds(self, committee10):
        assert committee10.total_stake == 10
        assert committee10.quorum_threshold == 7
        assert committee10.validity_threshold == 4
        assert committee10.max_faulty == 3

    def test_paper_committee_fault_tolerance(self):
        # The paper's committees of 10, 50, and 100 tolerate 3, 16, and 33.
        assert Committee.build(10).max_faulty == 3
        assert Committee.build(50).max_faulty == 16
        assert Committee.build(100).max_faulty == 33

    def test_stake_of_subset(self, committee10):
        assert committee10.stake([0, 1, 2]) == 3
        assert committee10.stake([]) == 0

    def test_stake_counts_duplicates_once(self, committee10):
        assert committee10.stake([1, 1, 1]) == 1

    def test_has_quorum(self, committee10):
        assert committee10.has_quorum(range(7))
        assert not committee10.has_quorum(range(6))

    def test_has_validity(self, committee10):
        assert committee10.has_validity(range(4))
        assert not committee10.has_validity(range(3))

    def test_weighted_stake_quorum(self):
        committee = Committee.build(4, stake=geometric_stake(4, ratio=0.5, scale=8))
        # Stakes are 8, 4, 2, 1 -> total 15, quorum 11, validity 6.
        assert committee.total_stake == 15
        assert committee.quorum_threshold == 11
        assert committee.has_quorum([0, 1])  # 12 >= 11
        assert not committee.has_quorum([1, 2, 3])  # 7 < 11

    def test_by_stake_ordering(self):
        committee = Committee.build(4, stake=geometric_stake(4, ratio=0.5, scale=8))
        assert committee.by_stake() == [0, 1, 2, 3]
        assert committee.by_stake(descending=False) == [3, 2, 1, 0]

    def test_sample_returns_distinct_members(self, committee10):
        sample = committee10.sample(5)
        assert len(sample) == len(set(sample)) == 5
        assert all(validator in committee10 for validator in sample)

    def test_sample_too_many_raises(self, committee4):
        with pytest.raises(CommitteeError):
            committee4.sample(5)
