"""CLI contract for ``python -m repro.analysis``.

Mirrors the scenario-CLI conventions (tests/unit/test_scenario_cli_and_diff.py):
exit 0 on success, 1 on findings, 2 on operational errors with a single
``error: ...`` line on stderr and nothing on stdout.  Also the repo
self-check: ``check`` must exit 0 on this tree.
"""

import functools

from repro.analysis.cli import CHECK_FINDINGS, CHECK_OK, main as cli_main

from tests.cli_contract import assert_error_contract
from tests.cli_contract import run_cli as _run_cli

run_cli = functools.partial(_run_cli, cli_main)


class TestRepoSelfCheck:
    def test_check_passes_on_this_repository(self, capsys):
        code, out, err = run_cli(capsys, "check")
        assert code == CHECK_OK
        assert err == ""
        assert "OK: 0 finding(s)" in out

    def test_check_subset_of_rules(self, capsys):
        code, out, err = run_cli(capsys, "check", "--rules", "DET001", "--no-baseline")
        assert code == CHECK_OK
        assert err == ""

    def test_purity_map_prints_closure_and_digest(self, capsys):
        code, out, err = run_cli(capsys, "purity-map")
        assert code == CHECK_OK
        assert err == ""
        assert "purity roots" in out
        assert "repro.consensus.bullshark" in out
        assert "digest" in out


class TestExplain:
    def test_explain_prints_rationale(self, capsys):
        code, out, err = run_cli(capsys, "explain", "DET003")
        assert code == CHECK_OK
        assert err == ""
        assert out.strip()

    def test_explain_unknown_rule_is_an_error(self, capsys):
        assert_error_contract(
            cli_main, capsys, "explain", "DET999", match="unknown analysis rule"
        )


class TestErrorAndFindingExits:
    def test_missing_tree_exits_2_with_stderr(self, capsys, tmp_path):
        assert_error_contract(
            cli_main, capsys, "--repo-root", str(tmp_path), "check", match="does not exist"
        )

    def test_findings_exit_1_with_report_on_stdout(self, capsys, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "tags.py").write_text(
            "import uuid\n\n\ndef tag() -> str:\n    return str(uuid.uuid4())\n"
        )
        code, out, err = run_cli(capsys, "--repo-root", str(tmp_path), "check")
        assert code == CHECK_FINDINGS
        assert err == ""
        assert "repro/tags.py:1: DET001" in out
        assert "FAIL: 1 finding(s)" in out

    def test_waived_findings_do_not_fail_the_check(self, capsys, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "tags.py").write_text(
            "# det: waive[DET001] fixture justification\nimport uuid\n"
        )
        code, out, err = run_cli(capsys, "--repo-root", str(tmp_path), "check")
        assert code == CHECK_OK
        assert err == ""
        assert "1 waived" in out
