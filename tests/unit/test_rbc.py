"""Unit tests for the reliable broadcast implementations (Definition 1)."""

import pytest

from repro.committee import Committee
from repro.network.latency import UniformLatencyModel
from repro.network.simulator import Simulator
from repro.network.transport import Network
from repro.rbc.bracha import BrachaBroadcast
from repro.rbc.certified import CertifiedBroadcast
from repro.rbc.messages import CertificateMessage, ProposeMessage
from repro.errors import BroadcastError


def build_cluster(protocol_class, size=4, seed=0):
    """A committee of broadcast endpoints wired over a simulated network."""
    committee = Committee.build(size)
    simulator = Simulator(seed=seed)
    network = Network(simulator, latency_model=UniformLatencyModel(base_delay=0.01, jitter=0.002))
    deliveries = {index: [] for index in range(size)}
    protocols = {}
    for index in range(size):
        protocol = protocol_class(
            index,
            committee,
            network,
            lambda delivery, index=index: deliveries[index].append(delivery),
        )
        protocols[index] = protocol
        network.register(
            index,
            committee.region_of(index),
            lambda sender, message, index=index: protocols[index].handle_message(sender, message),
        )
    return committee, simulator, network, protocols, deliveries


@pytest.mark.parametrize("protocol_class", [CertifiedBroadcast, BrachaBroadcast])
class TestReliableBroadcastProperties:
    def test_validity_all_honest_deliver(self, protocol_class):
        committee, simulator, network, protocols, deliveries = build_cluster(protocol_class)
        protocols[0].broadcast("payload", round_number=1)
        simulator.run()
        for index in deliveries:
            assert len(deliveries[index]) == 1
            delivery = deliveries[index][0]
            assert delivery.payload == "payload"
            assert delivery.origin == 0
            assert delivery.round == 1

    def test_integrity_single_delivery_per_origin_round(self, protocol_class):
        committee, simulator, network, protocols, deliveries = build_cluster(protocol_class)
        protocols[0].broadcast("payload", round_number=1)
        simulator.run()
        # Re-inject the final protocol messages by broadcasting again from a
        # fresh instance with the same payload: deliveries must not double.
        protocols[1].broadcast("other payload", round_number=5)
        simulator.run()
        for index in deliveries:
            rounds = [(delivery.origin, delivery.round) for delivery in deliveries[index]]
            assert len(rounds) == len(set(rounds))

    def test_multiple_broadcasters_are_independent(self, protocol_class):
        committee, simulator, network, protocols, deliveries = build_cluster(protocol_class)
        for index in range(4):
            protocols[index].broadcast(f"payload-{index}", round_number=2)
        simulator.run()
        for index in deliveries:
            payloads = {delivery.payload for delivery in deliveries[index]}
            assert payloads == {"payload-0", "payload-1", "payload-2", "payload-3"}

    def test_agreement_with_crashed_minority(self, protocol_class):
        committee, simulator, network, protocols, deliveries = build_cluster(protocol_class, size=4)
        network.set_crashed(3)
        protocols[0].broadcast("payload", round_number=1)
        simulator.run()
        for index in range(3):
            assert len(deliveries[index]) == 1
        assert deliveries[3] == []


class TestCertifiedBroadcastSpecifics:
    def test_double_broadcast_same_round_rejected(self):
        committee, simulator, network, protocols, deliveries = build_cluster(CertifiedBroadcast)
        protocols[0].broadcast("a", round_number=1)
        with pytest.raises(BroadcastError):
            protocols[0].broadcast("b", round_number=1)

    def test_certificate_requires_quorum_of_signers(self):
        committee, simulator, network, protocols, deliveries = build_cluster(CertifiedBroadcast)
        bogus = CertificateMessage(
            origin=2, round=4, digest=b"\x00" * 32, payload="forged", signers=(0,)
        )
        protocols[1].handle_message(2, bogus)
        assert deliveries[1] == []

    def test_certificate_with_wrong_digest_rejected(self):
        committee, simulator, network, protocols, deliveries = build_cluster(CertifiedBroadcast)
        bogus = CertificateMessage(
            origin=2, round=4, digest=b"\x00" * 32, payload="forged", signers=(0, 1, 2)
        )
        protocols[1].handle_message(2, bogus)
        assert deliveries[1] == []

    def test_equivocating_proposals_cannot_both_certify(self):
        committee, simulator, network, protocols, deliveries = build_cluster(CertifiedBroadcast)
        # A Byzantine origin (node 3) sends conflicting proposals directly.
        from repro.crypto.hashing import digest_of

        payload_a, payload_b = "version-a", "version-b"
        digest_a = digest_of("certified-broadcast", 3, 1, digest_of(payload_a))
        digest_b = digest_of("certified-broadcast", 3, 1, digest_of(payload_b))
        proposal_a = ProposeMessage(origin=3, round=1, digest=digest_a, payload=payload_a)
        proposal_b = ProposeMessage(origin=3, round=1, digest=digest_b, payload=payload_b)
        # Every honest node sees both proposals; each acknowledges only one.
        for index in range(3):
            protocols[index].handle_message(3, proposal_a)
            protocols[index].handle_message(3, proposal_b)
        simulator.run()
        # The acknowledgements all went to node 3 (the origin), which is
        # Byzantine and silent; no certificate can be formed for either
        # payload by honest nodes, and no honest node delivered anything.
        for index in range(3):
            assert deliveries[index] == []

    def test_ack_only_sent_for_first_proposal(self):
        committee, simulator, network, protocols, deliveries = build_cluster(CertifiedBroadcast)
        protocols[0].broadcast("first", round_number=1)
        simulator.run()
        assert protocols[0].is_certified(1)
        # Certification happens as soon as a 2f+1 stake quorum acknowledges;
        # later acknowledgements are ignored.
        assert protocols[0].ack_count(1) == committee.quorum_threshold

    def test_propose_from_wrong_sender_ignored(self):
        committee, simulator, network, protocols, deliveries = build_cluster(CertifiedBroadcast)
        from repro.crypto.hashing import digest_of

        digest = digest_of("certified-broadcast", 2, 1, digest_of("spoofed"))
        spoofed = ProposeMessage(origin=2, round=1, digest=digest, payload="spoofed")
        # Delivered as if sent by node 1, claiming origin 2.
        protocols[0].handle_message(1, spoofed)
        simulator.run()
        assert deliveries[0] == []


class TestBrachaSpecifics:
    def test_delivery_requires_ready_quorum(self):
        committee, simulator, network, protocols, deliveries = build_cluster(BrachaBroadcast)
        # Inject only a single ready message: no delivery may happen.
        from repro.rbc.messages import ReadyMessage

        protocols[0].handle_message(1, ReadyMessage(origin=2, round=1, digest=b"d"))
        assert deliveries[0] == []

    def test_ready_amplification_from_validity_threshold(self):
        committee, simulator, network, protocols, deliveries = build_cluster(BrachaBroadcast)
        from repro.rbc.messages import EchoMessage, ReadyMessage

        digest = b"digest"
        # f+1 = 2 readies make node 0 send its own ready even without a
        # quorum of echoes.
        protocols[0].handle_message(1, ReadyMessage(origin=3, round=1, digest=digest))
        protocols[0].handle_message(2, ReadyMessage(origin=3, round=1, digest=digest))
        simulator.run()
        assert (3, 1) in protocols[0]._readied

    def test_delivery_waits_for_payload(self):
        committee, simulator, network, protocols, deliveries = build_cluster(BrachaBroadcast)
        from repro.rbc.messages import EchoMessage, ReadyMessage

        digest = BrachaBroadcast._digest(3, 1, "late payload")
        for sender in (1, 2, 3):
            protocols[0].handle_message(sender, ReadyMessage(origin=3, round=1, digest=digest))
        # Ready quorum reached, but node 0 never saw the payload: no delivery.
        assert deliveries[0] == []
        # The payload arrives via an echo: delivery completes.
        protocols[0].handle_message(
            1, EchoMessage(origin=3, round=1, digest=digest, payload="late payload")
        )
        assert len(deliveries[0]) == 1
        assert deliveries[0][0].payload == "late payload"
