"""The lockstep plan and the lockstep-on-simulator oracle.

Lockstep is what makes the socket backend cross-validatable: the
committed order becomes a pure function of a :class:`LockstepPlan`
derived from the experiment config alone.  These tests pin

* plan derivation (crash rounds from fault counts/times, observer
  protection, quorum guard, crash-only fault support, round budget),
* the oracle's behavior: every alive validator reaches the final round,
  all alive validators agree on the committed order, runs are
  deterministic across repetitions, and crashed validators stop clean,
* quiescence checking (a stuck node is a loud error, not a silent
  short run).
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.faults.crash import CrashFault
from repro.faults.partition import PartitionPlan
from repro.netexec.lockstep import (
    MAX_LOCKSTEP_ROUNDS,
    LockstepPlan,
    check_lockstep_quiescence,
    plan_for_config,
    run_lockstep_experiment,
)
from repro.sim.experiment import ExperimentConfig


def config(committee_size=4, **overrides):
    base = dict(
        protocol="hammerhead",
        committee_size=committee_size,
        input_load_tps=200.0,
        duration=10.0,
        warmup=1.0,
        seed=1,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestPlanDerivation:
    def test_faultless_plan_crashes_nobody(self):
        plan = plan_for_config(config())
        assert plan.validators == (0, 1, 2, 3)
        assert plan.crash_rounds == ()
        assert plan.expected(3) == (0, 1, 2, 3)

    def test_max_round_is_even_and_duration_bounded(self):
        assert plan_for_config(config(duration=10.0)).max_round == 10
        assert plan_for_config(config(duration=11.0)).max_round == 10
        assert plan_for_config(config(duration=3.0)).max_round == 4  # floor
        assert (
            plan_for_config(config(committee_size=10, duration=100000.0)).max_round
            == MAX_LOCKSTEP_ROUNDS
        )

    def test_builtin_faults_crash_the_tail_never_the_observer(self):
        plan = plan_for_config(config(committee_size=7, faults=2, fault_time=0.0))
        assert plan.crashed_validators() == (5, 6)
        # Crash at t=0 means the validator never proposes: crash round 1.
        assert plan.crash_round_of(6) == 1
        assert plan.expected(1) == (0, 1, 2, 3, 4)

    def test_fault_time_maps_to_a_later_crash_round(self):
        plan = plan_for_config(config(committee_size=7, faults=1, fault_time=3.5))
        (victim,) = plan.crashed_validators()
        assert plan.crash_round_of(victim) == 4
        # The victim participates strictly below its crash round.
        assert victim in plan.expected(3)
        assert victim not in plan.expected(4)

    def test_extra_crash_faults_merge_to_the_earliest_round(self):
        plan = plan_for_config(
            config(
                committee_size=7,
                extra_faults=(
                    CrashFault(validators=(5,), at_time=6.0),
                    CrashFault(validators=(5, 6), at_time=2.0),
                ),
            )
        )
        assert plan.crash_round_of(5) == 3
        assert plan.crash_round_of(6) == 3

    def test_non_crash_faults_are_rejected(self):
        bad = config(
            committee_size=7,
            extra_faults=(PartitionPlan(groups=((0, 1, 2, 3), (4, 5, 6)), start=1.0, end=3.0),),
        )
        with pytest.raises(ReproError, match="crash faults only"):
            plan_for_config(bad)

    def test_crashed_observer_is_rejected(self):
        bad = config(extra_faults=(CrashFault(validators=(0,), at_time=0.0),))
        with pytest.raises(ReproError, match="live observer"):
            plan_for_config(bad)

    def test_quorumless_crash_plan_is_rejected(self):
        bad = config(
            committee_size=4,
            extra_faults=(CrashFault(validators=(1, 2, 3), at_time=0.0),),
        )
        with pytest.raises(ReproError, match="below a stake quorum"):
            plan_for_config(bad)

    def test_block_size_is_a_pure_slot_function(self):
        plan = plan_for_config(config())
        assert plan.block_size(3, 2) == plan.block_size(3, 2)
        assert 0 <= plan.block_size(7, 1) < 5


class TestLockstepOracle:
    def test_alive_validators_agree_and_finish(self):
        result = run_lockstep_experiment(config(duration=8.0))
        digests = set(result.ordering_digests.values())
        assert len(digests) == 1  # every validator committed the same order
        count, digest = result.ordering_digests[0]
        assert count > 0
        assert len(digest) == 64
        assert result.crashed_validators == []

    def test_repeated_runs_are_byte_identical(self):
        first = run_lockstep_experiment(config(duration=8.0, seed=3))
        second = run_lockstep_experiment(config(duration=8.0, seed=3))
        assert first.ordering_digests == second.ordering_digests
        assert first.schedule_histories == second.schedule_histories

    def test_crashed_validator_stops_with_an_empty_digest(self):
        result = run_lockstep_experiment(
            config(committee_size=7, faults=1, fault_time=0.0, duration=8.0)
        )
        assert result.crashed_validators == [6]
        count, digest = result.ordering_digests[6]
        assert count == 0
        # sha256 of nothing: the validator never ordered a vertex.
        assert digest == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )
        alive = {
            validator: value
            for validator, value in result.ordering_digests.items()
            if validator != 6
        }
        assert len(set(alive.values())) == 1

    def test_seed_changes_the_committed_order(self):
        one = run_lockstep_experiment(config(duration=8.0, seed=1))
        two = run_lockstep_experiment(config(duration=8.0, seed=2))
        assert one.ordering_digests[0] != two.ordering_digests[0]

    def test_bullshark_protocol_also_runs_lockstep(self):
        result = run_lockstep_experiment(config(protocol="bullshark", duration=8.0))
        assert len(set(result.ordering_digests.values())) == 1
        # The static schedule never rotates.
        assert all(epochs == 1 for epochs in result.schedule_epochs.values())


class TestQuiescence:
    def test_stuck_validator_is_a_loud_error(self):
        class StuckNode:
            crashed = False
            current_round = 3
            _lockstep_waiting_on = (2,)

        plan = LockstepPlan(validators=(0, 1), max_round=6, crash_rounds=())
        with pytest.raises(ReproError, match="stopped at round 3/6"):
            check_lockstep_quiescence(plan, {0: StuckNode(), 1: StuckNode()})

    def test_crashed_validators_are_exempt(self):
        class CrashedNode:
            crashed = True
            current_round = 0

        plan = LockstepPlan(validators=(0,), max_round=6, crash_rounds=((0, 1),))
        check_lockstep_quiescence(plan, {0: CrashedNode()})
