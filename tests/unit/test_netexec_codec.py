"""Unit tests for the netexec wire codec: explicit round-trips per
registered type, and the defensive-decoding contract (truncated,
oversized, zero-length, and garbage frames are rejected — never hung on,
never crashed on with a foreign exception type).

The property suite (``tests/property/test_prop_netexec_codec.py``)
covers the same contract over generated inputs; this file pins the
concrete cases a reviewer should be able to read directly, plus the
hostile frames hypothesis is unlikely to synthesize (forged vertex
digests, duplicate dict keys, unknown type codes).
"""

from __future__ import annotations

import struct

import pytest

from repro.crypto.hashing import vertex_digest
from repro.dag.vertex import Vertex, make_vertex
from repro.netexec.codec import (
    MAX_FRAME_BYTES,
    MESSAGE_TYPES,
    CodecError,
    FrameError,
    Hello,
    decode,
    decode_frames,
    encode,
    encode_frame,
)
from repro.node.messages import ConsensusSnapshot, FetchRequest, FetchResponse
from repro.rbc.messages import (
    AckMessage,
    BroadcastMessage,
    CertificateBatch,
    CertificateMessage,
    EchoMessage,
    PiggybackedPropose,
    ProposeMessage,
    ReadyMessage,
)
from repro.schedule.base import LeaderSchedule
from repro.types import VertexId
from repro.workload.transactions import Transaction


def _sample_vertex() -> Vertex:
    return make_vertex(
        2,
        1,
        edges=[VertexId(1, 0), VertexId(1, 2), VertexId(1, 3)],
        block=(Transaction(7, 1, 0.0, 1),),
        created_at=3.5,
    )


def _sample_of_each_type():
    """One concrete instance per registered wire type."""
    vertex = _sample_vertex()
    schedule = LeaderSchedule(epoch=1, initial_round=4, slots=(0, 1, 2, 3))
    snapshot = ConsensusSnapshot(
        last_ordered_anchor_round=4,
        gc_round=2,
        schedules=(schedule,),
        scores={0: 1.0, 1: 0.5},
        commits_in_epoch=3,
        ordered_vertices=frozenset({VertexId(2, 1), VertexId(2, 0)}),
        vote_accounting=((1, 2), (3,)),
    )
    certificate = CertificateMessage(
        origin=1, round=2, digest=vertex.digest, payload=vertex, signers=(0, 2, 3)
    )
    return [
        Hello(node_id=3),
        VertexId(5, 2),
        vertex,
        Transaction(11, 2, 1.25, 3, kind="counter_increment", payload_bytes=64),
        schedule,
        snapshot,
        FetchRequest(requester=2, missing=(VertexId(3, 0), VertexId(3, 1)), deep=True),
        FetchResponse(responder=0, vertices=(vertex,), responder_gc_round=1, snapshot=snapshot),
        BroadcastMessage(origin=0, round=1, digest=b"\x01" * 32),
        ProposeMessage(origin=0, round=2, digest=vertex.digest, payload=vertex),
        PiggybackedPropose(
            origin=0, round=2, digest=vertex.digest, payload=vertex,
            certificates=(certificate,),
        ),
        AckMessage(origin=0, round=2, digest=vertex.digest, voter=3),
        certificate,
        CertificateBatch(origin=1, round=2, digest=vertex.digest, certificates=(certificate,)),
        EchoMessage(origin=2, round=2, digest=vertex.digest, payload=vertex),
        ReadyMessage(origin=2, round=2, digest=vertex.digest),
    ]


class TestRoundTrips:
    def test_every_registered_type_has_a_sample(self):
        """The sample list must cover the registry, so a newly registered
        type without a round-trip test fails here, loudly."""
        sampled = {type(message) for message in _sample_of_each_type()}
        assert sampled == set(MESSAGE_TYPES)

    @pytest.mark.parametrize(
        "message", _sample_of_each_type(), ids=lambda m: type(m).__name__
    )
    def test_round_trip_byte_identical(self, message):
        wire = encode(message)
        decoded = decode(wire)
        assert decoded == message
        assert type(decoded) is type(message)
        assert encode(decoded) == wire

    def test_framed_round_trip(self):
        batch = _sample_of_each_type()
        stream = b"".join(encode_frame(message) for message in batch)
        values, remainder = decode_frames(stream)
        assert list(values) == batch
        assert remainder == b""

    def test_bool_and_int_stay_distinct(self):
        assert decode(encode(True)) is True
        assert decode(encode(1)) == 1
        assert encode(True) != encode(1)


class TestDefensiveDecoding:
    def test_truncated_body_rejected(self):
        wire = encode(_sample_vertex())
        with pytest.raises(CodecError):
            decode(wire[:-1])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(CodecError, match="trailing"):
            decode(encode(Hello(1)) + b"\x00")

    def test_unknown_tag_rejected(self):
        with pytest.raises(CodecError, match="unknown value tag"):
            decode(b"Z")

    def test_unknown_object_code_rejected(self):
        with pytest.raises(CodecError, match="unknown wire type code"):
            decode(b"O\xfe")

    def test_unregistered_type_not_encodable(self):
        with pytest.raises(CodecError, match="not wire-encodable"):
            encode(object())

    def test_int_beyond_64_bits_not_encodable(self):
        with pytest.raises(CodecError, match="64-bit"):
            encode(2**63)

    def test_hostile_length_field_rejected_before_allocation(self):
        # A string claiming 4 GiB of content with a 1-byte body.
        blob = b"S" + struct.pack(">I", 0xFFFFFFFF) + b"x"
        with pytest.raises(CodecError, match="exceeds the remaining body"):
            decode(blob)

    def test_duplicate_dict_keys_rejected(self):
        body = b"D" + struct.pack(">I", 2)
        body += encode(1) + encode("a")
        body += encode(1) + encode("b")
        with pytest.raises(CodecError, match="duplicate keys"):
            decode(body)

    def test_duplicate_set_items_rejected(self):
        body = b"E" + struct.pack(">I", 2) + encode(1) + encode(1)
        with pytest.raises(CodecError, match="duplicate items"):
            decode(body)

    def test_forged_vertex_digest_rejected(self):
        vertex = _sample_vertex()
        forged = Vertex(
            id=vertex.id,
            edges=vertex.edges,
            block=vertex.block,
            digest=vertex_digest(99, 99, [], 0),  # a valid digest of other content
            created_at=vertex.created_at,
        )
        with pytest.raises(CodecError, match="digest mismatch"):
            decode(encode(forged))


class TestFraming:
    def test_zero_length_frame_rejected(self):
        with pytest.raises(FrameError, match="frame length 0"):
            decode_frames(struct.pack(">I", 0))

    def test_oversized_frame_rejected(self):
        header = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(FrameError, match="outside"):
            decode_frames(header)

    def test_incomplete_frame_stays_in_remainder(self):
        frame = encode_frame(Hello(5))
        values, remainder = decode_frames(frame[:-2])
        assert values == ()
        assert remainder == frame[:-2]

    def test_partial_header_stays_in_remainder(self):
        values, remainder = decode_frames(b"\x00\x00")
        assert values == ()
        assert remainder == b"\x00\x00"
