"""Unit tests for the Bullshark consensus engine over hand-built DAGs."""

import pytest

from repro.consensus.bullshark import BullsharkConsensus
from tests.conftest import build_round, drive_rounds, make_consensus, vid


class TestDirectCommit:
    def test_no_commit_before_votes_arrive(self, committee4):
        consensus = make_consensus(committee4)
        drive_rounds(consensus, committee4, rounds=2)
        assert consensus.commit_count == 0

    def test_anchor_commits_once_votes_arrive(self, committee4):
        consensus = make_consensus(committee4)
        drive_rounds(consensus, committee4, rounds=3)
        # Round 2's anchor (leader 0) has f+1 votes from round 3.
        assert consensus.commit_count == 1
        anchor = consensus.committed_subdags[0].anchor
        assert anchor.round == 2
        assert anchor.source == 0  # round-robin leader of round 2

    def test_commit_requires_validity_threshold_of_votes(self, committee4):
        consensus = make_consensus(committee4)
        dag = consensus.dag
        drive_rounds(consensus, committee4, rounds=2)
        # Only one round-3 vertex links to the anchor: f+1 = 2 needed.
        parent_map = {1: [0, 1, 2]}  # only validator 1 links to the anchor (0)
        build_round(dag, committee4, 3, sources=[1], parent_sources=parent_map)
        consensus.try_commit()
        assert consensus.commit_count == 0
        # A second vote arrives: the anchor commits.
        build_round(dag, committee4, 3, sources=[2], parent_sources={2: [0, 1, 3]})
        consensus.try_commit()
        assert consensus.commit_count == 1

    def test_votes_not_linking_to_anchor_do_not_count(self, committee4):
        consensus = make_consensus(committee4)
        dag = consensus.dag
        drive_rounds(consensus, committee4, rounds=2)
        # All round-3 vertices avoid the anchor (validator 0's round-2 vertex).
        parents = {source: [1, 2, 3] for source in range(4)}
        build_round(dag, committee4, 3, parent_sources=parents)
        consensus.try_commit()
        assert consensus.commit_count == 0

    def test_ordered_history_is_the_anchor_causal_history(self, committee4):
        consensus = make_consensus(committee4)
        drive_rounds(consensus, committee4, rounds=3)
        subdag = consensus.committed_subdags[0]
        rounds = [vertex.round for vertex in subdag.vertices]
        assert rounds == sorted(rounds)
        assert all(round_number <= 2 for round_number in rounds)
        # Genesis (4) + round 1 (4) + the anchor's own round-2 vertex at least.
        assert len(subdag.vertices) >= 9
        assert consensus.ordered_count == len(subdag.vertices)

    def test_subsequent_commits_do_not_reorder(self, committee4):
        consensus = make_consensus(committee4)
        drive_rounds(consensus, committee4, rounds=7)
        ordered = consensus.ordered_ids()
        assert len(ordered) == len(set(ordered))
        assert consensus.commit_count >= 3

    def test_commit_callbacks_fire(self, committee4):
        consensus = make_consensus(committee4)
        commits, ordered = [], []
        consensus.on_commit(commits.append)
        consensus.on_ordered(ordered.append)
        drive_rounds(consensus, committee4, rounds=3)
        assert len(commits) == 1
        assert len(ordered) == consensus.ordered_count

    def test_ordering_digest_tracks_sequence(self, committee4):
        consensus_a = make_consensus(committee4)
        consensus_b = make_consensus(committee4)
        drive_rounds(consensus_a, committee4, rounds=5)
        drive_rounds(consensus_b, committee4, rounds=5)
        assert consensus_a.ordering_digest == consensus_b.ordering_digest


class TestSkippedAnchors:
    def test_crashed_leader_is_skipped_and_ordered_later(self, committee10):
        consensus = make_consensus(committee10)
        dag = consensus.dag
        alive = [validator for validator in committee10.validators if validator != 0]
        # Validator 0 (leader of round 2) never produces vertices.
        for round_number in range(1, 6):
            for vertex in build_round(dag, committee10, round_number, sources=alive):
                consensus.process_vertex(vertex)
        # Round 2's anchor is missing; round 4's anchor (leader 1) commits.
        assert consensus.commit_count >= 1
        committed_rounds = [subdag.anchor_round for subdag in consensus.committed_subdags]
        assert 2 not in committed_rounds
        assert 4 in committed_rounds

    def test_skipped_rounds_reported_to_schedule_manager(self, committee10):
        consensus = make_consensus(committee10, dynamic=True, commits_per_schedule=100)
        dag = consensus.dag
        alive = [validator for validator in committee10.validators if validator != 0]
        skipped = []
        original = consensus.schedule_manager.on_anchor_skipped
        consensus.schedule_manager.on_anchor_skipped = lambda round_number: (
            skipped.append(round_number),
            original(round_number),
        )
        for round_number in range(1, 6):
            for vertex in build_round(dag, committee10, round_number, sources=alive):
                consensus.process_vertex(vertex)
        assert skipped == [2]

    def test_skipped_anchor_recovered_by_later_path(self, committee4):
        """An anchor without direct votes is still ordered when a later
        committed anchor reaches it through the DAG (indirect commit)."""
        consensus = make_consensus(committee4)
        dag = consensus.dag
        drive_rounds(consensus, committee4, rounds=2)
        # Round 3: nobody votes for the round-2 anchor (validator 0).
        build_round(dag, committee4, 3, parent_sources={source: [1, 2, 3] for source in range(4)})
        consensus.try_commit()
        assert consensus.commit_count == 0
        # Rounds 4 and 5 proceed normally; round 4's anchor (validator 1)
        # gathers direct votes and commits, and it has a path to the round-2
        # anchor through the full round-3 -> round-2 edges... round-3
        # vertices excluded vertex (2,0), so the round-2 anchor is only
        # reachable if some round-4+ vertex links back to it; with edges
        # only to the previous round it stays unreachable and must remain
        # uncommitted (skipped), while its transactions never re-appear.
        drive_rounds_from = 4
        for round_number in range(drive_rounds_from, 6):
            for vertex in build_round(dag, committee4, round_number):
                consensus.process_vertex(vertex)
        committed_rounds = [subdag.anchor_round for subdag in consensus.committed_subdags]
        assert 4 in committed_rounds
        assert 2 not in committed_rounds
        # The skipped anchor's vertex itself is never ordered.
        assert vid(2, 0) not in consensus.ordered_vertices


class TestIndirectCommit:
    def test_gap_of_uncommitted_anchors_is_ordered_in_round_order(self, committee4):
        """When votes for several consecutive anchors arrive late, the newest
        directly committed anchor orders all reachable earlier anchors."""
        consensus = make_consensus(committee4)
        dag = consensus.dag
        # Build rounds 1..6 into the DAG of a *separate* store first, then
        # feed the vote rounds late.  Simpler: grow the DAG fully but only
        # run the commit logic at the very end.
        drive_rounds_quietly(dag, committee4, rounds=7)
        committed = consensus.try_commit()
        committed_rounds = [subdag.anchor_round for subdag in committed]
        assert committed_rounds == sorted(committed_rounds)
        assert committed_rounds[0] == 2
        assert consensus.last_ordered_anchor_round >= 6

    def test_total_order_position_is_monotonic(self, committee4):
        consensus = make_consensus(committee4)
        drive_rounds(consensus, committee4, rounds=9)
        positions = [record.position for record in consensus.ordered_sequence]
        assert positions == list(range(len(positions)))


def drive_rounds_quietly(dag, committee, rounds):
    """Grow a DAG without running consensus (helper for late-commit tests)."""
    for round_number in range(1, rounds + 1):
        build_round(dag, committee, round_number)


class TestScheduleChangeInteraction:
    def test_dynamic_schedule_changes_during_commits(self, committee4):
        consensus = make_consensus(committee4, dynamic=True, commits_per_schedule=2)
        drive_rounds(consensus, committee4, rounds=12)
        manager = consensus.schedule_manager
        assert manager.epochs >= 2
        # Every schedule starts strictly after its predecessor.
        starts = [schedule.initial_round for schedule in manager.history]
        assert starts == sorted(starts)
        assert len(set(starts)) == len(starts)

    def test_commit_sequence_identical_between_static_and_dynamic_when_all_honest(
        self, committee4
    ):
        """With equal reputation everywhere the dynamic schedule may swap
        slots, but the total order must remain a valid, duplicate-free
        linearization either way."""
        static = make_consensus(committee4, dynamic=False)
        dynamic = make_consensus(committee4, dynamic=True, commits_per_schedule=2)
        drive_rounds(static, committee4, rounds=10)
        drive_rounds(dynamic, committee4, rounds=10)
        static_ids = static.ordered_ids()
        dynamic_ids = dynamic.ordered_ids()
        assert len(static_ids) == len(set(static_ids))
        assert len(dynamic_ids) == len(set(dynamic_ids))

    def test_record_sequence_disabled_keeps_counters(self, committee4):
        consensus = make_consensus(committee4)
        consensus.record_sequence = False
        drive_rounds(consensus, committee4, rounds=5)
        assert consensus.ordered_sequence == []
        assert consensus.ordered_count > 0
        assert consensus.commit_count > 0


class TestGarbageCollectionIntegration:
    def test_gc_after_commits_prunes_old_rounds(self, committee4):
        consensus = make_consensus(committee4)
        drive_rounds(consensus, committee4, rounds=20)
        removed = consensus.garbage_collect(keep_rounds=4)
        assert removed > 0
        assert consensus.dag.lowest_round > 0

    def test_commits_continue_after_gc(self, committee4):
        consensus = make_consensus(committee4)
        drive_rounds(consensus, committee4, rounds=12)
        consensus.garbage_collect(keep_rounds=2)
        before = consensus.commit_count
        drive_rounds_from = consensus.dag.highest_round() + 1
        for round_number in range(drive_rounds_from, drive_rounds_from + 4):
            for vertex in build_round(consensus.dag, committee4, round_number):
                consensus.process_vertex(vertex)
        assert consensus.commit_count > before
