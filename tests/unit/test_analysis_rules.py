"""Fixture coverage for the determinism rules (DET001-DET005).

Each rule gets at least one positive fixture (a seeded violation the
rule must flag) and one negative fixture (the deterministic equivalent
it must not flag), plus waiver-mechanics and registry-contract tests.
Fixtures are in-memory modules fed straight to :func:`analyze`, so the
tests exercise the same pipeline the CLI runs.
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import AnalyzerConfig, analyze
from repro.analysis.rules import (
    ANALYSIS_RULE_REGISTRY,
    analysis_rule_names,
    make_analysis_rule,
    register_analysis_rule,
)
from repro.analysis.source import module_from_source
from repro.errors import ConfigurationError

TOY = "toy.mod"

ALL_RULES = ("DET001", "DET002", "DET003", "DET004", "DET005")


def toy_config(**overrides):
    """A config whose every scope is the single fixture module."""
    fields = dict(
        root=Path("/nonexistent"),
        package="toy",
        purity_roots=(),
        wallclock_allowlist=(),
        unordered_extra_modules=(TOY,),
        float_modules=(TOY,),
        message_modules=(TOY,),
        baseline_path=None,
    )
    fields.update(overrides)
    return AnalyzerConfig(**fields)


def run_rules(source, rules, config=None):
    modules = {TOY: module_from_source(TOY, "toy/mod.py", textwrap.dedent(source))}
    return analyze(config or toy_config(), rules=list(rules), modules=modules)


def rule_ids(report):
    return [finding.rule for finding in report.findings]


class TestDet001Randomness:
    def test_flags_unseeded_module_level_random(self):
        report = run_rules(
            """
            import random


            def pick(items):
                return random.choice(items)
            """,
            ["DET001"],
        )
        assert rule_ids(report) == ["DET001"]
        assert report.findings[0].function == "pick"

    def test_flags_uuid_import(self):
        report = run_rules("import uuid\n", ["DET001"])
        assert rule_ids(report) == ["DET001"]

    def test_flags_unseeded_random_instance(self):
        report = run_rules(
            """
            import random

            rng = random.Random()
            """,
            ["DET001"],
        )
        assert rule_ids(report) == ["DET001"]

    def test_flags_os_urandom(self):
        report = run_rules(
            """
            import os


            def salt():
                return os.urandom(8)
            """,
            ["DET001"],
        )
        assert rule_ids(report) == ["DET001"]

    def test_accepts_seeded_random_instance(self):
        report = run_rules(
            """
            import random

            rng = random.Random(42)


            def pick(items):
                return rng.choice(items)
            """,
            ["DET001"],
        )
        assert report.findings == ()


class TestDet002WallClock:
    def test_flags_time_time(self):
        report = run_rules(
            """
            import time


            def now():
                return time.time()
            """,
            ["DET002"],
        )
        assert rule_ids(report) == ["DET002"]

    def test_flags_datetime_now(self):
        report = run_rules(
            """
            from datetime import datetime


            def stamp():
                return datetime.now()
            """,
            ["DET002"],
        )
        assert rule_ids(report) == ["DET002"]

    def test_allowlisted_module_is_exempt(self):
        config = toy_config(wallclock_allowlist=(TOY,))
        report = run_rules(
            """
            import time


            def now():
                return time.time()
            """,
            ["DET002"],
            config=config,
        )
        assert report.findings == ()

    def test_non_clock_time_functions_pass(self):
        report = run_rules(
            """
            import time


            def pause():
                time.sleep(0.1)
            """,
            ["DET002"],
        )
        assert report.findings == ()


class TestDet003UnorderedIteration:
    def test_flags_set_iteration_into_append_sink(self):
        report = run_rules(
            """
            def collect(items: set):
                out = []
                for item in items:
                    out.append(item)
                return out
            """,
            ["DET003"],
        )
        assert rule_ids(report) == ["DET003"]

    def test_flags_join_over_dict_keys(self):
        report = run_rules(
            """
            def label(parts: dict):
                return ",".join(parts.keys())
            """,
            ["DET003"],
        )
        assert rule_ids(report) == ["DET003"]

    def test_flags_returned_comprehension_over_set(self):
        report = run_rules(
            """
            def expand(items: frozenset):
                return [item for item in items]
            """,
            ["DET003"],
        )
        assert rule_ids(report) == ["DET003"]

    def test_sorted_iteration_passes(self):
        report = run_rules(
            """
            def collect(items: set):
                out = []
                for item in sorted(items):
                    out.append(item)
                return out
            """,
            ["DET003"],
        )
        assert report.findings == ()

    def test_out_of_scope_module_is_ignored(self):
        config = toy_config(unordered_extra_modules=())
        report = run_rules(
            """
            def collect(items: set):
                out = []
                for item in items:
                    out.append(item)
                return out
            """,
            ["DET003"],
            config=config,
        )
        assert report.findings == ()

    def test_ordered_waiver_moves_finding_to_waived(self):
        report = run_rules(
            """
            def collect(items: set):
                out = []
                # det: ordered -- fixture justification
                for item in items:
                    out.append(item)
                return out
            """,
            ["DET003"],
        )
        assert report.findings == ()
        assert [finding.rule for finding in report.waived] == ["DET003"]

    def test_waiver_slides_through_comment_block(self):
        """A waiver above a multi-line comment applies to the code below it."""
        report = run_rules(
            """
            def collect(items: set):
                out = []
                # det: ordered -- fixture justification
                # spread over several comment lines
                # before the statement itself
                for item in items:
                    out.append(item)
                return out
            """,
            ["DET003"],
        )
        assert report.findings == ()
        assert [finding.rule for finding in report.waived] == ["DET003"]


class TestDet004FloatHazards:
    def test_flags_float_equality(self):
        report = run_rules(
            """
            def same(a: float, b: float):
                return a == b
            """,
            ["DET004"],
        )
        assert rule_ids(report) == ["DET004"]

    def test_flags_sum_over_set(self):
        report = run_rules(
            """
            def total(weights: set):
                return sum(weights)
            """,
            ["DET004"],
        )
        assert rule_ids(report) == ["DET004"]

    def test_flags_float_accumulation_over_dict_values(self):
        report = run_rules(
            """
            def total(weights: dict):
                acc = 0.0
                for weight in weights.values():
                    acc += weight
                return acc
            """,
            ["DET004"],
        )
        assert rule_ids(report) == ["DET004"]

    def test_sorted_accumulation_passes(self):
        report = run_rules(
            """
            def total(weights: dict):
                acc = 0.0
                for weight in sorted(weights.values()):
                    acc += weight
                return acc
            """,
            ["DET004"],
        )
        assert report.findings == ()

    def test_integer_equality_passes(self):
        report = run_rules(
            """
            def same(a: int, b: int):
                return a == b
            """,
            ["DET004"],
        )
        assert report.findings == ()


class TestDet005WireMessages:
    def test_flags_any_typed_field(self):
        report = run_rules(
            """
            from dataclasses import dataclass
            from typing import Any


            @dataclass(frozen=True)
            class Msg:
                payload: Any
            """,
            ["DET005"],
        )
        assert rule_ids(report) == ["DET005"]

    def test_flags_mutable_default(self):
        report = run_rules(
            """
            import dataclasses
            from dataclasses import dataclass
            from typing import Tuple


            @dataclass
            class Msg:
                tags: list = dataclasses.field(default_factory=list)
            """,
            ["DET005"],
        )
        assert "DET005" in rule_ids(report)

    def test_flags_unknown_field_class(self):
        report = run_rules(
            """
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class Msg:
                blob: SomethingOpaque
            """,
            ["DET005"],
        )
        assert rule_ids(report) == ["DET005"]

    def test_accepts_scalar_and_tuple_fields(self):
        report = run_rules(
            """
            from dataclasses import dataclass
            from typing import Optional, Tuple


            @dataclass(frozen=True)
            class Msg:
                sender: int
                digest: str
                parents: Tuple[str, ...]
                note: Optional[str] = None
            """,
            ["DET005"],
        )
        assert report.findings == ()

    def test_accepts_canonically_encodable_nested_class(self):
        report = run_rules(
            """
            from dataclasses import dataclass
            from typing import Tuple


            @dataclass(frozen=True)
            class Inner:
                value: int

                def canonical_fields(self) -> Tuple[object, ...]:
                    return (self.value,)


            @dataclass(frozen=True)
            class Msg:
                inner: Inner
            """,
            ["DET005"],
        )
        assert report.findings == ()

    def test_waive_comment_applies_to_rule(self):
        report = run_rules(
            """
            from dataclasses import dataclass
            from typing import Any


            @dataclass(frozen=True)
            class Msg:
                # det: waive[DET005] fixture justification
                payload: Any = None
            """,
            ["DET005"],
        )
        assert report.findings == ()
        assert [finding.rule for finding in report.waived] == ["DET005"]


class TestRegistryContract:
    """The rule registry mirrors the scoring-rule registry semantics."""

    def test_builtin_rules_registered_in_order(self):
        assert analysis_rule_names()[:5] == ALL_RULES

    def test_make_rule_returns_matching_id(self):
        for name in ALL_RULES:
            assert make_analysis_rule(name).rule_id == name

    def test_unknown_rule_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown analysis rule"):
            make_analysis_rule("DET999")

    def test_double_registration_rejected_without_replace(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_analysis_rule("DET001", lambda: None)

    def test_replace_allows_reregistration(self):
        original = ANALYSIS_RULE_REGISTRY["DET001"]
        try:
            register_analysis_rule("DET001", original, replace=True)
        finally:
            ANALYSIS_RULE_REGISTRY["DET001"] = original

    def test_every_rule_explains_itself(self):
        for name in ALL_RULES:
            text = make_analysis_rule(name).explain()
            assert isinstance(text, str)
            assert text.strip()

    def test_finding_render_format(self):
        report = run_rules("import uuid\n", ["DET001"])
        rendered = report.findings[0].render()
        assert rendered.startswith("toy/mod.py:1: DET001 ")
        assert report.findings[0].function == "<module>"
