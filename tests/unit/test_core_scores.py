"""Unit tests for reputation scores and scoring rules."""

import pytest

from repro.core.scores import ReputationScores
from repro.core.scoring import (
    CarouselScoring,
    HammerHeadScoring,
    ScoringContext,
    ShoalScoring,
)
from repro.errors import ScheduleError


class TestReputationScores:
    def test_scores_start_at_zero(self, committee4):
        scores = ReputationScores(committee4)
        assert all(scores.score_of(validator) == 0.0 for validator in committee4.validators)

    def test_add_accumulates(self, committee4):
        scores = ReputationScores(committee4)
        scores.add(1)
        scores.add(1, 2.0)
        assert scores.score_of(1) == 3.0

    def test_add_unknown_validator_rejected(self, committee4):
        with pytest.raises(ScheduleError):
            ReputationScores(committee4).add(99)

    def test_reset_zeroes_everything(self, committee4):
        scores = ReputationScores(committee4)
        scores.add(0, 5.0)
        scores.reset()
        assert scores.score_of(0) == 0.0

    def test_snapshot_is_independent(self, committee4):
        scores = ReputationScores(committee4)
        scores.add(2, 1.0)
        snapshot = scores.snapshot()
        scores.add(2, 1.0)
        assert snapshot.score_of(2) == 1.0
        assert scores.score_of(2) == 2.0

    def test_ranked_ascending_breaks_ties_by_id(self, committee4):
        scores = ReputationScores(committee4)
        scores.add(3, 1.0)
        assert scores.ranked_ascending() == [0, 1, 2, 3]

    def test_ranked_descending_breaks_ties_by_id(self, committee4):
        scores = ReputationScores(committee4)
        scores.add(2, 1.0)
        assert scores.ranked_descending() == [2, 0, 1, 3]

    def test_lowest_by_stake_budget_equal_stake(self, committee10):
        scores = ReputationScores(committee10)
        for validator in range(5, 10):
            scores.add(validator, 10.0)
        # Budget of 3 stake -> the three lowest scorers (ids 0, 1, 2).
        assert scores.lowest_by_stake_budget(3) == [0, 1, 2]

    def test_lowest_by_stake_budget_zero(self, committee10):
        assert ReputationScores(committee10).lowest_by_stake_budget(0) == []

    def test_highest_excludes_given_validators(self, committee4):
        scores = ReputationScores(committee4)
        scores.add(0, 5.0)
        scores.add(1, 4.0)
        assert scores.highest(2, excluding=[0]) == [1, 2]

    def test_highest_caps_at_committee_size(self, committee4):
        scores = ReputationScores(committee4)
        assert len(scores.highest(10)) == 4

    def test_items_sorted_by_validator(self, committee4):
        scores = ReputationScores(committee4)
        scores.add(3, 7.0)
        items = scores.items()
        assert [validator for validator, _ in items] == [0, 1, 2, 3]
        assert dict(items)[3] == 7.0

    def test_as_dict_is_a_copy(self, committee4):
        scores = ReputationScores(committee4)
        exported = scores.as_dict()
        exported[0] = 99.0
        assert scores.score_of(0) == 0.0


class TestScoringRules:
    def _context(self, committee):
        return ScoringContext(committee=committee, scores=ReputationScores(committee))

    def test_hammerhead_scores_votes(self, committee4):
        context = self._context(committee4)
        rule = HammerHeadScoring()
        rule.on_vote(1, anchor_round=2, context=context)
        rule.on_vote(1, anchor_round=4, context=context)
        rule.on_vote(2, anchor_round=4, context=context)
        assert context.scores.score_of(1) == 2.0
        assert context.scores.score_of(2) == 1.0
        assert context.scores.score_of(0) == 0.0

    def test_hammerhead_ignores_commit_and_skip_events(self, committee4):
        context = self._context(committee4)
        rule = HammerHeadScoring()
        rule.on_anchor_committed(0, 2, context)
        rule.on_anchor_skipped(1, 4, context)
        rule.on_vertex_in_committed_subdag(2, 3, context)
        assert all(context.scores.score_of(validator) == 0.0 for validator in committee4.validators)

    def test_hammerhead_custom_points(self, committee4):
        context = self._context(committee4)
        HammerHeadScoring(points_per_vote=0.5).on_vote(0, 2, context)
        assert context.scores.score_of(0) == 0.5

    def test_shoal_rewards_committed_and_punishes_skipped(self, committee4):
        context = self._context(committee4)
        rule = ShoalScoring()
        rule.on_anchor_committed(0, 2, context)
        rule.on_anchor_committed(0, 4, context)
        rule.on_anchor_skipped(1, 6, context)
        assert context.scores.score_of(0) == 2.0
        assert context.scores.score_of(1) == -1.0

    def test_shoal_ignores_votes(self, committee4):
        context = self._context(committee4)
        ShoalScoring().on_vote(2, 2, context)
        assert context.scores.score_of(2) == 0.0

    def test_carousel_scores_committed_subdag_presence(self, committee4):
        context = self._context(committee4)
        rule = CarouselScoring()
        rule.on_vertex_in_committed_subdag(3, 1, context)
        rule.on_vertex_in_committed_subdag(3, 2, context)
        assert context.scores.score_of(3) == 2.0

    def test_rule_names_are_distinct(self):
        names = {HammerHeadScoring.name, ShoalScoring.name, CarouselScoring.name}
        assert names == {"hammerhead", "shoal", "carousel"}
