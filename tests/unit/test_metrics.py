"""Unit tests for metrics: latency stats, execution model, collector, reports."""

import pytest

from repro.consensus.committed import OrderedVertex
from repro.dag.vertex import make_vertex
from repro.metrics.collector import MetricsCollector
from repro.metrics.execution import ExecutionModel
from repro.metrics.latency import LatencyStats
from repro.metrics.leader_stats import LeaderUtilizationStats
from repro.metrics.report import PerformanceReport, format_table
from repro.consensus.committed import CommittedSubDag
from repro.errors import ConfigurationError
from repro.workload.transactions import counter_increment
from tests.conftest import vid


class TestLatencyStats:
    def test_empty_stats_are_zero(self):
        stats = LatencyStats()
        assert stats.count == 0
        assert stats.average() == 0.0
        assert stats.p50() == 0.0
        assert stats.stdev() == 0.0
        assert stats.maximum() == 0.0

    def test_average_and_max(self):
        stats = LatencyStats()
        stats.extend([1.0, 2.0, 3.0])
        assert stats.average() == pytest.approx(2.0)
        assert stats.maximum() == 3.0

    def test_percentiles_interpolate(self):
        stats = LatencyStats()
        stats.extend([1.0, 2.0, 3.0, 4.0])
        assert stats.p50() == pytest.approx(2.5)
        assert stats.percentile(0.0) == 1.0
        assert stats.percentile(1.0) == 4.0

    def test_percentiles_monotone_under_rounding(self):
        # Regression (hypothesis-found): with values near 1e6 the old
        # two-product interpolation rounded p99 below p95.
        stats = LatencyStats()
        stats.extend([0.0, 1000000.0, 999999.9999999999])
        assert stats.p50() <= stats.p95() <= stats.p99() <= 1000000.0

    def test_p95_close_to_max_for_uniform_samples(self):
        stats = LatencyStats()
        stats.extend([float(value) for value in range(1, 101)])
        assert 95.0 <= stats.p95() <= 96.0

    def test_single_sample(self):
        stats = LatencyStats()
        stats.record(5.0)
        assert stats.p50() == 5.0
        assert stats.p95() == 5.0
        assert stats.stdev() == 0.0

    def test_stdev(self):
        stats = LatencyStats()
        stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.stdev() == pytest.approx(2.138, abs=1e-3)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats().record(-1.0)

    def test_invalid_percentile_rejected(self):
        stats = LatencyStats()
        stats.record(1.0)
        with pytest.raises(ValueError):
            stats.percentile(1.5)

    def test_summary_contains_all_fields(self):
        stats = LatencyStats()
        stats.extend([1.0, 2.0])
        summary = stats.summary()
        assert set(summary) == {"count", "avg", "stdev", "p50", "p95", "p99", "max"}

    def test_sorted_cache_invalidated_by_record(self):
        stats = LatencyStats()
        stats.extend([3.0, 1.0])
        # Populate the sorted cache, then record out-of-order samples; a
        # stale cache would return the old percentiles.
        assert stats.p50() == 2.0
        assert stats.maximum() == 3.0
        stats.record(0.5)
        assert stats.p50() == 1.0
        assert stats.maximum() == 3.0
        stats.record(9.0)
        assert stats.maximum() == 9.0
        assert stats.percentile(0.0) == 0.5

    def test_summary_matches_individual_statistics(self):
        stats = LatencyStats()
        stats.extend([0.4, 2.5, 1.1, 0.9, 3.3, 0.2])
        summary = stats.summary()
        assert summary["count"] == float(stats.count)
        assert summary["avg"] == pytest.approx(stats.average())
        assert summary["stdev"] == pytest.approx(stats.stdev())
        assert summary["p50"] == pytest.approx(stats.p50())
        assert summary["p95"] == pytest.approx(stats.p95())
        assert summary["p99"] == pytest.approx(stats.p99())
        assert summary["max"] == stats.maximum()

    def test_empty_summary_is_zero(self):
        summary = LatencyStats().summary()
        assert all(value == 0.0 for value in summary.values())


class TestExecutionModel:
    def test_below_capacity_adds_only_service_time(self):
        model = ExecutionModel(capacity_tps=100.0)
        finish = model.execute(ordered_at=10.0)
        assert finish == pytest.approx(10.01)

    def test_saturation_builds_a_queue(self):
        model = ExecutionModel(capacity_tps=10.0)
        finishes = [model.execute(ordered_at=0.0) for _ in range(10)]
        assert finishes[-1] == pytest.approx(1.0)
        assert model.backlog_delay(0.0) == pytest.approx(1.0)

    def test_idle_periods_drain_the_queue(self):
        model = ExecutionModel(capacity_tps=10.0)
        model.execute(ordered_at=0.0)
        finish = model.execute(ordered_at=5.0)
        assert finish == pytest.approx(5.1)

    def test_executed_counter(self):
        model = ExecutionModel(capacity_tps=10.0)
        for _ in range(3):
            model.execute(0.0)
        assert model.executed == 3

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            ExecutionModel(0.0)


def ordered_record(transactions, ordered_at, source=1, round_number=3, position=0):
    vertex = make_vertex(
        round_number,
        source,
        edges=[vid(round_number - 1, index) for index in range(3)],
        block=transactions,
    )
    return OrderedVertex(vertex=vertex, ordered_at=ordered_at, anchor_round=4, position=position)


class TestMetricsCollector:
    def test_latency_includes_confirmation_delay(self):
        collector = MetricsCollector(confirmation_delay=0.1)
        transaction = counter_increment(1, 0, submitted_at=1.0, target_validator=0)
        collector.on_transaction_submitted(transaction)
        collector.on_vertex_ordered(ordered_record((transaction,), ordered_at=2.0))
        assert collector.committed == 1
        assert collector.average_latency() == pytest.approx(1.1)

    def test_duplicate_orderings_count_once(self):
        collector = MetricsCollector()
        transaction = counter_increment(1, 0, submitted_at=1.0, target_validator=0)
        collector.on_transaction_submitted(transaction)
        collector.on_vertex_ordered(ordered_record((transaction,), ordered_at=2.0))
        collector.on_vertex_ordered(ordered_record((transaction,), ordered_at=3.0, source=2))
        assert collector.committed == 1
        assert collector.duplicate_commits == 1

    def test_unknown_transactions_are_ignored(self):
        collector = MetricsCollector()
        transaction = counter_increment(5, 0, submitted_at=1.0, target_validator=0)
        collector.on_vertex_ordered(ordered_record((transaction,), ordered_at=2.0))
        assert collector.committed == 0

    def test_warmup_excludes_early_transactions(self):
        collector = MetricsCollector(warmup=10.0)
        early = counter_increment(1, 0, submitted_at=5.0, target_validator=0)
        late = counter_increment(2, 0, submitted_at=15.0, target_validator=0)
        for transaction in (early, late):
            collector.on_transaction_submitted(transaction)
        collector.on_vertex_ordered(ordered_record((early, late), ordered_at=16.0))
        assert collector.committed == 1
        assert collector.latency.count == 1

    def test_throughput_counts_only_transactions_finalized_within_run(self):
        collector = MetricsCollector(
            confirmation_delay=0.0, execution=ExecutionModel(capacity_tps=1.0)
        )
        transactions = [
            counter_increment(index, 0, submitted_at=1.0, target_validator=0) for index in range(10)
        ]
        for transaction in transactions:
            collector.on_transaction_submitted(transaction)
        collector.on_vertex_ordered(ordered_record(tuple(transactions), ordered_at=2.0))
        # Execution takes 1 s per transaction: only 3 finish by t=5.
        assert collector.throughput(duration=5.0) == pytest.approx(3 / 5.0)

    def test_commit_ratio(self):
        collector = MetricsCollector()
        transactions = [
            counter_increment(index, 0, submitted_at=1.0, target_validator=0) for index in range(4)
        ]
        for transaction in transactions:
            collector.on_transaction_submitted(transaction)
        collector.on_vertex_ordered(ordered_record(tuple(transactions[:2]), ordered_at=2.0))
        assert collector.commit_ratio() == pytest.approx(0.5)

    def test_summary_fields(self):
        collector = MetricsCollector()
        summary = collector.summary(duration=10.0)
        assert "throughput_tps" in summary
        assert "commit_ratio" in summary

    def test_non_transaction_payloads_are_skipped(self):
        collector = MetricsCollector()
        collector.on_vertex_ordered(ordered_record(("opaque",), ordered_at=2.0))
        assert collector.committed == 0


class TestLeaderUtilizationStats:
    def _subdag(self, round_number, leader):
        anchor = make_vertex(
            round_number, leader, edges=[vid(round_number - 1, index) for index in range(3)]
        )
        return CommittedSubDag(anchor=anchor, vertices=(anchor,), committed_at=1.0, direct=True)

    def test_commits_and_skips(self):
        stats = LeaderUtilizationStats()
        stats.record_commit(self._subdag(2, leader=0))
        stats.record_commit(self._subdag(6, leader=2))
        stats.finalize_skips(6, leader_of=lambda round_number: (round_number // 2 - 1) % 4)
        assert stats.commits == 2
        assert stats.skips == 1
        assert stats.skipped_rounds == {4: 1}
        assert stats.skip_ratio() == pytest.approx(1 / 3)

    def test_commits_per_leader(self):
        stats = LeaderUtilizationStats()
        stats.record_commit(self._subdag(2, leader=0))
        stats.record_commit(self._subdag(4, leader=0))
        stats.record_commit(self._subdag(6, leader=1))
        assert stats.commits_per_leader() == {0: 2, 1: 1}
        assert stats.leaders_with_commits() == [0, 1]

    def test_no_commits(self):
        stats = LeaderUtilizationStats()
        stats.finalize_skips(0, leader_of=lambda round_number: 0)
        assert stats.skip_ratio() == 0.0


class TestPerformanceReport:
    def _report(self, **overrides):
        values = dict(
            system="hammerhead",
            committee_size=10,
            faults=3,
            input_load_tps=1000.0,
            duration=60.0,
            throughput_tps=950.0,
            avg_latency_s=1.8,
            p50_latency_s=1.7,
            p95_latency_s=2.4,
            stdev_latency_s=0.3,
            committed_transactions=57000,
            submitted_transactions=60000,
            commits=80,
            skipped_anchor_rounds=5,
            leader_timeouts=12,
            schedule_changes=7,
        )
        values.update(overrides)
        return PerformanceReport(**values)

    def test_label_mentions_faults(self):
        assert "3 faulty" in self._report().label()
        assert "faulty" not in self._report(faults=0).label()

    def test_as_dict_includes_extra(self):
        report = self._report(extra={"events_fired": 123.0})
        assert report.as_dict()["events_fired"] == 123.0

    def test_format_table_contains_all_rows(self):
        reports = [self._report(system="bullshark"), self._report(system="hammerhead")]
        table = format_table(reports, title="Figure 2")
        assert "Figure 2" in table
        assert "bullshark" in table
        assert "hammerhead" in table
        assert table.count("\n") >= 4

    def test_format_table_empty(self):
        table = format_table([])
        assert "System" in table
