"""Tests for the parallel sweep engine."""

from __future__ import annotations

import warnings

import pytest

from repro.sim.experiment import ExperimentConfig
from repro.sim.sweep import (
    PARALLELISM_ENV,
    SweepEngine,
    compare_systems,
    default_parallelism,
    latency_throughput_curve,
    run_sweep,
)


def tiny_config(**overrides) -> ExperimentConfig:
    base = ExperimentConfig(
        committee_size=4,
        input_load_tps=100.0,
        duration=6.0,
        warmup=1.0,
        latency_model="uniform",
        min_round_interval=0.10,
        leader_timeout=1.0,
        seed=8,
    )
    return base.with_overrides(**overrides)


class TestSweepEngine:
    def test_results_in_input_order(self):
        loads = [150.0, 50.0, 100.0]
        configs = [tiny_config(input_load_tps=load) for load in loads]
        results = SweepEngine(parallelism=2).run(configs)
        assert [result.config.input_load_tps for result in results] == loads

    def test_parallel_equals_serial(self):
        configs = [tiny_config(input_load_tps=load) for load in (80.0, 160.0)]
        serial = SweepEngine(parallelism=1).run(configs)
        parallel = SweepEngine(parallelism=2).run(configs)
        for serial_result, parallel_result in zip(serial, parallel):
            assert serial_result.ordering_digests == parallel_result.ordering_digests
            assert serial_result.report.throughput_tps == parallel_result.report.throughput_tps
            assert serial_result.report.avg_latency_s == parallel_result.report.avg_latency_s

    def test_empty_batch(self):
        assert SweepEngine(parallelism=4).run([]) == []

    def test_unpicklable_config_falls_back_to_serial(self):
        class Unpicklable:
            at_time = 0.0
            validators = ()

            def __reduce__(self):
                raise TypeError("not picklable")

            def schedule(self, simulator, network, nodes):
                return None

        configs = [tiny_config(extra_faults=(Unpicklable(),)) for _ in range(2)]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            results = SweepEngine(parallelism=2).run(configs)
        assert len(results) == 2
        assert any("fell back to serial" in str(warning.message) for warning in caught)

    def test_experiment_errors_propagate_without_serial_rerun(self):
        """A failure inside run_experiment is not misread as a pool failure."""
        from repro.errors import ConfigurationError

        bad = tiny_config().with_overrides(faults=3)  # n=4 tolerates f=1
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with pytest.raises(ConfigurationError):
                SweepEngine(parallelism=2).run([tiny_config(), bad])
        assert not any("fell back to serial" in str(w.message) for w in caught)

    def test_default_parallelism_env_override(self, monkeypatch):
        monkeypatch.setenv(PARALLELISM_ENV, "3")
        assert default_parallelism() == 3
        monkeypatch.setenv(PARALLELISM_ENV, "zero")
        with pytest.raises(ValueError):
            default_parallelism()


class TestSweepHelpers:
    def test_latency_throughput_curve_sets_loads(self):
        results = latency_throughput_curve(tiny_config(), [60.0, 120.0], parallelism=1)
        assert [result.config.input_load_tps for result in results] == [60.0, 120.0]

    def test_compare_systems_batches_protocols(self):
        curves = compare_systems(
            tiny_config(), loads=[60.0], protocols=("hammerhead", "bullshark"), parallelism=1
        )
        assert set(curves) == {"hammerhead", "bullshark"}
        for protocol, results in curves.items():
            assert len(results) == 1
            assert results[0].config.protocol == protocol

    def test_run_sweep_matches_individual_runs(self):
        from repro.sim.experiment import run_experiment

        config = tiny_config(input_load_tps=90.0)
        direct = run_experiment(config)
        swept = run_sweep([config], parallelism=1)[0]
        assert direct.ordering_digests == swept.ordering_digests
