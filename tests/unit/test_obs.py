"""Unit tests for the observability layer (repro.obs).

Covers the tracer protocol and its zero-overhead elision contract, the
instrumentation registry, the wall-clock profiler's self-time
attribution, the causal trace queries, and the ``python -m repro.obs``
CLI surface over synthetic traces (the full pipeline is exercised by
tests/integration/test_observability.py).
"""

import json

import pytest

from repro.errors import ReproError
from repro.obs import (
    EVENT_KINDS,
    NULL_TRACER,
    InstrumentationRegistry,
    MemoryTracer,
    NullTracer,
    Tracer,
)
from repro.obs import query
from repro.obs.cli import main as obs_main
from repro.obs.profiler import WallclockProfiler
from repro.obs.registry import Histogram, estimate_wire_bytes
from repro.obs.trace import KNOWN_KINDS, event_lines, write_events

from tests.cli_contract import assert_error_contract, run_cli


class TestTracerProtocol:
    def test_null_tracer_is_disabled_and_silent(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.emit("vertex_proposed", round=1) is None
        assert isinstance(NULL_TRACER, NullTracer)
        assert isinstance(NULL_TRACER, Tracer)

    def test_memory_tracer_records_with_injected_clock(self):
        ticks = iter([1.5, 2.5])
        tracer = MemoryTracer(clock=lambda: next(ticks))
        tracer.emit("vertex_proposed", node=0, round=1)
        tracer.emit("anchor_committed", node=0, round=2, leader=1)
        assert len(tracer) == 2
        first, second = tracer.events
        assert first == {"kind": "vertex_proposed", "t": 1.5, "node": 0, "round": 1}
        assert second["t"] == 2.5

    def test_default_clock_is_zero_not_wallclock(self):
        tracer = MemoryTracer()
        tracer.emit("dag_gc", removed=3)
        assert tracer.events[0]["t"] == 0.0

    def test_event_kinds_catalogue_is_unique_and_described(self):
        assert len(KNOWN_KINDS) == len(set(KNOWN_KINDS))
        assert all(description for _, description in EVENT_KINDS)

    def test_event_lines_are_sorted_key_jsonl(self):
        tracer = MemoryTracer()
        tracer.emit("vertex_parked", source=2, round=4, missing=1)
        (line,) = event_lines(tracer.events, point="p", seed=7)
        decoded = json.loads(line)
        assert decoded["point"] == "p" and decoded["seed"] == 7
        assert list(json.loads(line)) == sorted(decoded)

    def test_write_events_round_trips_through_load_trace(self, tmp_path):
        tracer = MemoryTracer()
        tracer.emit("vertex_inserted", node=0, round=1, source=2)
        path = tmp_path / "t.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            count = write_events(handle, tracer.events, point="a", seed=1)
        assert count == 1
        events = query.load_trace(str(path))
        assert events[0]["kind"] == "vertex_inserted"
        assert events[0]["point"] == "a"


class TestRegistry:
    def test_counters_gauges_histograms_snapshot_sorted(self):
        registry = InstrumentationRegistry()
        registry.inc("b.two")
        registry.inc("a.one", 5)
        registry.set_gauge("depth", 3.0)
        registry.observe("fill", 2.0)
        registry.observe("fill", 4.0)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a.one", "b.two"]
        assert snap["counters"]["a.one"] == 5
        assert snap["gauges"]["depth"] == 3.0
        assert snap["histograms"]["fill"] == {
            "count": 2,
            "total": 6.0,
            "mean": 3.0,
            "min": 2.0,
            "max": 4.0,
        }

    def test_empty_registry_snapshots_empty(self):
        assert InstrumentationRegistry().snapshot() == {}

    def test_histogram_single_observation(self):
        histogram = Histogram()
        histogram.observe(7.0)
        snap = histogram.snapshot()
        assert snap["min"] == snap["max"] == snap["mean"] == 7.0

    def test_count_message_accounts_type_and_bytes(self):
        class FakeAck:
            signers = (1, 2, 3)

        registry = InstrumentationRegistry()
        registry.count_message(FakeAck(), copies=4)
        snap = registry.snapshot()["counters"]
        assert snap["messages.FakeAck"] == 4
        assert snap["bytes.FakeAck"] == estimate_wire_bytes(FakeAck()) * 4

    def test_wire_bytes_scale_with_structure(self):
        class Bare:
            pass

        class WithVertices:
            vertices = (object(), object())

        assert estimate_wire_bytes(WithVertices()) > estimate_wire_bytes(Bare())


class TestProfiler:
    def test_nested_phases_attribute_self_time(self):
        profiler = WallclockProfiler()
        with profiler.phase("outer"):
            with profiler.phase("inner"):
                pass
        snap = profiler.snapshot()
        assert set(snap["phases"]) == {"outer", "inner"}
        assert snap["phases"]["outer"]["calls"] == 1
        assert snap["phases"]["inner"]["calls"] == 1
        assert snap["total_seconds"] >= 0.0

    def test_wrap_counts_calls_and_returns_value(self):
        profiler = WallclockProfiler()
        wrapped = profiler.wrap("rbc", lambda x: x * 2)
        assert wrapped(21) == 42
        assert wrapped(1) == 2
        assert profiler.snapshot()["phases"]["rbc"]["calls"] == 2

    def test_wrap_propagates_exceptions_and_pops(self):
        profiler = WallclockProfiler()

        def boom():
            raise RuntimeError("x")

        wrapped = profiler.wrap("rbc", boom)
        with pytest.raises(RuntimeError):
            wrapped()
        assert profiler._stack == []


def synthetic_trace():
    """A hand-built trace exercising every query path: validator 2 leads
    a skipped anchor at r=6 (never proposed, crashed, policy window
    open) and is demoted at the schedule change."""
    return [
        {"kind": "validator_crashed", "t": 1.0, "validator": 2},
        {
            "kind": "behavior_window_open",
            "t": 1.5,
            "validators": [2],
            "policy": "silent",
            "coordinated": False,
            "window": "2@1.5",
        },
        {"kind": "anchor_committed", "t": 2.0, "node": 0, "round": 4,
         "leader": 1, "direct": True, "vertices": 8},
        {"kind": "message_dropped", "t": 2.5, "sender": 2, "destination": 0,
         "type": "ProposeMessage", "reason": "sender_crashed"},
        {"kind": "anchor_skipped", "t": 3.0, "node": 0, "round": 6,
         "leader": 2, "anchor_present": False, "direct_stake": 0, "threshold": 2},
        {"kind": "schedule_change", "t": 4.0, "node": 0, "epoch": 1,
         "triggered_by_round": 8, "new_initial_round": 10, "scoring": "hammerhead",
         "scores": {"0": 5, "1": 5, "2": 0, "3": 4}, "demoted": [2], "promoted": [0]},
    ]


class TestQueries:
    def test_observer_node_is_lowest_anchor_reporter(self):
        assert query.observer_node(synthetic_trace()) == 0

    def test_observer_node_requires_anchor_events(self):
        with pytest.raises(ReproError, match="no anchor events"):
            query.observer_node([{"kind": "dag_gc", "t": 0.0}])

    def test_timeline_renders_commits_skips_and_schedule(self):
        lines = query.render_timeline(synthetic_trace())
        text = "\n".join(lines)
        assert "commit" in text and "skip" in text and "epoch=1" in text
        assert "demoted=[2]" in text

    def test_timeline_limit_truncates(self):
        lines = query.render_timeline(synthetic_trace(), limit=1)
        assert any("truncated" in line for line in lines)

    def test_first_skipped_round(self):
        assert query.first_skipped_round(synthetic_trace(), 0) == 6
        with pytest.raises(ReproError, match="no skipped anchors"):
            query.first_skipped_round([], 0)

    def test_explain_skip_collects_all_evidence(self):
        text = "\n".join(query.explain_anchor(synthetic_trace(), 6))
        assert "skipped on validator 0" in text
        assert "never proposed" in text
        assert "crashed" in text
        assert "policy" in text
        assert "dropped 1 message(s)" in text

    def test_explain_skip_breaks_drops_down_by_reason(self):
        text = "\n".join(query.explain_anchor(synthetic_trace(), 6))
        assert "(1 sender_crashed)" in text
        # No loss-window drops in the base trace: no window line.
        assert "loss window(s) involved" not in text

    def test_explain_skip_names_loss_windows_and_anchor_broadcast(self):
        """Loss drops carry the disturbance window token and (for
        broadcast envelopes) origin/round — explain surfaces both."""
        trace = synthetic_trace() + [
            {"kind": "message_dropped", "t": 2.6, "sender": 2, "destination": 1,
             "type": "CertificateMessage", "reason": "loss", "window": "8.0-14.0",
             "origin": 2, "round": 5},
            {"kind": "message_dropped", "t": 2.7, "sender": 2, "destination": 3,
             "type": "ProposeMessage", "reason": "loss", "window": "8.0-14.0",
             "origin": 2, "round": 6},
        ]
        text = "\n".join(query.explain_anchor(trace, 6))
        assert "dropped 3 message(s)" in text
        assert "2 loss" in text and "1 sender_crashed" in text
        assert "loss window(s) involved: 8.0-14.0" in text
        assert "1 of them carried the leader's r=6 broadcast itself" in text
        assert "ProposeMessage" in text

    def test_explain_committed_anchor(self):
        (line,) = query.explain_anchor(synthetic_trace(), 4)
        assert "not skipped" in line and "directly" in line

    def test_explain_unknown_round_raises(self):
        with pytest.raises(ReproError, match="no anchor event"):
            query.explain_anchor(synthetic_trace(), 12)

    def test_explain_demotion_cites_scores_skips_and_window(self):
        text = "\n".join(query.explain_demotion(synthetic_trace(), 2))
        assert "demoted at epoch 1" in text
        assert "scored 0" in text and "committee best 5" in text
        assert "anchor round(s) led by 2 were skipped" in text
        assert "behavior window" in text

    def test_explain_demotion_never_demoted_raises(self):
        with pytest.raises(ReproError, match="never demoted"):
            query.explain_demotion(synthetic_trace(), 1)

    def test_select_point_filters_and_validates(self):
        events = [dict(event, point="a") for event in synthetic_trace()]
        events += [dict(event, point="b") for event in synthetic_trace()]
        assert all(e["point"] == "a" for e in query.select_point(events, None))
        assert all(e["point"] == "b" for e in query.select_point(events, "b"))
        with pytest.raises(ReproError, match="unknown point"):
            query.select_point(events, "c")


class TestObsCli:
    def write_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            write_events(handle, synthetic_trace(), point="p0", seed=1)
        return str(path)

    def test_timeline_subcommand(self, capsys, tmp_path):
        code, out, err = run_cli(obs_main, capsys, "timeline", self.write_trace(tmp_path))
        assert code == 0 and err == ""
        assert "timeline for validator 0" in out

    def test_explain_first_skip(self, capsys, tmp_path):
        code, out, err = run_cli(
            obs_main, capsys, "explain", self.write_trace(tmp_path), "--first-skip"
        )
        assert code == 0 and err == ""
        assert "anchor r=6 skipped" in out

    def test_explain_demotion(self, capsys, tmp_path):
        code, out, err = run_cli(
            obs_main, capsys, "explain", self.write_trace(tmp_path), "--demotion", "2"
        )
        assert code == 0 and err == ""
        assert "demoted at epoch 1" in out

    def test_missing_trace_file_exits_2(self, capsys, tmp_path):
        assert_error_contract(
            obs_main, capsys, "timeline", str(tmp_path / "nope.jsonl")
        )

    def test_malformed_trace_exits_2(self, capsys, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        assert_error_contract(
            obs_main, capsys, "explain", str(path), "--first-skip", match="JSONL"
        )

    def test_empty_trace_exits_2(self, capsys, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert_error_contract(obs_main, capsys, "timeline", str(path), match="empty")

    def test_unknown_point_exits_2(self, capsys, tmp_path):
        assert_error_contract(
            obs_main,
            capsys,
            "timeline",
            self.write_trace(tmp_path),
            "--point",
            "zzz",
            match="unknown point",
        )
