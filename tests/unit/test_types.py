"""Unit tests for repro.types."""

import pytest

from repro.types import (
    VertexId,
    anchor_rounds_between,
    is_anchor_round,
    is_vote_round,
    quorum_threshold,
    split_evenly,
    total_stake,
    validity_threshold,
)


class TestRoundClassification:
    def test_round_zero_is_not_an_anchor_round(self):
        assert not is_anchor_round(0)

    def test_even_rounds_are_anchor_rounds(self):
        assert is_anchor_round(2)
        assert is_anchor_round(4)
        assert is_anchor_round(100)

    def test_odd_rounds_are_not_anchor_rounds(self):
        assert not is_anchor_round(1)
        assert not is_anchor_round(3)
        assert not is_anchor_round(99)

    def test_odd_rounds_are_vote_rounds(self):
        assert is_vote_round(1)
        assert is_vote_round(3)

    def test_even_rounds_are_not_vote_rounds(self):
        assert not is_vote_round(0)
        assert not is_vote_round(2)

    def test_anchor_and_vote_rounds_partition_positive_rounds(self):
        for round_number in range(1, 50):
            assert is_anchor_round(round_number) != is_vote_round(round_number)


class TestAnchorRoundsBetween:
    def test_interval_is_half_open_on_the_left(self):
        assert list(anchor_rounds_between(2, 6)) == [4, 6]

    def test_starts_at_round_two_at_the_earliest(self):
        assert list(anchor_rounds_between(0, 6)) == [2, 4, 6]

    def test_empty_when_no_anchor_rounds_in_range(self):
        assert list(anchor_rounds_between(4, 5)) == []
        assert list(anchor_rounds_between(4, 4)) == []

    def test_odd_start_rounds_up_to_next_even(self):
        assert list(anchor_rounds_between(3, 8)) == [4, 6, 8]


class TestStakeThresholds:
    def test_quorum_threshold_for_equal_stake(self):
        # n = 3f + 1 validators of stake 1: quorum must be 2f + 1.
        for f in range(1, 10):
            total = 3 * f + 1
            assert quorum_threshold(total) == 2 * f + 1

    def test_validity_threshold_for_equal_stake(self):
        for f in range(1, 10):
            total = 3 * f + 1
            assert validity_threshold(total) == f + 1

    def test_quorum_and_validity_always_intersect(self):
        # Any quorum and any validity set must share stake: 2f+1 + f+1 > n.
        for total in range(1, 200):
            assert quorum_threshold(total) + validity_threshold(total) > total

    def test_two_quorums_always_intersect_in_an_honest_party(self):
        # 2 * (2f+1) - n >= f + 1 for n = 3f + 1.
        for f in range(1, 30):
            total = 3 * f + 1
            overlap = 2 * quorum_threshold(total) - total
            assert overlap >= validity_threshold(total) - 1
            assert overlap >= f + 1

    def test_total_stake_sums(self):
        assert total_stake([1, 2, 3]) == 6
        assert total_stake([]) == 0


class TestSplitEvenly:
    def test_even_split(self):
        assert split_evenly(10, 5) == (2, 2, 2, 2, 2)

    def test_remainder_distributed_to_first_parts(self):
        assert split_evenly(10, 3) == (4, 3, 3)

    def test_more_parts_than_amount(self):
        assert split_evenly(2, 4) == (1, 1, 0, 0)

    def test_zero_parts_rejected(self):
        with pytest.raises(ValueError):
            split_evenly(5, 0)

    def test_total_is_preserved(self):
        for amount in range(0, 40):
            for parts in range(1, 15):
                assert sum(split_evenly(amount, parts)) == amount


class TestVertexId:
    def test_equality_is_structural(self):
        assert VertexId(3, 1) == VertexId(3, 1)
        assert VertexId(3, 1) != VertexId(3, 2)
        assert VertexId(3, 1) != VertexId(4, 1)

    def test_ordering_is_by_round_then_source(self):
        assert VertexId(2, 5) < VertexId(3, 0)
        assert VertexId(2, 1) < VertexId(2, 2)

    def test_usable_as_dict_key(self):
        mapping = {VertexId(1, 0): "a", VertexId(1, 1): "b"}
        assert mapping[VertexId(1, 0)] == "a"
