"""Unit tests for the schedule managers (static baseline and HammerHead)."""

import pytest

from repro.core.manager import HammerHeadScheduleManager, StaticScheduleManager
from repro.core.schedule_change import CommitCountPolicy, RoundBasedPolicy
from repro.core.scoring import ShoalScoring
from repro.dag.vertex import make_vertex
from repro.errors import ScheduleError
from repro.schedule.round_robin import initial_schedule
from tests.conftest import vid


def make_anchor(round_number, source, parents_round_sources):
    return make_vertex(
        round_number,
        source,
        edges=[vid(round_number - 1, parent) for parent in parents_round_sources],
    )


class TestStaticScheduleManager:
    def test_leader_never_changes(self, committee4):
        schedule = initial_schedule(committee4, permute=False)
        manager = StaticScheduleManager(committee4, schedule)
        leaders_before = [manager.leader_for_round(round_number) for round_number in (2, 4, 6, 8)]
        anchor = make_anchor(2, leaders_before[0], [0, 1, 2])
        for _ in range(50):
            assert manager.on_anchor_committed(anchor) is None
        leaders_after = [manager.leader_for_round(round_number) for round_number in (2, 4, 6, 8)]
        assert leaders_before == leaders_after
        assert manager.epochs == 1

    def test_round_robin_rotation(self, committee4):
        manager = StaticScheduleManager(committee4, initial_schedule(committee4, permute=False))
        assert [manager.leader_for_round(round_number) for round_number in (2, 4, 6, 8, 10)] == [
            0,
            1,
            2,
            3,
            0,
        ]

    def test_leader_for_odd_round_rejected(self, committee4):
        manager = StaticScheduleManager(committee4, initial_schedule(committee4, permute=False))
        with pytest.raises(ScheduleError):
            manager.leader_for_round(3)

    def test_describe(self, committee4):
        manager = StaticScheduleManager(committee4, initial_schedule(committee4, permute=False))
        assert "static" in manager.describe()


class TestHammerHeadScheduleManager:
    def _manager(self, committee, commits=2, exclude_fraction=1 / 3, scoring=None):
        schedule = initial_schedule(committee, permute=False)
        return HammerHeadScheduleManager(
            committee,
            schedule,
            policy=CommitCountPolicy(commits),
            scoring=scoring,
            exclude_fraction=exclude_fraction,
        )

    def test_votes_from_ordered_vertices_accumulate_scores(self, committee4):
        manager = self._manager(committee4)
        # Leader of round 2 is validator 0 (round robin, no permutation).
        voter = make_vertex(3, 1, edges=[vid(2, 0), vid(2, 1), vid(2, 2)])
        manager.on_vertex_ordered(voter)
        assert manager.scores.score_of(1) == 1.0

    def test_non_votes_do_not_score(self, committee4):
        manager = self._manager(committee4)
        # A round-3 vertex that does not link to the round-2 leader (0).
        non_voter = make_vertex(3, 2, edges=[vid(2, 1), vid(2, 2), vid(2, 3)])
        manager.on_vertex_ordered(non_voter)
        assert manager.scores.score_of(2) == 0.0

    def test_even_round_vertices_do_not_vote(self, committee4):
        manager = self._manager(committee4)
        vertex = make_vertex(2, 1, edges=[vid(1, 0), vid(1, 1), vid(1, 2)])
        manager.on_vertex_ordered(vertex)
        assert all(manager.scores.score_of(validator) == 0.0 for validator in committee4.validators)

    def test_schedule_change_after_commit_threshold(self, committee4):
        manager = self._manager(committee4, commits=2)
        anchor2 = make_anchor(2, 0, [0, 1, 2])
        anchor4 = make_anchor(4, 1, [0, 1, 2])
        assert manager.on_anchor_committed(anchor2) is None
        new_schedule = manager.on_anchor_committed(anchor4)
        assert new_schedule is not None
        assert new_schedule.epoch == 1
        assert new_schedule.initial_round == 6
        assert manager.epochs == 2
        assert manager.active_schedule is new_schedule

    def test_scores_reset_after_schedule_change(self, committee4):
        manager = self._manager(committee4, commits=1)
        voter = make_vertex(3, 1, edges=[vid(2, 0), vid(2, 1), vid(2, 2)])
        manager.on_vertex_ordered(voter)
        manager.on_anchor_committed(make_anchor(2, 0, [0, 1, 2]))
        assert all(manager.scores.score_of(validator) == 0.0 for validator in committee4.validators)
        assert manager.commits_in_epoch == 0

    def test_change_records_capture_scores(self, committee4):
        manager = self._manager(committee4, commits=1)
        voter = make_vertex(3, 1, edges=[vid(2, 0), vid(2, 1), vid(2, 2)])
        manager.on_vertex_ordered(voter)
        manager.on_anchor_committed(make_anchor(2, 0, [0, 1, 2]))
        assert len(manager.change_records) == 1
        record = manager.change_records[0]
        assert record.scores[1] == 1.0
        assert record.new_initial_round == 4

    def test_low_scorers_lose_leader_slots(self, committee10):
        manager = self._manager(committee10, commits=1)
        # Validators 7, 8, 9 never vote; everyone else votes for the
        # round-2 leader (validator 0).
        for voter in range(7):
            vertex = make_vertex(3, voter, edges=[vid(2, source) for source in range(7)])
            manager.on_vertex_ordered(vertex)
        new_schedule = manager.on_anchor_committed(make_anchor(2, 0, list(range(7))))
        assert new_schedule is not None
        for crashed in (7, 8, 9):
            assert new_schedule.slots_of(crashed) == 0
        # No future anchor round is ever assigned to the crashed validators.
        leaders = {new_schedule.leader_for_round(round_number) for round_number in range(4, 60, 2)}
        assert leaders.isdisjoint({7, 8, 9})

    def test_retroactive_lookup_uses_schedule_history(self, committee4):
        manager = self._manager(committee4, commits=1)
        old_leader_round4 = manager.leader_for_round(4)
        manager.on_anchor_committed(make_anchor(2, 0, [0, 1, 2]))
        # Round 4 now falls under the new schedule (starting at round 4),
        # but round 2 is still resolved against the original schedule.
        assert manager.leader_for_round(2) == 0
        assert manager.schedule_for_round(2).epoch == 0
        assert manager.schedule_for_round(4).epoch == 1

    def test_old_anchor_does_not_retrigger_change(self, committee4):
        manager = self._manager(committee4, commits=1)
        manager.on_anchor_committed(make_anchor(2, 0, [0, 1, 2]))
        assert manager.epochs == 2
        # An anchor from before the new schedule's start commits late
        # (e.g. on a lagging validator): it must not trigger another change.
        assert manager.on_anchor_committed(make_anchor(2, 1, [0, 1, 2])) is None
        assert manager.epochs == 2

    def test_round_based_policy_change(self, committee4):
        schedule = initial_schedule(committee4, permute=False)
        manager = HammerHeadScheduleManager(
            committee4, schedule, policy=RoundBasedPolicy(rounds=6)
        )
        assert manager.on_anchor_committed(make_anchor(4, 1, [0, 1, 2])) is None
        new_schedule = manager.on_anchor_committed(make_anchor(8, 3, [0, 1, 2]))
        assert new_schedule is not None
        assert new_schedule.initial_round == 10

    def test_shoal_scoring_demotes_skipped_leaders(self, committee10):
        manager = self._manager(committee10, commits=1, scoring=ShoalScoring())
        # The leaders of rounds 2 and 4 were skipped before an anchor at
        # round 6 committed.
        manager.on_anchor_skipped(2)
        manager.on_anchor_skipped(4)
        new_schedule = manager.on_anchor_committed(make_anchor(6, 2, list(range(7))))
        assert new_schedule is not None
        skipped_leaders = {0, 1}  # round-robin leaders of rounds 2 and 4
        for leader in skipped_leaders:
            assert new_schedule.slots_of(leader) == 0

    def test_describe_mentions_policy_and_rule(self, committee4):
        manager = self._manager(committee4)
        description = manager.describe()
        assert "HammerHead" in description
        assert "hammerhead" in description
