"""Unit tests for the simulated cryptography substrate."""

import pytest

from repro.crypto.hashing import digest_hex, digest_of
from repro.crypto.keys import generate_keypair, keypairs_for_committee
from repro.crypto.signatures import aggregate, sign, verify, verify_aggregate
from repro.errors import CryptoError


class TestDigests:
    def test_digest_is_deterministic(self):
        assert digest_of("hello", 42) == digest_of("hello", 42)

    def test_digest_distinguishes_values(self):
        assert digest_of("hello", 42) != digest_of("hello", 43)

    def test_digest_distinguishes_types(self):
        assert digest_of(1) != digest_of("1")
        assert digest_of(True) != digest_of(1)

    def test_digest_of_dict_is_order_independent(self):
        assert digest_of({"a": 1, "b": 2}) == digest_of({"b": 2, "a": 1})

    def test_digest_of_set_is_order_independent(self):
        assert digest_of({3, 1, 2}) == digest_of({2, 3, 1})

    def test_digest_of_list_is_order_dependent(self):
        assert digest_of([1, 2]) != digest_of([2, 1])

    def test_digest_length_is_32_bytes(self):
        assert len(digest_of("x")) == 32

    def test_digest_hex_matches_digest(self):
        assert digest_hex("x") == digest_of("x").hex()

    def test_nested_structures(self):
        value = {"edges": [(1, 2), (3, 4)], "block": b"abc", "none": None}
        assert digest_of(value) == digest_of(dict(value))

    def test_unsupported_type_raises(self):
        class Opaque:
            pass

        with pytest.raises(TypeError):
            digest_of(Opaque())

    def test_canonical_fields_protocol(self):
        class WithFields:
            def canonical_fields(self):
                return (1, "a")

        assert digest_of(WithFields()) == digest_of((1, "a"))


class TestKeys:
    def test_keypair_is_deterministic_per_validator_and_seed(self):
        assert generate_keypair(3, seed=1) == generate_keypair(3, seed=1)

    def test_different_validators_have_different_keys(self):
        assert generate_keypair(1).public != generate_keypair(2).public

    def test_different_seeds_have_different_keys(self):
        assert generate_keypair(1, seed=0).public != generate_keypair(1, seed=1).public

    def test_committee_keypairs_cover_all_indices(self):
        keypairs = keypairs_for_committee(5, seed=2)
        assert sorted(keypairs) == [0, 1, 2, 3, 4]
        assert all(keypairs[index].validator == index for index in keypairs)

    def test_public_key_short_fingerprint(self):
        assert len(generate_keypair(0).public.short()) == 12


class TestSignatures:
    def test_sign_and_verify_roundtrip(self):
        keypair = generate_keypair(1, seed=3)
        signature = sign(keypair, "message", 7)
        assert verify(keypair.public, signature, "message", 7)

    def test_verification_fails_for_wrong_message(self):
        keypair = generate_keypair(1, seed=3)
        signature = sign(keypair, "message", 7)
        assert not verify(keypair.public, signature, "message", 8)

    def test_verification_fails_for_wrong_signer(self):
        alice = generate_keypair(1, seed=3)
        bob = generate_keypair(2, seed=3)
        signature = sign(alice, "message")
        assert not verify(bob.public, signature, "message")

    def test_forged_material_is_rejected(self):
        keypair = generate_keypair(1, seed=3)
        signature = sign(keypair, "message")
        forged = type(signature)(
            signer=signature.signer,
            message_digest=signature.message_digest,
            material=b"\x00" * 32,
        )
        assert not verify(keypair.public, forged, "message")

    def test_aggregate_requires_same_message(self):
        alice = generate_keypair(1)
        bob = generate_keypair(2)
        with pytest.raises(CryptoError):
            aggregate([sign(alice, "a"), sign(bob, "b")])

    def test_aggregate_rejects_duplicates(self):
        alice = generate_keypair(1)
        with pytest.raises(CryptoError):
            aggregate([sign(alice, "a"), sign(alice, "a")])

    def test_aggregate_rejects_empty(self):
        with pytest.raises(CryptoError):
            aggregate([])

    def test_aggregate_verification(self):
        keypairs = [generate_keypair(index) for index in range(4)]
        signatures = [sign(keypair, "block", 9) for keypair in keypairs]
        aggregated = aggregate(signatures)
        assert aggregated.signers == (0, 1, 2, 3)
        publics = [keypair.public for keypair in keypairs]
        assert verify_aggregate(publics, aggregated, "block", 9)
        assert not verify_aggregate(publics, aggregated, "block", 10)

    def test_aggregate_verification_fails_for_unknown_signer(self):
        keypairs = [generate_keypair(index) for index in range(3)]
        aggregated = aggregate([sign(keypair, "m") for keypair in keypairs])
        # Leave out one signer's public key.
        assert not verify_aggregate([keypair.public for keypair in keypairs[:2]], aggregated, "m")
