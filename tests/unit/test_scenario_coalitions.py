"""Scenario-engine tests for the coalition fault kinds, the coalition
selector, the scoring_rules sweep axis, and ScenarioSpec.then edge cases."""

import pytest

from repro.behavior import (
    AdaptiveEquivocationPolicy,
    AdaptiveSilentFanoutPolicy,
    CoalitionGamingPolicy,
    ColludingSilencePolicy,
)
from repro.errors import ConfigurationError
from repro.faults.behavior import BehaviorFault
from repro.scenarios import ScenarioSpec, compile_spec, get_scenario
from repro.scenarios.spec import FaultSpec, WorkloadSpec


def behavior_plans(spec, committee_size=None):
    points = compile_spec(spec)
    if committee_size is not None:
        points = [p for p in points if p.committee_size == committee_size]
    return [
        plan
        for plan in points[0].config.extra_faults
        if isinstance(plan, BehaviorFault)
    ]


class TestCoalitionFaultSpecs:
    def test_coalition_selector_compiles_coordinated(self):
        spec = ScenarioSpec(
            name="c",
            committee_sizes=(10,),
            faults=(FaultSpec(kind="adaptive-dos", coalition=(7, 8, 9), stride=2),),
        ).validate()
        (plan,) = behavior_plans(spec)
        assert plan.coordinated
        assert tuple(plan.validators) == (7, 8, 9)
        policy = plan.policy_factory()
        assert isinstance(policy, AdaptiveSilentFanoutPolicy)
        assert policy.stride == 2

    def test_tail_selector_also_works_for_coalition_kinds(self):
        spec = ScenarioSpec(
            name="c",
            committee_sizes=(10,),
            faults=(FaultSpec(kind="coalition-gaming", count=3),),
        ).validate()
        (plan,) = behavior_plans(spec)
        assert plan.coordinated
        assert sorted(plan.validators) == [7, 8, 9]
        assert isinstance(plan.policy_factory(), CoalitionGamingPolicy)

    def test_colluding_silence_resolves_victims(self):
        spec = ScenarioSpec(
            name="c",
            committee_sizes=(10,),
            faults=(
                FaultSpec(
                    kind="colluding-silence",
                    coalition=(8, 9),
                    targets=(1, 2),
                    at=1.0,
                    end=5.0,
                ),
            ),
        ).validate()
        (plan,) = behavior_plans(spec)
        policy = plan.policy_factory()
        assert isinstance(policy, ColludingSilencePolicy)
        assert policy.victims == (1, 2)

    def test_adaptive_equivocation_is_not_coordinated(self):
        spec = ScenarioSpec(
            name="c",
            committee_sizes=(10,),
            faults=(FaultSpec(kind="adaptive-equivocation", validators=(9,)),),
        ).validate()
        (plan,) = behavior_plans(spec)
        assert not plan.coordinated
        assert isinstance(plan.policy_factory(), AdaptiveEquivocationPolicy)

    def test_coalition_selector_rejected_for_non_coalition_kinds(self):
        with pytest.raises(ConfigurationError, match="coalition"):
            FaultSpec(kind="lazy-leader", coalition=(8, 9)).validate()

    def test_coalition_and_count_are_mutually_exclusive(self):
        with pytest.raises(ConfigurationError, match="exactly one selector"):
            FaultSpec(kind="adaptive-dos", coalition=(8, 9), count=2).validate()

    def test_duplicate_members_rejected(self):
        with pytest.raises(ConfigurationError, match="distinct"):
            FaultSpec(kind="adaptive-dos", coalition=(8, 8)).validate()

    def test_stride_validation(self):
        with pytest.raises(ConfigurationError, match="stride"):
            FaultSpec(kind="lazy-leader", validators=(9,), stride=2).validate()
        with pytest.raises(ConfigurationError, match="at least 1"):
            FaultSpec(kind="adaptive-dos", coalition=(8, 9), stride=0).validate()

    def test_round_trip_preserves_coalition_fields(self):
        spec = ScenarioSpec(
            name="c",
            faults=(FaultSpec(kind="adaptive-dos", coalition=(7, 8, 9), stride=2),),
        ).validate()
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.scenario_digest() == spec.scenario_digest()

    def test_defaults_omitted_from_canonical_form(self):
        # Specs that do not use the new fields serialize exactly as
        # before, so historical scenario digests are untouched.
        data = get_scenario("reputation-gamer").to_dict()
        fault = data["faults"][0]
        assert "coalition" not in fault
        assert "stride" not in fault
        assert "scoring_rules" not in data

    def test_smoke_shrinks_coalition_to_two_members(self):
        spec = get_scenario("adaptive-dos").smoke()
        assert spec.committee_sizes == (4,)
        fault = spec.faults[0]
        assert fault.coalition == (3, 2)
        (plan,) = behavior_plans(spec)
        assert plan.coordinated


class TestScoringRulesAxis:
    def test_axis_fans_out_points_per_rule(self):
        spec = ScenarioSpec(
            name="axis",
            protocols=("hammerhead",),
            scoring_rules=("hammerhead", "completeness"),
        ).validate()
        points = compile_spec(spec)
        assert [point.scoring for point in points] == ["hammerhead", "completeness"]
        assert [point.config.scoring for point in points] == [
            "hammerhead",
            "completeness",
        ]

    def test_empty_axis_uses_the_single_rule(self):
        points = compile_spec(ScenarioSpec(name="single", scoring="shoal"))
        assert [point.scoring for point in points] == ["shoal", "shoal"] or [
            point.scoring for point in points
        ] == ["shoal"]
        assert all(point.config.scoring == "shoal" for point in points)

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scoring rule"):
            ScenarioSpec(name="bad", scoring="nope").validate()
        with pytest.raises(ConfigurationError, match="scoring_rules"):
            ScenarioSpec(name="bad", scoring_rules=("hammerhead", "nope")).validate()

    def test_repeated_rule_rejected(self):
        with pytest.raises(ConfigurationError, match="repeat"):
            ScenarioSpec(
                name="bad", scoring_rules=("hammerhead", "hammerhead")
            ).validate()


class TestThenEdgeCases:
    def _base(self, name, faults=(), duration=20.0, workload=None):
        return ScenarioSpec(
            name=name,
            committee_sizes=(10,),
            duration=duration,
            warmup=5.0,
            seed=3,
            workload=workload or WorkloadSpec(kind="constant", tps=500.0),
            faults=faults,
        )

    def test_zero_gap_concatenation(self):
        first = self._base(
            "a", faults=(FaultSpec(kind="crash", validators=(9,), at=5.0),)
        )
        second = self._base(
            "b", faults=(FaultSpec(kind="crash", validators=(8,), at=2.0),)
        )
        combined = first.then(second, gap=0.0)
        assert combined.duration == 40.0
        assert combined.faults[1].at == 22.0
        # Digest-stable: structurally equal reconstructions hash alike.
        assert (
            first.then(second, gap=0.0).scenario_digest()
            == combined.scenario_digest()
        )

    def test_three_way_chaining_accumulates_offsets(self):
        a = self._base("a", faults=(FaultSpec(kind="crash", validators=(9,), at=1.0),))
        b = self._base("b", faults=(FaultSpec(kind="crash", validators=(8,), at=1.0),))
        c = self._base("c", faults=(FaultSpec(kind="crash", validators=(7,), at=1.0),))
        combined = a.then(b, gap=2.0).then(c, gap=3.0)
        assert combined.name == "a+b+c"
        assert combined.duration == 20.0 + 2.0 + 20.0 + 3.0 + 20.0
        assert [fault.at for fault in combined.faults] == [1.0, 23.0, 46.0]
        # Still a perfectly ordinary spec: serializes and shrinks.
        assert ScenarioSpec.from_dict(combined.to_dict()) == combined
        smoke = combined.smoke()
        assert smoke.committee_sizes == (4,)
        assert smoke.duration <= 15.0

    def test_composition_with_coalition_faults(self):
        quiet = self._base("quiet")
        attack = self._base(
            "attack",
            faults=(
                FaultSpec(
                    kind="adaptive-dos", coalition=(7, 8, 9), at=2.0, end=18.0, stride=2
                ),
            ),
        )
        combined = quiet.then(attack, gap=1.0)
        fault = combined.faults[0]
        assert fault.kind == "adaptive-dos"
        assert fault.at == 23.0 and fault.end == 39.0
        assert fault.coalition == (7, 8, 9) and fault.stride == 2
        assert (
            quiet.then(attack, gap=1.0).scenario_digest()
            == combined.scenario_digest()
        )
        smoke = combined.smoke()
        assert smoke.faults[0].coalition == (3, 2)
        (plan,) = behavior_plans(smoke)
        assert plan.coordinated

    def test_then_requires_matching_scoring_axes(self):
        first = self._base("a").with_overrides(scoring_rules=("hammerhead",))
        second = self._base("b")
        with pytest.raises(ConfigurationError, match="scoring_rules"):
            first.then(second)

    def test_chained_coalition_windows_must_not_overlap(self):
        first = self._base(
            "a",
            faults=(
                FaultSpec(kind="coalition-gaming", coalition=(8, 9), at=1.0),
            ),
        )
        second = self._base(
            "b",
            faults=(
                FaultSpec(kind="coalition-gaming", coalition=(8, 9), at=1.0),
            ),
        )
        # The first window is open-ended, so the concatenation overlaps
        # on the shared members and must be rejected.
        with pytest.raises(ConfigurationError, match="overlap"):
            first.then(second)
