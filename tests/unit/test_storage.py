"""Unit tests for the storage substrate (store + write-ahead log)."""

import pytest

from repro.errors import StorageError
from repro.storage.store import PersistentStore
from repro.storage.wal import WriteAheadLog


class TestPersistentStore:
    def test_default_column_families_exist(self):
        store = PersistentStore()
        for name in PersistentStore.DEFAULT_FAMILIES:
            assert name in store.families

    def test_put_and_get(self):
        store = PersistentStore()
        family = store.family("vertices")
        family.put("key", "value")
        assert family.get("key") == "value"
        assert family.contains("key")

    def test_get_missing_returns_default(self):
        family = PersistentStore().family("vertices")
        assert family.get("missing") is None
        assert family.get("missing", 42) == 42

    def test_delete(self):
        family = PersistentStore().family("vertices")
        family.put("key", 1)
        family.delete("key")
        assert not family.contains("key")
        family.delete("key")  # idempotent

    def test_family_is_created_on_demand(self):
        store = PersistentStore()
        store.family("new-family").put("a", 1)
        assert "new-family" in store.families

    def test_open_family_requires_existence(self):
        with pytest.raises(StorageError):
            PersistentStore().open_family("does-not-exist")

    def test_families_are_isolated(self):
        store = PersistentStore()
        store.family("a").put("key", "in-a")
        store.family("b").put("key", "in-b")
        assert store.family("a").get("key") == "in-a"
        assert store.family("b").get("key") == "in-b"

    def test_counters(self):
        store = PersistentStore()
        store.family("a").put("x", 1)
        store.family("a").put("y", 2)
        store.family("a").get("x")
        assert store.total_writes() == 2
        assert store.total_keys() == 2
        assert store.family("a").reads == 1

    def test_items_and_keys(self):
        family = PersistentStore().family("a")
        family.put(1, "one")
        family.put(2, "two")
        assert sorted(family.keys()) == [1, 2]
        assert dict(family.items()) == {1: "one", 2: "two"}

    def test_wipe_erases_everything(self):
        store = PersistentStore()
        store.family("a").put("x", 1)
        store.wipe()
        assert store.total_keys() == 0

    def test_overwrite_replaces_value(self):
        family = PersistentStore().family("a")
        family.put("k", 1)
        family.put("k", 2)
        assert family.get("k") == 2
        assert len(family) == 1


class TestWriteAheadLog:
    def test_append_assigns_increasing_sequence_numbers(self):
        log = WriteAheadLog()
        first = log.append("insert", {"round": 1})
        second = log.append("insert", {"round": 2})
        assert first.sequence == 0
        assert second.sequence == 1

    def test_replay_preserves_order(self):
        log = WriteAheadLog()
        for index in range(5):
            log.append("op", index)
        assert [entry.payload for entry in log.replay()] == [0, 1, 2, 3, 4]

    def test_len_and_iteration(self):
        log = WriteAheadLog()
        log.append("a", None)
        log.append("b", None)
        assert len(log) == 2
        assert [entry.tag for entry in log] == ["a", "b"]

    def test_truncate_before(self):
        log = WriteAheadLog()
        for index in range(6):
            log.append("op", index)
        dropped = log.truncate_before(3)
        assert dropped == 3
        assert [entry.sequence for entry in log.replay()] == [3, 4, 5]

    def test_sequence_numbers_not_reused_after_truncate(self):
        log = WriteAheadLog()
        log.append("a", None)
        log.truncate_before(10)
        entry = log.append("b", None)
        assert entry.sequence == 1

    def test_last_sequence(self):
        log = WriteAheadLog()
        assert log.last_sequence == -1
        log.append("a", None)
        assert log.last_sequence == 0
