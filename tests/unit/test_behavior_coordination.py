"""Unit tests for the coalition coordinator and the coordinated policies."""

import pickle
from functools import partial

import pytest

from repro.behavior import (
    HONEST,
    AdaptiveEquivocationPolicy,
    AdaptiveSilentFanoutPolicy,
    AdversaryCoordinator,
    CoalitionGamingPolicy,
    ColludingSilencePolicy,
    upcoming_duty_roster,
)
from repro.core.manager import StaticScheduleManager
from repro.schedule.base import LeaderSchedule
from repro.schedule.round_robin import initial_schedule
from tests.conftest import vid


class FakeNode:
    """The minimal node surface the coordinated policies read."""

    def __init__(self, node_id, committee, current_round=1):
        self.id = node_id
        self.committee = committee
        self.current_round = current_round
        self.schedule_manager = StaticScheduleManager(
            committee, initial_schedule(committee, permute=False)
        )


class TestAdversaryCoordinator:
    def test_membership_is_sorted_and_deduplicated(self):
        coordinator = AdversaryCoordinator((9, 7, 8, 7))
        assert coordinator.members == (7, 8, 9)

    def test_duty_rotates_deterministically(self):
        coordinator = AdversaryCoordinator((7, 8, 9))
        duties = [coordinator.duty_member(r) for r in (2, 4, 6, 8, 10, 12)]
        assert duties == [8, 9, 7, 8, 9, 7]
        # Same membership, same roster — regardless of construction order.
        again = AdversaryCoordinator((9, 8, 7))
        assert [again.duty_member(r) for r in (2, 4, 6, 8, 10, 12)] == duties

    def test_stride_leaves_off_beat_anchors_unattacked(self):
        coordinator = AdversaryCoordinator((7, 8), stride=2)
        duties = [coordinator.duty_member(r) for r in (2, 4, 6, 8, 10, 12, 14, 16)]
        # Block of len(members) * stride = 4 anchors: two duty, two off.
        assert duties == [8, None, None, 7, 8, None, None, 7]

    def test_odd_rounds_have_no_duty(self):
        coordinator = AdversaryCoordinator((7, 8))
        assert coordinator.duty_member(3) is None

    def test_victim_split_covers_everything_once(self):
        coordinator = AdversaryCoordinator((7, 8, 9))
        victims = (1, 2, 3, 4, 5)
        slices = [coordinator.split_victims(m, victims) for m in coordinator.members]
        flattened = [victim for piece in slices for victim in piece]
        assert sorted(flattened) == sorted(victims)
        assert len(set(flattened)) == len(victims)

    def test_non_member_gets_full_victim_set(self):
        coordinator = AdversaryCoordinator((7, 8))
        assert coordinator.split_victims(3, (1, 2)) == (1, 2)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            AdversaryCoordinator(())
        with pytest.raises(ValueError):
            AdversaryCoordinator((1,), stride=0)

    def test_upcoming_duty_roster(self):
        coordinator = AdversaryCoordinator((7, 8, 9))
        roster = upcoming_duty_roster(coordinator, 3, 3)
        assert roster == ((4, 9), (6, 7), (8, 8))


class TestColludingSilencePolicy:
    def test_victims_split_on_attach(self, committee10):
        coordinator = AdversaryCoordinator((7, 8, 9))
        policies = {}
        for member in (7, 8, 9):
            policy = ColludingSilencePolicy(victims=(1, 2, 3))
            policy.join(coordinator)
            policy.attach(FakeNode(member, committee10))
            policies[member] = policy
        assigned = [policies[m]._assigned for m in (7, 8, 9)]
        assert sorted(v for piece in assigned for v in piece) == [1, 2, 3]
        # Each member only denies its own slice.
        for member, policy in policies.items():
            for victim in (1, 2, 3):
                assert policy.should_ack(victim, 4) == (victim not in policy._assigned)
                assert policy.should_serve_fetch(victim) == (
                    victim not in policy._assigned
                )

    def test_solo_install_silences_all_victims(self, committee10):
        policy = ColludingSilencePolicy(victims=(1, 2))
        policy.attach(FakeNode(9, committee10))
        assert policy._assigned == frozenset({1, 2})
        plan = policy.plan_fanout(None, 4, list(committee10.validators))
        recipients = {send.recipient for send in plan}
        assert recipients == set(committee10.validators) - {1, 2}


class TestAdaptiveSilentFanoutPolicy:
    def _policy(self, committee, member=9, members=(7, 8, 9), stride=1, round_number=3):
        policy = AdaptiveSilentFanoutPolicy(stride=stride)
        policy.join(AdversaryCoordinator(members, stride=stride))
        policy.attach(FakeNode(member, committee, current_round=round_number))
        return policy

    def test_targets_track_the_upcoming_leader(self, committee10):
        policy = self._policy(committee10, member=9)
        # Duty roster for (7,8,9): anchor 4 -> member 9 (4//2 % 3 == 2).
        leader_of_4 = policy.node.schedule_manager.leader_for_round(4)
        assert policy._duty_targets(3) == frozenset({leader_of_4})
        # Off-duty rounds target nobody.
        assert policy._duty_targets(5) == frozenset()

    def test_targets_follow_schedule_changes(self, committee10):
        policy = self._policy(committee10, member=9)
        manager = policy.node.schedule_manager
        # Swap in a new schedule that elects validator 5 everywhere.
        manager.history.append(
            LeaderSchedule(epoch=1, initial_round=4, slots=(5,))
        )
        assert policy._duty_targets(3) == frozenset({5})

    def test_duty_member_withholds_the_vote(self, committee10):
        policy = self._policy(committee10, member=9)
        parents = [vid(4, source) for source in committee10.validators]
        kept = policy.select_parents(5, list(parents))
        leader = policy.node.schedule_manager.leader_for_round(4)
        assert vid(4, leader) not in kept
        assert len(kept) == len(parents) - 1
        # Off-duty proposals stay honest.
        parents6 = [vid(6, source) for source in committee10.validators]
        assert policy.select_parents(7, list(parents6)) == parents6

    def test_withholding_can_be_disabled(self, committee10):
        policy = AdaptiveSilentFanoutPolicy(stride=1, withhold_votes=False)
        policy.join(AdversaryCoordinator((9,)))
        policy.attach(FakeNode(9, committee10))
        parents = [vid(4, source) for source in committee10.validators]
        assert policy.select_parents(5, list(parents)) == parents

    def test_fanout_excludes_only_duty_targets(self, committee10):
        policy = self._policy(committee10, member=9)
        plan = policy.plan_fanout(None, 3, list(committee10.validators))
        leader = policy.node.schedule_manager.leader_for_round(4)
        assert {send.recipient for send in plan} == set(committee10.validators) - {leader}
        assert policy.plan_fanout(None, 5, list(committee10.validators)) is None


class TestAdaptiveEquivocationPolicy:
    def test_victims_recomputed_per_round(self, committee10):
        policy = AdaptiveEquivocationPolicy(lookahead=2)
        policy.attach(FakeNode(9, committee10))
        manager = policy.node.schedule_manager
        # plan_fanout on a non-propose message still recomputes victims
        # before delegating (twin construction returns None for it).
        policy.plan_fanout(object(), 3, list(committee10.validators))
        assert set(policy.victims) == {
            manager.leader_for_round(4),
            manager.leader_for_round(6),
        }


class TestCoalitionGamingPolicy:
    def test_only_the_duty_member_withholds(self, committee10):
        coordinator = AdversaryCoordinator((7, 8, 9), stride=1)
        policies = {}
        for member in (7, 8, 9):
            policy = CoalitionGamingPolicy(stride=1)
            policy.join(coordinator)
            policy.attach(FakeNode(member, committee10))
            policies[member] = policy
        parents = [vid(4, source) for source in committee10.validators]
        leader = policies[9].node.schedule_manager.leader_for_round(4)
        duty = coordinator.duty_member(4)
        for member, policy in policies.items():
            kept = policy.select_parents(5, list(parents))
            if member == duty:
                assert vid(4, leader) not in kept
            else:
                assert kept == parents

    def test_policy_factories_are_picklable(self):
        for factory in (
            partial(CoalitionGamingPolicy, stride=3),
            partial(AdaptiveSilentFanoutPolicy, stride=2),
            partial(ColludingSilencePolicy, victims=(1, 2)),
            partial(AdaptiveEquivocationPolicy, lookahead=2),
        ):
            rebuilt = pickle.loads(pickle.dumps(factory))
            assert rebuilt().describe()

    def test_describe_mentions_the_coalition(self, committee10):
        policy = CoalitionGamingPolicy()
        policy.join(AdversaryCoordinator((7, 8, 9)))
        assert "7, 8, 9" in policy.describe()
        assert HONEST.describe() == "honest"
