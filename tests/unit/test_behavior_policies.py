"""Unit tests for the behavior-policy engine and the curated adversaries."""

import pickle

import pytest

from repro.behavior import (
    HONEST,
    BehaviorPolicy,
    EquivocationPolicy,
    FanoutSend,
    HonestPolicy,
    LazyLeaderPolicy,
    ReputationGamingPolicy,
    SilentFanoutPolicy,
    VoteWithholdingPolicy,
    full_fanout,
)
from repro.committee import Committee
from repro.core.manager import HammerHeadScheduleManager, StaticScheduleManager
from repro.core.schedule_change import CommitCountPolicy
from repro.faults.behavior import BehaviorFault
from repro.metrics.reputation import reputation_metrics
from repro.network.latency import UniformLatencyModel
from repro.network.simulator import Simulator
from repro.network.transport import Network
from repro.node.config import NodeConfig
from repro.node.messages import FetchRequest
from repro.node.validator import ValidatorNode
from repro.schedule.base import LeaderSchedule
from repro.schedule.round_robin import initial_schedule
from repro.types import VertexId, is_anchor_round


def build_cluster(size=4, seed=1, dynamic=False, commits_per_schedule=4):
    committee = Committee.build(size)
    simulator = Simulator(seed=seed)
    network = Network(
        simulator, latency_model=UniformLatencyModel(base_delay=0.01, jitter=0.002)
    )
    node_config = NodeConfig(
        max_batch_size=50,
        min_round_interval=0.05,
        leader_timeout=0.5,
        record_sequence=True,
    )

    def manager_factory():
        schedule = initial_schedule(committee, seed=seed, permute=False)
        if dynamic:
            return HammerHeadScheduleManager(
                committee, schedule, policy=CommitCountPolicy(commits_per_schedule)
            )
        return StaticScheduleManager(committee, schedule)

    nodes = {}
    for validator in committee.validators:
        nodes[validator] = ValidatorNode(
            validator_id=validator,
            committee=committee,
            network=network,
            schedule_manager=manager_factory(),
            config=node_config,
            schedule_manager_factory=manager_factory,
        )
    return committee, simulator, network, nodes


def start_all(nodes):
    for node in nodes.values():
        node.start()


class TestPolicyPlumbing:
    def test_nodes_start_with_the_shared_honest_policy(self):
        _, _, _, nodes = build_cluster()
        for node in nodes.values():
            assert node.behavior is HONEST
            assert node.broadcast_protocol.policy is HONEST
        assert HONEST.transparent

    def test_set_behavior_attaches_and_syncs_the_protocol(self):
        _, _, _, nodes = build_cluster()
        node = nodes[1]
        policy = VoteWithholdingPolicy()
        node.set_behavior(policy)
        assert node.behavior is policy
        assert node.broadcast_protocol.policy is policy
        assert policy.node is node
        node.set_behavior(None)
        assert node.behavior is HONEST
        assert node.broadcast_protocol.policy is HONEST
        assert policy.node is None

    def test_policy_survives_crash_recovery(self):
        _, simulator, _, nodes = build_cluster()
        start_all(nodes)
        simulator.run(until=1.0)
        node = nodes[2]
        policy = SilentFanoutPolicy(targets=(1,))
        node.set_behavior(policy)
        node.crash()
        simulator.run(until=1.5)
        node.recover()
        # The rebuilt broadcast protocol shares the installed policy.
        assert node.broadcast_protocol.policy is policy

    def test_default_hooks_are_honest(self):
        policy = BehaviorPolicy()
        parents = [VertexId(round=1, source=0)]
        assert policy.select_parents(2, parents) == parents
        assert policy.proposal_delay(2) == 0.0
        assert policy.plan_fanout(object(), 2, (0, 1, 2)) is None
        assert policy.should_ack(1, 2)
        assert policy.should_serve_fetch(1)
        assert not policy.transparent
        assert HonestPolicy().transparent

    def test_full_fanout_excludes(self):
        plan = full_fanout((0, 1, 2, 3), exclude=(2,))
        assert [send.recipient for send in plan] == [0, 1, 3]
        assert all(send.payload is None and send.delay == 0.0 for send in plan)


class TestFanoutEnactment:
    def test_drop_delay_and_substitution_directives(self):
        """A custom plan drops one peer, delays another, keeps the rest."""

        class Shaper(BehaviorPolicy):
            def plan_fanout(self, message, round_number, recipients):
                plan = []
                for recipient in recipients:
                    if recipient == 1:
                        continue  # drop
                    plan.append(
                        FanoutSend(recipient, delay=0.5 if recipient == 2 else 0.0)
                    )
                return plan

        _, simulator, _, nodes = build_cluster()
        nodes[0].set_behavior(Shaper())
        start_all(nodes)
        simulator.run(until=0.3)
        # Node 1 never heard node 0's proposal directly: it has not acked it.
        assert (0, 1) not in nodes[1].broadcast_protocol._acked
        # Node 2's copy was held back by 0.5s and cannot have arrived yet.
        assert (0, 1) not in nodes[2].broadcast_protocol._acked
        simulator.run(until=1.5)
        assert (0, 1) in nodes[2].broadcast_protocol._acked


class TestVoteWithholding:
    def test_withholder_omits_leader_edges(self):
        _, simulator, _, nodes = build_cluster(dynamic=True)
        adversary = 3
        nodes[adversary].set_behavior(VoteWithholdingPolicy())
        start_all(nodes)
        simulator.run(until=4.0)
        observer = nodes[0]
        omitted = 0
        for round_number in range(2, observer.current_round - 1):
            if not is_anchor_round(round_number):
                continue
            leader = observer.schedule_manager.leader_for_round(round_number)
            if leader == adversary:
                continue
            vertex = observer.dag.vertex_of(round_number + 1, adversary)
            if vertex is None:
                continue
            leader_vertex = VertexId(round=round_number, source=leader)
            if leader_vertex not in vertex.edges:
                omitted += 1
        assert omitted > 0

    def test_withholder_scores_below_honest(self):
        _, simulator, _, nodes = build_cluster(dynamic=True, commits_per_schedule=50)
        nodes[3].set_behavior(VoteWithholdingPolicy())
        start_all(nodes)
        simulator.run(until=4.0)
        scores = nodes[0].schedule_manager.scores.as_dict()
        assert scores[3] < min(scores[v] for v in (0, 1, 2))


class TestEquivocation:
    def test_victims_ack_the_conflicting_digest_but_safety_holds(self):
        _, simulator, _, nodes = build_cluster()
        adversary, victim = 3, 1
        nodes[adversary].set_behavior(EquivocationPolicy(victims=(victim,)))
        start_all(nodes)
        simulator.run(until=4.0)
        victim_acks = nodes[victim].broadcast_protocol._acked
        honest_acks = nodes[0].broadcast_protocol._acked
        diverged = [
            round_number
            for (origin, round_number), digest in victim_acks.items()
            if origin == adversary and honest_acks.get((adversary, round_number)) not in (None, digest)
        ]
        assert diverged, "the victim never saw a conflicting proposal"
        # The conflicting vertex must not have entered any DAG: every node
        # stores the same (certified) content for the adversary's rounds.
        for round_number in range(1, nodes[0].current_round - 1):
            digests = {
                node.dag.vertex_of(round_number, adversary).digest
                for node in nodes.values()
                if node.dag.vertex_of(round_number, adversary) is not None
            }
            assert len(digests) <= 1
        # Orderings agree everywhere (Integrity + Agreement preserved).
        assert len({node.consensus.ordering_digest for node in nodes.values()}) == 1

    def test_conflicting_vertex_differs_only_in_content(self):
        from repro.dag.vertex import make_vertex

        _, _, _, nodes = build_cluster()
        policy = EquivocationPolicy(victims=(1,))
        policy.attach(nodes[3])
        parents = [VertexId(round=0, source=validator) for validator in range(4)]
        vertex = make_vertex(1, 3, edges=parents, block=("tx",))
        twin = policy._conflicting_vertex(vertex)
        assert twin is not None
        assert twin.id == vertex.id
        assert twin.digest != vertex.digest


class TestSilentFanout:
    def test_target_is_starved_but_not_stalled(self):
        _, simulator, _, nodes = build_cluster()
        adversary, target = 3, 1
        nodes[adversary].set_behavior(SilentFanoutPolicy(targets=(target,)))
        start_all(nodes)
        simulator.run(until=5.0)
        # The adversary never acknowledged the target's broadcasts...
        target_acks = nodes[target].broadcast_protocol._ack_masks
        assert all(not mask >> adversary & 1 for mask in target_acks.values())
        # ...nor did the target ever hear a proposal from the adversary.
        assert all(
            origin != adversary for origin, _ in nodes[target].broadcast_protocol._acked
        )
        # Liveness survives: the target keeps up through third parties.
        assert nodes[target].current_round > 10
        assert nodes[target].commit_count > 0
        assert len({node.consensus.ordering_digest for node in nodes.values()}) == 1

    def test_fetch_requests_from_targets_are_ignored(self):
        _, simulator, network, nodes = build_cluster()
        adversary, target = 3, 1
        nodes[adversary].set_behavior(SilentFanoutPolicy(targets=(target,)))
        start_all(nodes)
        simulator.run(until=1.0)
        sent_before = network.stats.messages_sent
        nodes[adversary]._handle_fetch_request(
            target, FetchRequest(requester=target, missing=(VertexId(round=1, source=0),))
        )
        assert network.stats.messages_sent == sent_before
        # An honest requester is still served.
        nodes[adversary]._handle_fetch_request(
            2, FetchRequest(requester=2, missing=(VertexId(round=1, source=0),))
        )
        assert network.stats.messages_sent == sent_before + 1


class TestLazyLeader:
    def test_delay_applies_only_to_own_leader_slots(self):
        _, _, _, nodes = build_cluster()
        node = nodes[1]
        policy = LazyLeaderPolicy(delay=2.0)
        policy.attach(node)
        own_slots = [
            round_number
            for round_number in range(2, 30, 2)
            if node.schedule_manager.leader_for_round(round_number) == node.id
        ]
        assert own_slots
        assert all(policy.proposal_delay(r) == 2.0 for r in own_slots)
        others = [r for r in range(2, 30, 2) if r not in own_slots]
        assert all(policy.proposal_delay(r) == 0.0 for r in others)
        assert all(policy.proposal_delay(r) == 0.0 for r in range(1, 30, 2))

    def test_lazy_leader_causes_leader_timeouts(self):
        _, simulator, _, nodes = build_cluster()
        nodes[3].set_behavior(LazyLeaderPolicy(delay=2.0))
        start_all(nodes)
        simulator.run(until=6.0)
        honest_timeouts = sum(nodes[v].leader_timeouts_suffered for v in (0, 1, 2))
        assert honest_timeouts > 0
        # The committee as a whole keeps committing despite the laziness.
        assert nodes[0].commit_count > 0


class TestReputationGaming:
    def test_honest_window_tracks_base_schedule_slots(self):
        _, _, _, nodes = build_cluster()
        node = nodes[2]
        policy = ReputationGamingPolicy(window=2)
        policy.attach(node)
        base = node.schedule_manager.history[0]
        for round_number in range(2, 40):
            anchors = [
                anchor
                for anchor in range(max(2, round_number - 2), round_number + 3)
                if anchor % 2 == 0
            ]
            expected = any(
                base.leader_for_round(anchor) == node.id for anchor in anchors
            )
            assert policy._near_own_slot(round_number) == expected

    def test_gamer_scores_between_withholder_and_honest(self):
        def epoch_scores(policy_factory):
            _, simulator, _, nodes = build_cluster(dynamic=True, commits_per_schedule=50)
            if policy_factory is not None:
                nodes[3].set_behavior(policy_factory())
            start_all(nodes)
            simulator.run(until=4.0)
            return nodes[0].schedule_manager.scores.as_dict()[3]

        honest = epoch_scores(None)
        gamer = epoch_scores(lambda: ReputationGamingPolicy(window=2))
        withholder = epoch_scores(VoteWithholdingPolicy)
        assert withholder < gamer <= honest

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            ReputationGamingPolicy(window=-1)


class TestBehaviorFault:
    def test_windowed_install_and_restore(self):
        _, simulator, network, nodes = build_cluster()
        fault = BehaviorFault(
            validators=(2, 3),
            policy_factory=VoteWithholdingPolicy,
            start=1.0,
            end=2.0,
        )
        observations = {}
        simulator.schedule_at(0.5, lambda: observations.update(before=type(nodes[2].behavior)))
        simulator.schedule_at(1.5, lambda: observations.update(during=type(nodes[2].behavior)))
        simulator.schedule_at(2.5, lambda: observations.update(after=type(nodes[3].behavior)))
        fault.schedule(simulator, network, nodes)
        start_all(nodes)
        simulator.run(until=3.0)
        assert observations["before"] is HonestPolicy
        assert observations["during"] is VoteWithholdingPolicy
        assert observations["after"] is HonestPolicy

    def test_each_validator_gets_its_own_policy_instance(self):
        _, simulator, network, nodes = build_cluster()
        fault = BehaviorFault(validators=(1, 2), policy_factory=VoteWithholdingPolicy)
        fault.schedule(simulator, network, nodes)
        start_all(nodes)
        simulator.run(until=0.5)
        assert nodes[1].behavior is not nodes[2].behavior
        assert nodes[1].behavior.node is nodes[1]
        assert nodes[2].behavior.node is nodes[2]

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            BehaviorFault(validators=(1,), policy_factory=VoteWithholdingPolicy, start=2.0, end=1.0)

    def test_describe_names_the_policy(self):
        fault = BehaviorFault(
            validators=(1,), policy_factory=VoteWithholdingPolicy, start=3.0
        )
        assert "vote withholding" in fault.describe()
        assert "[1]" in fault.describe()

    def test_compiled_behavior_plans_are_picklable(self):
        from repro.scenarios import get_scenario
        from repro.scenarios.spec import compile_spec

        for name in ("equivocation-split", "silent-saboteur", "lazy-leader", "reputation-gamer"):
            for point in compile_spec(get_scenario(name)):
                clone = pickle.loads(pickle.dumps(point.config))
                assert clone.extra_faults[0].describe() == point.config.extra_faults[0].describe()


class TestReputationMetrics:
    def test_metrics_from_fabricated_history(self):
        committee = Committee.build(4)
        manager = StaticScheduleManager(
            committee, LeaderSchedule(epoch=0, initial_round=0, slots=(0, 1, 2, 3))
        )
        # Fabricate two schedule changes demoting validator 3.
        manager.history.append(LeaderSchedule(epoch=1, initial_round=10, slots=(0, 1, 2, 0)))
        manager.history.append(LeaderSchedule(epoch=2, initial_round=20, slots=(0, 1, 2, 3)))
        metrics = reputation_metrics(manager, faulty=(3,))
        assert metrics["faulty_validators"] == [3]
        assert metrics["schedule_changes"] == 2
        assert metrics["rounds_until_demotion"] == {3: 10}
        assert metrics["demoted_epochs"] == {3: 1}
        assert metrics["faulty_slot_share_initial"] == 0.25
        assert metrics["faulty_slot_share_final"] == 0.25
        assert metrics["faulty_slot_share_converged"] == pytest.approx(0.125)
        assert metrics["trajectory"] == []

    def test_never_demoted_is_none(self):
        committee = Committee.build(4)
        manager = StaticScheduleManager(
            committee, LeaderSchedule(epoch=0, initial_round=0, slots=(0, 1, 2, 3))
        )
        metrics = reputation_metrics(manager, faulty=(2,))
        assert metrics["rounds_until_demotion"] == {2: None}
        assert metrics["faulty_slot_share_converged"] == 0.25
