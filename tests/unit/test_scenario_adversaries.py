"""Unit tests for the scenario-engine satellites of the adversary PR.

Covers the new behavior fault kinds, the ``then`` combinator,
committee-relative time expressions, and partition-aware load targeting.
"""

import json

import pytest

from repro.behavior import (
    EquivocationPolicy,
    LazyLeaderPolicy,
    ReputationGamingPolicy,
    SilentFanoutPolicy,
)
from repro.committee import Committee
from repro.errors import ConfigurationError
from repro.faults.base import head_validators
from repro.faults.behavior import BehaviorFault
from repro.scenarios import (
    FaultSpec,
    PartitionSpec,
    ScenarioSpec,
    WorkloadSpec,
    all_scenarios,
    compile_spec,
    get_scenario,
    scenario_names,
)
from repro.scenarios.spec import resolve_time
from repro.sim.experiment import run_experiment


def behavior_spec(**fault_kwargs) -> ScenarioSpec:
    return ScenarioSpec(
        name="behavior-test",
        committee_sizes=(7,),
        loads=(300.0,),
        duration=20.0,
        warmup=5.0,
        faults=(FaultSpec(**fault_kwargs),),
    )


class TestBehaviorFaultKinds:
    @pytest.mark.parametrize(
        "kind,policy_cls",
        [
            ("equivocate", EquivocationPolicy),
            ("silent-fanout", SilentFanoutPolicy),
            ("lazy-leader", LazyLeaderPolicy),
            ("reputation-gaming", ReputationGamingPolicy),
        ],
    )
    def test_kind_compiles_to_behavior_fault(self, kind, policy_cls):
        spec = behavior_spec(kind=kind, count=1, at=2.0)
        (point,) = compile_spec(spec)
        (plan,) = point.config.extra_faults
        assert isinstance(plan, BehaviorFault)
        assert plan.start == 2.0
        assert isinstance(plan.policy_factory(), policy_cls)
        # Attackers come from the tail, observer protected.
        assert plan.validators == (6,)

    def test_round_trip_preserves_behavior_faults(self):
        spec = behavior_spec(kind="silent-fanout", count=2, at=1.0, end=9.0, target_count=2)
        clone = ScenarioSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.scenario_digest() == spec.scenario_digest()

    def test_targets_and_target_count_are_exclusive(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="equivocate", count=1, targets=(1,), target_count=2).validate()

    def test_targets_rejected_for_other_kinds(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="crash", count=1, targets=(1,)).validate()
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="slow", count=1, target_count=1).validate()

    def test_boolean_and_wrong_typed_fields_rejected(self):
        # JSON true must not slip through as window=1 / target_count=1.
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="reputation-gaming", count=1, window=True).validate()
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="equivocate", count=1, target_count=True).validate()
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="silent-fanout", count=1, targets=(True,)).validate()
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="reputation-gaming", count=1, window="9").validate()

    def test_minimal_fault_plan_subclass_survives_a_run(self):
        # A FaultPlan subclass implementing only schedule() must not crash
        # the reputation-metrics path at result-build time.
        from repro.faults.base import FaultPlan
        from repro.sim.experiment import ExperimentConfig

        class NoopPlan(FaultPlan):
            def schedule(self, simulator, network, nodes):
                return None

            def describe(self):
                return "noop"

        config = ExperimentConfig(
            committee_size=4,
            input_load_tps=100.0,
            duration=4.0,
            warmup=1.0,
            extra_faults=(NoopPlan(),),
        )
        result = run_experiment(config)
        assert result.reputation["faulty_validators"] == []

    def test_window_only_for_reputation_gaming(self):
        FaultSpec(kind="reputation-gaming", count=1, window=4).validate()
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="equivocate", count=1, window=4).validate()
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="reputation-gaming", count=1, window=-1).validate()

    def test_behavior_window_end_allowed(self):
        spec = behavior_spec(kind="lazy-leader", count=1, at=2.0, end=10.0, extra_delay=1.0)
        (point,) = compile_spec(spec)
        (plan,) = point.config.extra_faults
        assert (plan.start, plan.end) == (2.0, 10.0)
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="crash", count=1, end=5.0).validate()

    def test_victims_resolve_from_the_head(self):
        spec = behavior_spec(kind="equivocate", count=1, target_count=2)
        (point,) = compile_spec(spec)
        (plan,) = point.config.extra_faults
        policy = plan.policy_factory()
        assert policy.victims == head_validators(Committee.build(7), 2) == (1, 2)

    def test_explicit_targets_respected(self):
        spec = behavior_spec(kind="silent-fanout", count=1, targets=(2, 3))
        (point,) = compile_spec(spec)
        (plan,) = point.config.extra_faults
        assert plan.policy_factory().targets == (2, 3)

    def test_smoke_shrinks_targeted_behaviors(self):
        spec = behavior_spec(kind="equivocate", count=1, targets=(5, 6))
        smoke = spec.smoke()
        (fault,) = smoke.faults
        assert fault.targets == ()
        assert fault.target_count == 1
        compile_spec(smoke)


class TestTimeExpressions:
    def test_resolution_per_committee_size(self):
        expression = {"base": 2.0, "per_validator": 0.5}
        assert resolve_time(expression, 10) == 7.0
        assert resolve_time(expression, 50) == 27.0
        assert resolve_time(3.5, 50) == 3.5
        assert resolve_time(None, 50) is None

    def test_fault_times_resolve_at_compile_time(self):
        spec = ScenarioSpec(
            name="relative",
            committee_sizes=(4, 10),
            loads=(200.0,),
            duration=60.0,
            warmup=5.0,
            faults=(
                FaultSpec(
                    kind="crash",
                    validators=(3,),
                    at={"base": 1.0, "per_validator": 0.5},
                ),
            ),
        )
        points = compile_spec(spec)
        starts = {
            point.committee_size: point.config.extra_faults[0].at_time
            for point in points
        }
        assert starts == {4: 3.0, 10: 6.0}

    def test_builtin_crash_time_resolves_too(self):
        spec = ScenarioSpec(
            name="relative-builtin",
            committee_sizes=(10,),
            loads=(200.0,),
            duration=60.0,
            faults=(
                FaultSpec(kind="crash", max_faulty=True, at={"per_validator": 0.25}),
            ),
        )
        (point,) = compile_spec(spec)
        assert point.config.fault_time == 2.5
        assert point.config.faults == 3

    def test_expression_round_trips_and_digests(self):
        spec = ScenarioSpec(
            name="expr",
            committee_sizes=(4,),
            duration=30.0,
            faults=(
                FaultSpec(
                    kind="slow",
                    count=1,
                    at={"base": 1.0, "per_validator": 0.5},
                    end={"base": 20.0},
                    extra_delay=0.3,
                ),
            ),
        )
        text = spec.to_json()
        clone = ScenarioSpec.from_json(text)
        assert clone == spec
        assert clone.scenario_digest() == spec.scenario_digest()
        assert json.loads(text)["faults"][0]["at"] == {"base": 1.0, "per_validator": 0.5}

    def test_bad_expressions_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="crash", count=1, at={"surprise": 1.0}).validate()
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="crash", count=1, at={}).validate()
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="crash", count=1, at={"base": -1.0}).validate()
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="crash", count=1, at={"base": True}).validate()

    def test_inverted_slow_window_fails_at_compile(self):
        # validate() cannot order an expression against a literal; the
        # compiler must reject the resolved inversion instead of letting
        # the restore event fire before the install.
        spec = ScenarioSpec(
            name="inverted-slow",
            committee_sizes=(25,),
            duration=60.0,
            faults=(
                FaultSpec(
                    kind="slow",
                    count=1,
                    at={"per_validator": 1.0},
                    end=20.0,
                    extra_delay=0.3,
                ),
            ),
        )
        with pytest.raises(ConfigurationError):
            compile_spec(spec)

    def test_unresolvable_recovery_order_fails_at_compile(self):
        spec = ScenarioSpec(
            name="bad-order",
            committee_sizes=(10,),
            duration=60.0,
            faults=(
                FaultSpec(
                    kind="crash-recovery",
                    validators=(9,),
                    at={"base": 0.0, "per_validator": 1.0},
                    recover_at=5.0,
                ),
            ),
        )
        with pytest.raises(ConfigurationError):
            compile_spec(spec)

    def test_smoke_resolves_expressions(self):
        spec = ScenarioSpec(
            name="expr-smoke",
            committee_sizes=(25,),
            duration=30.0,
            faults=(
                FaultSpec(kind="crash", count=1, at={"base": 2.0, "per_validator": 0.4}),
            ),
        )
        smoke = spec.smoke()
        (fault,) = smoke.faults
        # Resolved against the smoke committee (4), then time-scaled by 1/2.
        assert fault.at == pytest.approx(1.8)


class TestThenCombinator:
    def phase(self, name, **overrides):
        base = dict(
            name=name,
            protocols=("hammerhead",),
            committee_sizes=(4,),
            workload=WorkloadSpec(kind="constant", tps=200.0),
            duration=20.0,
            warmup=5.0,
            seed=3,
        )
        base.update(overrides)
        return ScenarioSpec(**base)

    def test_timelines_shift_by_duration_plus_gap(self):
        first = self.phase(
            "churn",
            faults=(FaultSpec(kind="crash-recovery", validators=(3,), at=5.0, recover_at=10.0),),
        )
        second = self.phase(
            "partition",
            partitions=(PartitionSpec(isolate_fraction=0.25, start=4.0, end=9.0),),
            disturbances=(),
        )
        combined = first.then(second, gap=2.0)
        assert combined.name == "churn+partition"
        assert combined.duration == 42.0
        assert combined.faults[0].at == 5.0  # first phase untouched
        (partition,) = combined.partitions
        assert (partition.start, partition.end) == (26.0, 31.0)
        combined.validate()

    def test_expression_times_shift_their_base(self):
        first = self.phase("quiet")
        second = self.phase(
            "late-crash",
            faults=(
                FaultSpec(kind="crash", validators=(3,), at={"base": 1.0, "per_validator": 0.5}),
            ),
        )
        combined = first.then(second, gap=0.0)
        (fault,) = combined.faults
        assert fault.at == {"base": 21.0, "per_validator": 0.5}

    def test_round_trip_and_digest_stability(self):
        first = self.phase("a", faults=(FaultSpec(kind="crash", validators=(3,), at=2.0),))
        second = self.phase("b")
        combined = first.then(second, gap=1.0)
        clone = ScenarioSpec.from_json(combined.to_json())
        assert clone == combined
        assert clone.scenario_digest() == combined.scenario_digest()
        # Deterministic: recombining yields the identical spec.
        assert first.then(second, gap=1.0).scenario_digest() == combined.scenario_digest()

    def test_burst_joins_after_constant(self):
        first = self.phase("flat")
        second = self.phase(
            "spike",
            workload=WorkloadSpec(
                kind="burst", tps=200.0, burst_tps=800.0, burst_start=5.0, burst_end=10.0
            ),
        )
        combined = first.then(second, gap=0.0)
        assert combined.workload.kind == "burst"
        assert (combined.workload.burst_start, combined.workload.burst_end) == (25.0, 30.0)
        combined.validate()

    def test_mismatched_axes_rejected(self):
        first = self.phase("a")
        second = self.phase("b", committee_sizes=(7,))
        with pytest.raises(ConfigurationError):
            first.then(second)

    def test_mismatched_rates_rejected(self):
        first = self.phase("a")
        second = self.phase("b", workload=WorkloadSpec(kind="constant", tps=500.0))
        with pytest.raises(ConfigurationError):
            first.then(second)

    def test_two_bursts_rejected(self):
        burst = WorkloadSpec(
            kind="burst", tps=200.0, burst_tps=800.0, burst_start=5.0, burst_end=10.0
        )
        with pytest.raises(ConfigurationError):
            self.phase("a", workload=burst).then(self.phase("b", workload=burst))

    def test_negative_gap_rejected(self):
        with pytest.raises(ConfigurationError):
            self.phase("a").then(self.phase("b"), gap=-1.0)

    def test_overlap_through_unhealed_partition_rejected(self):
        first = self.phase(
            "open-partition",
            partitions=(PartitionSpec(isolate_fraction=0.25, start=4.0),),
        )
        second = self.phase(
            "another",
            partitions=(PartitionSpec(isolate_fraction=0.25, start=4.0, end=9.0),),
        )
        with pytest.raises(ConfigurationError):
            first.then(second)


class TestPartitionFailover:
    def test_field_round_trips(self):
        spec = ScenarioSpec(
            name="failover",
            committee_sizes=(8,),
            loads=(200.0,),
            duration=20.0,
            warmup=5.0,
            partitions=(PartitionSpec(isolate_fraction=0.25, start=5.0, end=12.0),),
            partition_failover=True,
        )
        clone = ScenarioSpec.from_json(spec.to_json())
        assert clone.partition_failover
        (point,) = compile_spec(clone)
        assert point.config.partition_failover

    def test_failover_starves_the_minority_side(self):
        def run(failover):
            spec = ScenarioSpec(
                name="failover-run",
                committee_sizes=(8,),
                loads=(400.0,),
                duration=16.0,
                warmup=2.0,
                seed=5,
                partitions=(PartitionSpec(groups=((6, 7),), start=2.0, end=14.0),),
                partition_failover=failover,
            )
            (point,) = compile_spec(spec)
            from repro.sim.runner import SimulationRunner

            runner = SimulationRunner(point.config)
            runner.run()
            return {
                validator: node.transactions_submitted
                for validator, node in runner.nodes.items()
            }

        with_failover = run(True)
        without = run(False)
        # The minority side receives strictly less client load once
        # clients fail over; the majority side picks up the difference.
        assert with_failover[6] + with_failover[7] < without[6] + without[7]
        assert sum(with_failover.values()) >= sum(without.values())

    def test_default_off_preserves_legacy_behavior(self):
        spec = get_scenario("asymmetric-partition")
        assert not spec.partition_failover
        (point, *_) = compile_spec(spec)
        assert not point.config.partition_failover


class TestScenarioDigestStability:
    # scenario_digest() values recorded at the PR 3 HEAD (commit 69a3c5b),
    # before FaultSpec.targets/target_count/window and
    # ScenarioSpec.partition_failover existed.  The canonical dictionary
    # form omits those fields at their defaults, so specs that do not use
    # them must keep hashing exactly as they always did.
    PR3_SCENARIO_DIGESTS = {
        "faultless": "63cedb4a64322ee07a36686b4a260111cb76adafd5222daa72f5a1301bfd68fb",
        "figure2-faults": "0cbd9d48412843358a41c8c5099ce1ab9ac42108998fca5c12d4331b8b44e17a",
        "sui-incident": "6a43aba37fd0a61532508e8275c2da1c6572ba2d30013566fe5a60e3c8487966",
        "rolling-crash-churn": "596a5bebcdf0741ec8628d8b79daf44dd954c9e0037a6a3d7dcacb1d2a7b945a",
        "targeted-leader-attack": "144cd8c3f1a14cbfcae9c08c2a90b295c53a4d289ddaffc32baba51442b5472e",
        "asymmetric-partition": "be8d16af0fa4c5ce2e6b410998b636847cad1a40af0b2534577cceae6bf2a94b",
        "load-spike": "5b801cb94ba8889f064f911ff1b765aebc5e54364c5bfdfc9b97a2c06516b688",
        "mixed-adversary": "306f9268dbad2e69e1d24a42906751b15f13d691783b1e9a1d8ca045a017708b",
    }

    def test_pre_existing_scenario_digests_unchanged(self):
        for name, digest in self.PR3_SCENARIO_DIGESTS.items():
            assert get_scenario(name).scenario_digest() == digest, name

    def test_new_fields_participate_when_set(self):
        base = ScenarioSpec(name="digest-probe", committee_sizes=(4,), duration=20.0)
        assert (
            base.with_overrides(partition_failover=True).scenario_digest()
            != base.scenario_digest()
        )
        targeted = base.with_overrides(
            faults=(FaultSpec(kind="silent-fanout", count=1, target_count=1),)
        )
        retargeted = base.with_overrides(
            faults=(FaultSpec(kind="silent-fanout", count=1, target_count=2),)
        )
        assert targeted.scenario_digest() != retargeted.scenario_digest()


class TestRegistryAdditions:
    def test_new_scenarios_are_registered(self):
        expected = {
            "equivocation-split",
            "silent-saboteur",
            "lazy-leader",
            "reputation-gamer",
            "partition-failover",
            "maintenance-churn+recovery-spike",
        }
        assert expected <= set(scenario_names())
        assert len(scenario_names()) >= 14

    def test_adversarial_scenarios_compile_to_behavior_faults(self):
        policy_by_scenario = {
            "equivocation-split": EquivocationPolicy,
            "silent-saboteur": SilentFanoutPolicy,
            "lazy-leader": LazyLeaderPolicy,
            "reputation-gamer": ReputationGamingPolicy,
        }
        for name, policy_cls in policy_by_scenario.items():
            for point in compile_spec(get_scenario(name)):
                plans = [
                    plan
                    for plan in point.config.extra_faults
                    if isinstance(plan, BehaviorFault)
                ]
                assert plans, name
                assert isinstance(plans[0].policy_factory(), policy_cls)

    def test_combined_scenario_smokes_and_runs(self):
        smoke = get_scenario("maintenance-churn+recovery-spike").smoke()
        (point, *_) = compile_spec(smoke)
        result = run_experiment(point.config)
        assert result.report.committed_transactions > 0

    def test_all_scenarios_still_compile(self):
        for name, spec in all_scenarios().items():
            points = compile_spec(spec)
            assert points, name
            smoke_points = compile_spec(spec.smoke())
            assert smoke_points, name
