"""Unit tests for the discrete-event simulator and its event queue."""

import pytest

from repro.errors import SimulationError
from repro.network.events import EventQueue
from repro.network.simulator import Simulator


class TestEventQueue:
    def test_events_pop_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("late"))
        queue.push(1.0, lambda: fired.append("early"))
        assert queue.pop().time == 1.0
        assert queue.pop().time == 2.0

    def test_ties_break_by_scheduling_order(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: "first")
        second = queue.push(1.0, lambda: "second")
        assert queue.pop() is first
        assert queue.pop() is second

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: "cancel me")
        keeper = queue.push(2.0, lambda: "keep me")
        handle.cancel()
        queue.note_cancelled()
        assert queue.pop() is keeper

    def test_pop_on_empty_queue_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.push(3.0, lambda: None)
        handle.cancel()
        assert queue.peek_time() == 3.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_length_tracks_live_events(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        handle.cancel()
        queue.note_cancelled()
        assert len(queue) == 1

    def test_none_callback_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(1.0, None)


class TestSimulator:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_and_run_advances_clock(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(1.5, lambda: fired.append(simulator.now))
        simulator.run()
        assert fired == [1.5]
        assert simulator.now == 1.5

    def test_events_fire_in_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(2.0, lambda: order.append("b"))
        simulator.schedule(1.0, lambda: order.append("a"))
        simulator.schedule(3.0, lambda: order.append("c"))
        simulator.run()
        assert order == ["a", "b", "c"]

    def test_events_scheduled_during_run_are_executed(self):
        simulator = Simulator()
        fired = []

        def chain():
            fired.append(simulator.now)
            if len(fired) < 3:
                simulator.schedule(1.0, chain)

        simulator.schedule(1.0, chain)
        simulator.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_run_until_stops_before_later_events(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(1.0, lambda: fired.append("a"))
        simulator.schedule(5.0, lambda: fired.append("b"))
        simulator.run(until=2.0)
        assert fired == ["a"]
        assert simulator.now == 2.0

    def test_run_until_advances_clock_to_exact_end(self):
        simulator = Simulator()
        simulator.run(until=10.0)
        assert simulator.now == 10.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_in_the_past_rejected(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda: None)
        simulator.run()
        with pytest.raises(SimulationError):
            simulator.schedule_at(0.5, lambda: None)

    def test_cancel_prevents_execution(self):
        simulator = Simulator()
        fired = []
        handle = simulator.schedule(1.0, lambda: fired.append("x"))
        simulator.cancel(handle)
        simulator.run()
        assert fired == []

    def test_cancel_twice_is_harmless(self):
        simulator = Simulator()
        handle = simulator.schedule(1.0, lambda: None)
        simulator.cancel(handle)
        simulator.cancel(handle)
        simulator.run()

    def test_max_events_bound(self):
        simulator = Simulator()
        fired = []
        for index in range(10):
            simulator.schedule(float(index + 1), lambda index=index: fired.append(index))
        simulator.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_events_fired_counter(self):
        simulator = Simulator()
        for index in range(5):
            simulator.schedule(float(index), lambda: None)
        simulator.run()
        assert simulator.events_fired == 5

    def test_rng_is_seeded(self):
        values_a = [Simulator(seed=3).rng.random() for _ in range(1)]
        values_b = [Simulator(seed=3).rng.random() for _ in range(1)]
        assert values_a == values_b
        assert Simulator(seed=3).rng.random() != Simulator(seed=4).rng.random()

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False
