"""Regression tests: process-wide memo tables stay bounded and observable.

The committee-100 work added two interning tables (vertex ids, vertex
digests) to the process-wide memo population that already held the
broadcast-digest memo and the quorum-verdict caches.  Every one of them
must (a) stay under its cap via the shared oldest-half eviction policy —
a long bench session or sweep worker must never grow without bound — and
(b) surface its size in the always-on counters so a leak is visible in
any run's instrumentation snapshot, not just under a profiler.
"""

import pytest

import repro.dag.vertex as vertex_module
from repro.committee.stake import StakeVector, equal_stake
from repro.crypto.hashing import evict_oldest_half
from repro.dag.vertex import intern_table_sizes, interned_vertex_id, make_vertex
from repro.sim.experiment import ExperimentConfig, run_experiment


class TestEvictionPolicy:
    def test_oldest_half_evicted_at_limit(self):
        entries = {index: index for index in range(8)}
        evict_oldest_half(entries, 8)
        assert list(entries) == [4, 5, 6, 7]

    def test_below_limit_untouched(self):
        entries = {index: index for index in range(7)}
        evict_oldest_half(entries, 8)
        assert len(entries) == 7


class TestInternTableCaps:
    @pytest.fixture
    def small_limit(self, monkeypatch):
        # The cap is read as a module global on every interning call, so
        # shrinking it exercises the eviction path without building 2^17
        # vertices in a unit test.  The process-wide tables are emptied
        # first: eviction only chips away limit//2 entries per insert,
        # so a table pre-populated by earlier tests would otherwise mask
        # the bound under the shrunken cap.
        monkeypatch.setattr(vertex_module, "_INTERN_LIMIT", 64)
        vertex_module._VERTEX_ID_INTERN.clear()
        vertex_module._DIGEST_INTERN.clear()
        return 64

    def test_vertex_id_table_stays_bounded(self, small_limit):
        for round_number in range(small_limit * 3):
            interned_vertex_id(round_number, round_number % 7)
        assert intern_table_sizes()["vertex_id"] <= small_limit

    def test_digest_table_stays_bounded(self, small_limit):
        parents = []
        for round_number in range(small_limit * 2):
            vertex = make_vertex(round_number + 1, round_number % 5, edges=parents)
            parents = [vertex.id]
        assert intern_table_sizes()["digest"] <= small_limit

    def test_interning_returns_identical_objects(self):
        first = interned_vertex_id(3, 1)
        second = interned_vertex_id(3, 1)
        assert first is second

    def test_digest_interning_dedups_equal_digests(self):
        first = make_vertex(1, 0, edges=[])
        second = make_vertex(1, 0, edges=[])
        assert first.digest == second.digest
        assert first.digest is second.digest


class TestQuorumCacheCaps:
    def test_mask_cache_stays_bounded(self, monkeypatch):
        monkeypatch.setattr(StakeVector, "_SIGNER_CACHE_LIMIT", 32)
        vector = StakeVector(equal_stake(16).stakes)
        for mask in range(1, 200):
            vector.mask_has_quorum(mask)
        assert len(vector._mask_quorum_cache) <= 32

    def test_signer_cache_stays_bounded(self, monkeypatch):
        monkeypatch.setattr(StakeVector, "_SIGNER_CACHE_LIMIT", 32)
        vector = StakeVector(equal_stake(16).stakes)
        for validator in range(16):
            for other in range(validator + 1, 16):
                vector.signer_tuple_has_quorum((validator, other))
        assert len(vector._signer_quorum_cache) <= 32


class TestCountersExposeMemoSizes:
    def test_run_counters_carry_sizes_under_caps(self):
        result = run_experiment(
            ExperimentConfig(committee_size=4, duration=3.0, warmup=0.5, seed=3)
        )
        always = result.counters["always"]
        for key, cap in (
            ("memo.mask_quorum.size", StakeVector._SIGNER_CACHE_LIMIT),
            ("memo.signer_quorum.size", StakeVector._SIGNER_CACHE_LIMIT),
            ("memo.intern.vertex_id.size", vertex_module._INTERN_LIMIT),
            ("memo.intern.digest.size", vertex_module._INTERN_LIMIT),
            ("memo.edge_quorum.size", 65536),
        ):
            assert key in always
            assert 0 <= always[key] <= cap
        assert always["memo.mask_quorum.hits"] >= 0
        assert always["memo.mask_quorum.misses"] >= 0
