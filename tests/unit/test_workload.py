"""Unit tests for transactions and load generators."""

import pytest

from repro.errors import WorkloadError
from repro.workload.generator import MAX_RATE_PER_CLIENT, LoadGenerator, spawn_load
from repro.workload.transactions import counter_increment


class FakeValidator:
    """Minimal stand-in for a ValidatorNode as a load target."""

    def __init__(self, validator_id):
        self.id = validator_id
        self.received = []

    def submit_transaction(self, transaction):
        self.received.append(transaction)


class TestTransactions:
    def test_counter_increment_fields(self):
        transaction = counter_increment(7, client_id=2, submitted_at=1.5, target_validator=3)
        assert transaction.tx_id == 7
        assert transaction.client_id == 2
        assert transaction.submitted_at == 1.5
        assert transaction.target_validator == 3
        assert transaction.kind == "counter_increment"

    def test_transactions_are_hashable_and_frozen(self):
        transaction = counter_increment(1, 0, 0.0, 0)
        assert hash(transaction) is not None
        with pytest.raises(Exception):
            transaction.tx_id = 9

    def test_canonical_fields_exclude_timing(self):
        first = counter_increment(1, 0, 0.0, 0)
        second = counter_increment(1, 0, 5.0, 0)
        assert first.canonical_fields() == second.canonical_fields()


class TestLoadGenerator:
    def test_submits_at_requested_rate(self, simulator):
        target = FakeValidator(0)
        generator = LoadGenerator(
            client_id=0,
            simulator=simulator,
            targets=[target],
            rate=100.0,
            duration=2.0,
            submission_delay=0.0,
        )
        generator.start()
        simulator.run()
        assert generator.submitted == 200
        assert len(target.received) == 200

    def test_round_robin_over_targets(self, simulator):
        targets = [FakeValidator(index) for index in range(4)]
        generator = LoadGenerator(
            client_id=0,
            simulator=simulator,
            targets=targets,
            rate=40.0,
            duration=1.0,
            submission_delay=0.0,
        )
        generator.start()
        simulator.run()
        counts = [len(target.received) for target in targets]
        assert sum(counts) == 40
        assert max(counts) - min(counts) <= 1

    def test_submission_delay_is_applied(self, simulator):
        target = FakeValidator(0)
        generator = LoadGenerator(
            client_id=0,
            simulator=simulator,
            targets=[target],
            rate=10.0,
            duration=0.5,
            submission_delay=0.2,
        )
        generator.start()
        simulator.run()
        assert simulator.now >= 0.2

    def test_on_submit_callback(self, simulator):
        seen = []
        target = FakeValidator(0)
        generator = LoadGenerator(
            client_id=0,
            simulator=simulator,
            targets=[target],
            rate=10.0,
            duration=1.0,
            on_submit=seen.append,
        )
        generator.start()
        simulator.run()
        assert len(seen) == 10
        assert all(transaction.client_id == 0 for transaction in seen)

    def test_rate_above_per_client_cap_rejected(self, simulator):
        with pytest.raises(WorkloadError):
            LoadGenerator(0, simulator, [FakeValidator(0)], rate=500.0, duration=1.0)

    def test_zero_rate_rejected(self, simulator):
        with pytest.raises(WorkloadError):
            LoadGenerator(0, simulator, [FakeValidator(0)], rate=0.0, duration=1.0)

    def test_empty_targets_rejected(self, simulator):
        with pytest.raises(WorkloadError):
            LoadGenerator(0, simulator, [], rate=10.0, duration=1.0)

    def test_transaction_ids_are_unique(self, simulator):
        seen = []
        targets = [FakeValidator(0)]
        for client in range(2):
            LoadGenerator(
                client_id=client,
                simulator=simulator,
                targets=targets,
                rate=50.0,
                duration=1.0,
                on_submit=seen.append,
            ).start()
        simulator.run()
        ids = [transaction.tx_id for transaction in seen]
        assert len(ids) == len(set(ids)) == 100


class TestSpawnLoad:
    def test_spawns_enough_clients_for_total_rate(self, simulator):
        generators = spawn_load(
            simulator, [FakeValidator(0)], total_rate=1000.0, duration=1.0
        )
        assert len(generators) == 3  # 350 + 350 + 300
        assert sum(generator.rate for generator in generators) == pytest.approx(1000.0)
        assert all(generator.rate <= MAX_RATE_PER_CLIENT for generator in generators)

    def test_single_client_for_small_rate(self, simulator):
        generators = spawn_load(simulator, [FakeValidator(0)], total_rate=100.0, duration=1.0)
        assert len(generators) == 1

    def test_total_submissions_match_rate(self, simulator):
        target = FakeValidator(0)
        spawn_load(simulator, [target], total_rate=700.0, duration=2.0, submission_delay=0.0)
        simulator.run()
        assert len(target.received) == pytest.approx(1400, abs=5)

    def test_zero_rate_rejected(self, simulator):
        with pytest.raises(WorkloadError):
            spawn_load(simulator, [FakeValidator(0)], total_rate=0.0, duration=1.0)


class TestMergedSubmissionEvents:
    """The submit+arrive pair is one event with a precomputed timestamp."""

    def test_one_event_per_transaction(self, simulator):
        target = FakeValidator(0)
        generator = LoadGenerator(
            client_id=0,
            simulator=simulator,
            targets=[target],
            rate=100.0,
            duration=1.0,
            submission_delay=0.040,
        )
        generator.start()
        simulator.run()
        # 100 transactions, one delivery event each (no separate submits).
        assert simulator.events_fired == 100
        assert len(target.received) == 100

    def test_submitted_at_precedes_arrival_by_delay(self, simulator):
        seen = []
        target = FakeValidator(0)
        arrivals = []

        class Recorder:
            id = 0

            def submit_transaction(self, transaction):
                arrivals.append((transaction, simulator.now))

        generator = LoadGenerator(
            client_id=0,
            simulator=simulator,
            targets=[Recorder()],
            rate=50.0,
            duration=1.0,
            submission_delay=0.25,
            on_submit=seen.append,
        )
        generator.start()
        simulator.run()
        assert len(arrivals) == 50
        for transaction, arrived_at in arrivals:
            assert arrived_at == pytest.approx(transaction.submitted_at + 0.25)

    def test_submission_timestamps_follow_the_rate(self, simulator):
        seen = []
        generator = LoadGenerator(
            client_id=0,
            simulator=simulator,
            targets=[FakeValidator(0)],
            rate=10.0,
            duration=1.0,
            on_submit=seen.append,
        )
        generator.start()
        simulator.run()
        gaps = [b.submitted_at - a.submitted_at for a, b in zip(seen, seen[1:])]
        assert all(gap == pytest.approx(0.1) for gap in gaps)

    def test_runs_are_deterministic_end_to_end(self):
        """Gate for the tie-break renumbering: same config, same bytes."""
        from repro.sim.experiment import ExperimentConfig, run_experiment

        config = ExperimentConfig(
            committee_size=4, input_load_tps=300.0, duration=8.0, warmup=2.0, seed=6
        )
        first = run_experiment(config)
        second = run_experiment(config)
        assert first.ordering_digests == second.ordering_digests
        assert first.report.as_dict() == second.report.as_dict()


class TestLoadPhases:
    def test_phase_validation(self):
        from repro.workload.phases import LoadPhase, validate_phases

        with pytest.raises(WorkloadError):
            LoadPhase(2.0, 1.0, 100.0)
        with pytest.raises(WorkloadError):
            LoadPhase(-1.0, 1.0, 100.0)
        with pytest.raises(WorkloadError):
            validate_phases([LoadPhase(0.0, 2.0, 10.0), LoadPhase(1.0, 3.0, 10.0)])

    def test_burst_shape(self):
        from repro.workload.phases import burst_phases

        phases = burst_phases(100.0, 400.0, burst_start=5.0, burst_end=10.0, start=0.0, end=20.0)
        assert [(p.start, p.end, p.tps) for p in phases] == [
            (0.0, 5.0, 100.0),
            (5.0, 10.0, 400.0),
            (10.0, 20.0, 100.0),
        ]

    def test_ramp_shape(self):
        from repro.workload.phases import ramp_phases

        phases = ramp_phases(100.0, 400.0, steps=4, start=0.0, end=8.0)
        assert [p.tps for p in phases] == [100.0, 200.0, 300.0, 400.0]
        assert phases[-1].end == 8.0

    def test_diurnal_shape_clamps_at_zero(self):
        from repro.workload.phases import diurnal_phases

        phases = diurnal_phases(
            base_tps=100.0, amplitude=300.0, period=10.0, steps=10, start=0.0, end=10.0
        )
        assert all(p.tps >= 0.0 for p in phases)
        assert any(p.tps == 0.0 for p in phases)
        assert any(p.tps > 100.0 for p in phases)

    def test_average_tps_is_time_weighted(self):
        from repro.workload.phases import LoadPhase, average_tps

        phases = [LoadPhase(0.0, 1.0, 100.0), LoadPhase(1.0, 4.0, 500.0)]
        assert average_tps(phases) == pytest.approx((100.0 + 3 * 500.0) / 4.0)

    def test_spawn_phased_load_skips_quiet_windows(self, simulator):
        from repro.workload.phases import LoadPhase, spawn_phased_load

        target = FakeValidator(0)
        generators = spawn_phased_load(
            simulator,
            [target],
            [LoadPhase(0.0, 1.0, 100.0), LoadPhase(1.0, 2.0, 0.0), LoadPhase(2.0, 3.0, 50.0)],
            submission_delay=0.0,
        )
        simulator.run()
        assert len(generators) == 2
        assert len(target.received) == 150
        # No transaction was submitted during the quiet window.
        quiet = [t for t in target.received if 1.0 < t.submitted_at < 2.0]
        assert quiet == []
