"""Unit tests for leader schedules and their construction."""

import pytest

from repro.committee import Committee, geometric_stake
from repro.errors import ScheduleError
from repro.schedule.base import LeaderSchedule
from repro.schedule.round_robin import (
    initial_schedule,
    round_robin_slots,
    stake_weighted_slots,
)


class TestLeaderSchedule:
    def test_leader_rotation(self):
        schedule = LeaderSchedule(epoch=0, initial_round=2, slots=(0, 1, 2, 3))
        assert schedule.leader_for_round(2) == 0
        assert schedule.leader_for_round(4) == 1
        assert schedule.leader_for_round(6) == 2
        assert schedule.leader_for_round(8) == 3
        assert schedule.leader_for_round(10) == 0  # wraps around

    def test_rotation_respects_initial_round(self):
        schedule = LeaderSchedule(epoch=1, initial_round=10, slots=(5, 6))
        assert schedule.leader_for_round(10) == 5
        assert schedule.leader_for_round(12) == 6
        assert schedule.leader_for_round(14) == 5

    def test_odd_round_has_no_leader(self):
        schedule = LeaderSchedule(epoch=0, initial_round=2, slots=(0, 1))
        with pytest.raises(ScheduleError):
            schedule.leader_for_round(3)

    def test_round_before_schedule_rejected(self):
        schedule = LeaderSchedule(epoch=1, initial_round=10, slots=(0, 1))
        with pytest.raises(ScheduleError):
            schedule.leader_for_round(8)

    def test_covers(self):
        schedule = LeaderSchedule(epoch=0, initial_round=4, slots=(0,))
        assert schedule.covers(4)
        assert schedule.covers(100)
        assert not schedule.covers(2)
        assert not schedule.covers(5)

    def test_slot_counts(self):
        schedule = LeaderSchedule(epoch=0, initial_round=2, slots=(0, 1, 0, 2))
        assert schedule.slot_counts() == {0: 2, 1: 1, 2: 1}
        assert schedule.slots_of(0) == 2
        assert schedule.slots_of(3) == 0

    def test_leaders_preserves_first_occurrence_order(self):
        schedule = LeaderSchedule(epoch=0, initial_round=2, slots=(2, 0, 2, 1))
        assert schedule.leaders() == (2, 0, 1)

    def test_empty_slots_rejected(self):
        with pytest.raises(ScheduleError):
            LeaderSchedule(epoch=0, initial_round=2, slots=())

    def test_odd_initial_round_rejected(self):
        with pytest.raises(ScheduleError):
            LeaderSchedule(epoch=0, initial_round=3, slots=(0,))

    def test_negative_epoch_rejected(self):
        with pytest.raises(ScheduleError):
            LeaderSchedule(epoch=-1, initial_round=2, slots=(0,))

    def test_with_slots_derives_successor(self):
        schedule = LeaderSchedule(epoch=0, initial_round=2, slots=(0, 1))
        successor = schedule.with_slots((1, 1), initial_round=10, epoch=1)
        assert successor.epoch == 1
        assert successor.initial_round == 10
        assert successor.slots == (1, 1)


class TestScheduleConstruction:
    def test_round_robin_slots(self, committee4):
        assert round_robin_slots(committee4) == (0, 1, 2, 3)

    def test_stake_weighted_slots_equal_stake(self, committee10):
        # Equal stakes reduce to one slot each.
        assert stake_weighted_slots(committee10) == tuple(range(10))

    def test_stake_weighted_slots_proportional(self):
        committee = Committee.build(3, stake=geometric_stake(3, ratio=0.5, scale=4))
        # Stakes 4, 2, 1: validator 0 gets 4 slots, 1 gets 2, 2 gets 1.
        slots = stake_weighted_slots(committee)
        assert slots.count(0) == 4
        assert slots.count(1) == 2
        assert slots.count(2) == 1

    def test_stake_weighted_slots_with_cycle_length(self):
        committee = Committee.build(3, stake=geometric_stake(3, ratio=0.5, scale=4))
        slots = stake_weighted_slots(committee, cycle_length=7)
        assert len(slots) >= 3
        assert set(slots) == {0, 1, 2}

    def test_initial_schedule_is_permutation_of_stake_slots(self, committee10):
        schedule = initial_schedule(committee10, seed=3)
        assert sorted(schedule.slots) == list(range(10))
        assert schedule.epoch == 0
        assert schedule.initial_round == 2

    def test_initial_schedule_is_deterministic_per_seed(self, committee10):
        assert initial_schedule(committee10, seed=5).slots == initial_schedule(committee10, seed=5).slots

    def test_initial_schedule_differs_across_seeds(self, committee10):
        slots_by_seed = {initial_schedule(committee10, seed=seed).slots for seed in range(6)}
        assert len(slots_by_seed) > 1

    def test_initial_schedule_without_permutation(self, committee10):
        schedule = initial_schedule(committee10, permute=False)
        assert schedule.slots == tuple(range(10))

    def test_every_validator_has_a_slot_under_equal_stake(self, committee10):
        schedule = initial_schedule(committee10, seed=1)
        assert set(schedule.slots) == set(committee10.validators)

    def test_stake_proportional_leader_frequency(self):
        # A validator with half the stake leads half the rounds.
        committee = Committee.build(3, stake=geometric_stake(3, ratio=0.5, scale=4))
        schedule = initial_schedule(committee, seed=0, permute=False)
        rounds = [schedule.leader_for_round(round_number) for round_number in range(2, 2 + 2 * 7, 2)]
        assert rounds.count(0) == 4
        assert rounds.count(1) == 2
        assert rounds.count(2) == 1


class TestUpcomingLeaders:
    def _schedule(self):
        from repro.schedule.base import LeaderSchedule

        return LeaderSchedule(epoch=0, initial_round=2, slots=(0, 1, 2, 3))

    def test_next_anchor_round_snaps_forward(self):
        schedule = self._schedule()
        assert schedule.next_anchor_round(0) == 2
        assert schedule.next_anchor_round(3) == 4
        assert schedule.next_anchor_round(4) == 4

    def test_upcoming_leaders_walks_the_rotation(self):
        schedule = self._schedule()
        assert schedule.upcoming_leaders(3, count=3) == (1, 2, 3)
        # Duplicates preserved across a wrap of the cycle.
        assert schedule.upcoming_leaders(7, count=5) == (3, 0, 1, 2, 3)
        assert schedule.upcoming_leaders(2, count=0) == ()

    def test_rounds_before_the_schedule_start_at_its_first_anchor(self):
        from repro.schedule.base import LeaderSchedule

        late = LeaderSchedule(epoch=1, initial_round=10, slots=(5, 6))
        assert late.next_anchor_round(3) == 10
        assert late.upcoming_leaders(3, count=2) == (5, 6)
