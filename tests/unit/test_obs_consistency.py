"""Unit tests for committed-prefix consistency and recovery mining.

``repro.obs.consistency`` compares ordering-checkpoint chains within a
run (safety: all validators agree) and across runs (two variants commit
consistent prefixes even when their post-divergence histories differ).
``repro.obs.recovery`` mines park-to-promote stalls and
drop-to-rearrival gaps out of a trace.  Both are pure post-processing,
so every behaviour is pinned against small synthetic inputs.
"""

import pytest

from repro.obs.consistency import (
    PrefixComparison,
    check_run_consistency,
    checkpoint_chain,
    compare_prefixes,
)
from repro.obs.recovery import mine_recovery, recovery_summary


class TestCheckpointChain:
    def test_final_appended_when_it_extends(self):
        chain = checkpoint_chain([(64, "aa"), (128, "bb")], (150, "cc"))
        assert chain == [(64, "aa"), (128, "bb"), (150, "cc")]

    def test_final_not_appended_at_or_below_last_checkpoint(self):
        assert checkpoint_chain([(64, "aa")], (64, "aa")) == [(64, "aa")]
        assert checkpoint_chain([(64, "aa")], (50, "xx")) == [(64, "aa")]

    def test_zero_final_and_empty_checkpoints(self):
        assert checkpoint_chain([], (0, "")) == []
        assert checkpoint_chain([], (10, "aa")) == [(10, "aa")]
        assert checkpoint_chain([], None) == []


class TestComparePrefixes:
    def test_identical_chains_are_consistent(self):
        chain = [(64, "aa"), (128, "bb")]
        comparison = compare_prefixes(chain, chain)
        assert comparison.consistent
        assert comparison.common_prefix == 128
        assert comparison.first_divergence is None

    def test_prefix_of_the_other_is_consistent(self):
        comparison = compare_prefixes([(64, "aa")], [(64, "aa"), (128, "bb")])
        assert comparison.consistent
        assert comparison.common_prefix == 64

    def test_contradiction_at_aligned_count_is_divergence(self):
        comparison = compare_prefixes(
            [(64, "aa"), (128, "bb")], [(64, "aa"), (128, "XX")]
        )
        assert not comparison.consistent
        assert comparison.first_divergence == 128
        assert comparison.common_prefix == 64

    def test_unaligned_counts_cannot_contradict(self):
        """Counts present in only one chain are skipped, not compared."""
        comparison = compare_prefixes([(64, "aa"), (100, "zz")], [(64, "aa"), (128, "bb")])
        assert comparison.consistent
        assert comparison.common_prefix == 64

    def test_describe_mentions_divergence(self):
        diverged = compare_prefixes([(64, "aa")], [(64, "XX")])
        assert isinstance(diverged, PrefixComparison)
        assert "diverge" in diverged.describe().lower()
        agreed = compare_prefixes([(64, "aa")], [(64, "aa")])
        assert "diverge" not in agreed.describe().lower() or agreed.consistent


class TestRunConsistency:
    def test_agreeing_validators_produce_no_violations(self):
        digests = {0: (100, "ff"), 1: (100, "ff"), 2: (80, "ee")}
        checkpoints = {0: [(64, "aa")], 1: [(64, "aa")], 2: [(64, "aa")]}
        assert check_run_consistency(digests, checkpoints) == []

    def test_contradicting_validator_is_reported(self):
        digests = {0: (100, "ff"), 1: (100, "ff")}
        checkpoints = {0: [(64, "aa")], 1: [(64, "XX")]}
        violations = check_run_consistency(digests, checkpoints)
        assert len(violations) == 1
        assert "64" in violations[0]

    def test_validators_that_ordered_nothing_are_trivially_consistent(self):
        digests = {0: (100, "ff"), 1: (0, "")}
        checkpoints = {0: [(64, "aa")], 1: []}
        assert check_run_consistency(digests, checkpoints) == []


def parked(node, source, round_number, t):
    return {
        "kind": "vertex_parked",
        "t": t,
        "node": node,
        "source": source,
        "round": round_number,
    }


def promoted(node, source, round_number, t):
    return {
        "kind": "vertex_promoted",
        "t": t,
        "node": node,
        "source": source,
        "round": round_number,
    }


def dropped(destination, origin, round_number, t, type="CertificateMessage", reason="loss"):
    return {
        "kind": "message_dropped",
        "t": t,
        "sender": origin,
        "destination": destination,
        "type": type,
        "reason": reason,
        "origin": origin,
        "round": round_number,
    }


def delivered(node, origin, round_number, t):
    return {
        "kind": "payload_delivered",
        "t": t,
        "node": node,
        "origin": origin,
        "round": round_number,
    }


def inserted(node, source, round_number, t):
    return {
        "kind": "vertex_inserted",
        "t": t,
        "node": node,
        "source": source,
        "round": round_number,
    }


class TestMineRecovery:
    def test_park_to_promote_stall(self):
        report = mine_recovery(
            [parked(0, 1, 5, t=2.0), promoted(0, 1, 5, t=2.75)]
        )
        assert report.stalls == (0.75,)
        assert report.unpromoted == 0

    def test_park_without_promotion_counts_unpromoted(self):
        report = mine_recovery([parked(0, 1, 5, t=2.0)])
        assert report.stalls == ()
        assert report.unpromoted == 1

    def test_promotion_before_park_does_not_join(self):
        """Only promotions at or after the park time resolve it."""
        report = mine_recovery([promoted(0, 1, 5, t=1.0), parked(0, 1, 5, t=2.0)])
        assert report.stalls == ()
        assert report.unpromoted == 1

    def test_drop_joined_to_certificate_delivery(self):
        report = mine_recovery(
            [dropped(3, 1, 5, t=1.0), delivered(3, 1, 5, t=1.4)]
        )
        assert report.drop_samples == pytest.approx((0.4,))
        assert report.redundant_drops == 0
        assert report.unrecovered == 0

    def test_drop_joined_to_dag_insertion(self):
        """Fetch responses bypass the certificate layer: a DAG-level
        insertion counts as the re-arrival too."""
        report = mine_recovery([dropped(3, 1, 5, t=1.0), inserted(3, 1, 5, t=2.0)])
        assert report.drop_samples == (1.0,)

    def test_drop_after_arrival_is_redundant(self):
        report = mine_recovery([delivered(3, 1, 5, t=0.5), dropped(3, 1, 5, t=1.0)])
        assert report.drop_samples == ()
        assert report.redundant_drops == 1

    def test_drop_never_rearriving_is_unrecovered(self):
        report = mine_recovery([dropped(3, 1, 5, t=1.0)])
        assert report.unrecovered == 1
        assert report.certificate_drops == 1

    def test_arrival_at_other_node_does_not_heal(self):
        """The join is per-destination: node 2 receiving the vertex does
        not heal node 3's drop."""
        report = mine_recovery([dropped(3, 1, 5, t=1.0), delivered(2, 1, 5, t=1.4)])
        assert report.drop_samples == ()
        assert report.unrecovered == 1

    def test_non_loss_and_non_certificate_drops_are_ignored(self):
        events = [
            dropped(3, 1, 5, t=1.0, reason="sender_crashed"),
            dropped(3, 1, 5, t=1.0, type="ProposeMessage"),
            {"kind": "message_dropped", "t": 1.0, "reason": "loss",
             "type": "CertificateMessage"},  # no destination/origin/round
        ]
        report = mine_recovery(events)
        assert report.certificate_drops == 0

    def test_summary_keys(self):
        summary = recovery_summary(
            [
                parked(0, 1, 5, t=2.0),
                promoted(0, 1, 5, t=2.5),
                dropped(3, 1, 5, t=1.0),
                delivered(3, 1, 5, t=1.4),
            ]
        )
        assert summary["count"] == 1
        assert abs(summary["avg"] - 0.5) < 1e-9
        assert summary["unpromoted"] == 0.0
        assert summary["drop_count"] == 1.0
        assert summary["certificate_drops"] == 1.0
        assert summary["redundant_drops"] == 0.0
        assert summary["unrecovered"] == 0.0
        for key in ("p50", "p95", "p99", "max", "drop_p50", "drop_max"):
            assert key in summary
