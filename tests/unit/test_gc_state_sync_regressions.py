"""Regression tests for the GC / state-sync bug fixes.

Covers three defects found alongside the commit-path overhaul:

* ``DagStore.garbage_collect`` used to raise the horizon without
  re-evaluating the pending buffer, stranding vertices parked on pruned
  parents forever and leaking ``_pending`` / ``_waiting_on`` entries.
* ``BullsharkConsensus.fast_forward`` jumped ``last_ordered_anchor_round``
  without reporting the skipped anchor rounds to the schedule manager,
  silently skewing Shoal-style scoring after state sync.
* A schedule change must invalidate the incremental commit scan's
  candidate evaluations for rounds the new schedule covers (their leader
  may have changed after the rounds were already fully inserted).
"""

from __future__ import annotations

from typing import List, Optional

import pytest

from repro.committee import Committee
from repro.consensus.bullshark import BullsharkConsensus
from repro.core.manager import HammerHeadScheduleManager, ScheduleManager, StaticScheduleManager
from repro.dag.store import DagStore
from repro.dag.vertex import Vertex, genesis_vertices, make_vertex
from repro.schedule.base import LeaderSchedule
from repro.schedule.round_robin import initial_schedule
from repro.types import Round, VertexId

from tests.conftest import build_round, vid


# -- garbage_collect promotes / purges the pending buffer ----------------------------


class TestGarbageCollectPending:
    def test_gc_promotes_vertices_parked_on_pruned_parents(self, committee4):
        dag = DagStore(committee4)
        for vertex in genesis_vertices(committee4):
            dag.add(vertex)
        # Round-6 vertices whose round-5 parents never arrive.
        parked = [
            make_vertex(6, source, edges=[vid(5, 0), vid(5, 1), vid(5, 2)])
            for source in committee4.validators
        ]
        for vertex in parked:
            assert dag.add(vertex) is False
        assert dag.pending_count == len(parked)
        # GC moves the horizon past the missing parents: the parked
        # vertices become insertable and must be promoted by the GC call
        # itself (no explicit reconsider_pending()).
        dag.garbage_collect(6)
        assert dag.pending_count == 0
        for vertex in parked:
            assert vertex.id in dag

    def test_gc_purges_pending_below_horizon(self, committee4):
        dag = DagStore(committee4)
        for vertex in genesis_vertices(committee4):
            dag.add(vertex)
        # A vertex below the future horizon, parked on parents that never
        # arrive.  Its whole sub-DAG is ordered history once the horizon
        # passes it, so it must be dropped, not promoted.
        stale = make_vertex(3, 0, edges=[vid(2, 0), vid(2, 1), vid(2, 2)])
        assert dag.add(stale) is False
        dag.garbage_collect(6)
        assert dag.pending_count == 0
        assert stale.id not in dag

    def test_gc_purges_stale_wait_registrations(self, committee4):
        dag = DagStore(committee4)
        for vertex in genesis_vertices(committee4):
            dag.add(vertex)
        parked = make_vertex(4, 0, edges=[vid(3, 0), vid(3, 1), vid(3, 2)])
        dag.add(parked)
        assert dag.pending_missing() == {vid(3, 0), vid(3, 1), vid(3, 2)}
        dag.garbage_collect(5)
        # Neither the waiter nor the registrations survive: the waiter is
        # below the horizon and the parents will never arrive.
        assert dag.pending_count == 0
        assert dag.pending_missing() == set()
        assert not dag._waiting_on

    def test_gc_promotion_survives_reentrant_garbage_collect(self, committee4):
        """Insertion callbacks fired by GC promotion may re-enter GC.

        A validator's on_insert callback runs consensus, whose own GC call
        re-enters DagStore.garbage_collect while the outer
        reconsider_pending loop is mid-iteration; entries handled by the
        nested pass must not crash the outer one.
        """
        dag = DagStore(committee4)
        for vertex in genesis_vertices(committee4):
            dag.add(vertex)
        parents = [vid(7, 0), vid(7, 1), vid(7, 2)]
        parked = [make_vertex(8, source, edges=parents) for source in committee4.validators]
        for vertex in parked:
            assert dag.add(vertex) is False
        dag.on_insert(lambda vertex: dag.garbage_collect(vertex.round + 1))
        dag.garbage_collect(8)  # raised KeyError before the pop() guards
        assert dag.pending_count == 0

    def test_long_run_pending_buffer_stays_bounded(self, committee4):
        """The leak scenario: stragglers parked below a moving horizon."""
        dag = DagStore(committee4)
        for vertex in genesis_vertices(committee4):
            dag.add(vertex)
        for generation in range(20):
            base = 2 * generation + 2
            orphan = make_vertex(
                base, 0, edges=[vid(base - 1, 1), vid(base - 1, 2), vid(base - 1, 3)]
            )
            dag.add(orphan)
            dag.garbage_collect(base + 2)
        # Before the fix every generation left entries behind; now the
        # buffer is empty once the horizon has passed everything.
        assert dag.pending_count == 0
        assert not dag._waiting_on


# -- fast_forward reports the skipped anchor gap -------------------------------------


class RecordingManager(StaticScheduleManager):
    """Static schedule manager that records skip notifications."""

    def __init__(self, committee: Committee, initial: LeaderSchedule) -> None:
        super().__init__(committee, initial)
        self.skipped: List[Round] = []

    def on_anchor_skipped(self, round_number: Round) -> None:
        self.skipped.append(round_number)


def make_recording_consensus(committee: Committee) -> BullsharkConsensus:
    dag = DagStore(committee)
    for vertex in genesis_vertices(committee):
        dag.add(vertex)
    manager = RecordingManager(committee, initial_schedule(committee, seed=0, permute=False))
    return BullsharkConsensus(
        owner=0, committee=committee, dag=dag, schedule_manager=manager, record_sequence=True
    )


class TestFastForwardSkipReporting:
    def test_gap_anchors_reported_from_genesis(self, committee4):
        # The target round itself is the serving peer's last *committed*
        # anchor, so it must not be reported as skipped.
        consensus = make_recording_consensus(committee4)
        assert consensus.fast_forward(8) == 8
        assert consensus.schedule_manager.skipped == [2, 4, 6]

    def test_gap_anchors_reported_from_midstream(self, committee4):
        consensus = make_recording_consensus(committee4)
        consensus.last_ordered_anchor_round = 4
        assert consensus.fast_forward(9) == 10
        assert consensus.schedule_manager.skipped == [6, 8]

    def test_no_jump_reports_nothing(self, committee4):
        consensus = make_recording_consensus(committee4)
        consensus.last_ordered_anchor_round = 10
        assert consensus.fast_forward(6) is None
        assert consensus.schedule_manager.skipped == []

    def test_shoal_scores_see_the_gap(self, committee10):
        """Shoal-style scoring must observe state-sync skips."""
        from repro.core.scoring import ShoalScoring

        dag = DagStore(committee10)
        for vertex in genesis_vertices(committee10):
            dag.add(vertex)
        manager = HammerHeadScheduleManager(
            committee10,
            initial_schedule(committee10, seed=0, permute=False),
            scoring=ShoalScoring(),
        )
        consensus = BullsharkConsensus(
            owner=0, committee=committee10, dag=dag, schedule_manager=manager
        )
        before = manager.scores.as_dict()
        consensus.fast_forward(6)
        after = manager.scores.as_dict()
        assert before != after, "skipped anchors left no trace in the reputation scores"


# -- schedule changes invalidate incremental candidates ------------------------------


class SwitchOnceManager(ScheduleManager):
    """Returns a new schedule (new round-4 leader) on the round-2 commit."""

    def __init__(self, committee: Committee, initial: LeaderSchedule) -> None:
        super().__init__(committee, initial)
        self.switched = False

    def on_anchor_committed(self, anchor: Vertex) -> Optional[LeaderSchedule]:
        if anchor.round == 2 and not self.switched:
            self.switched = True
            new_schedule = LeaderSchedule(epoch=1, initial_round=4, slots=(2, 3, 0, 1))
            self.history.append(new_schedule)
            return new_schedule
        return None

    def describe(self) -> str:
        return "test manager switching the round-4 leader after the round-2 commit"


def drive_switch_scenario(incremental: bool) -> BullsharkConsensus:
    """Round 4's leader changes *after* rounds 4-5 are fully inserted.

    Under the initial schedule (slots 0,1,2,3 from round 2) the round-4
    leader is validator 1, which never produces a vertex, so round 4 is
    evaluated not-committable while it is inserted.  The withheld round-3
    vote then completes the round-2 quorum; committing round 2 switches to
    a schedule whose round-4 leader is validator 2, whose vertex has a full
    quorum of votes — but no further insertion will ever dirty round 4.
    """
    committee = Committee.build(4)
    dag = DagStore(committee, cache_reachability=incremental)
    for vertex in genesis_vertices(committee):
        dag.add(vertex)
    manager = SwitchOnceManager(
        committee, LeaderSchedule(epoch=0, initial_round=2, slots=(0, 1, 2, 3))
    )
    consensus = BullsharkConsensus(
        owner=0,
        committee=committee,
        dag=dag,
        schedule_manager=manager,
        record_sequence=True,
        incremental=incremental,
    )
    build_round(dag, committee, 1)
    build_round(dag, committee, 2)
    # Round 3: only validator 0 votes for the round-2 anchor (validator 0's
    # vertex); validators 2 and 3 link to the other three parents.  One
    # vote is below the f+1 = 2 threshold, so round 2 stays uncommitted.
    r2 = {vertex.source: vertex.id for vertex in dag.vertices_at(2)}
    r3_vertices = [
        make_vertex(3, 0, edges=list(r2.values())),
        make_vertex(3, 2, edges=[r2[1], r2[2], r2[3]]),
        make_vertex(3, 3, edges=[r2[1], r2[2], r2[3]]),
    ]
    withheld = make_vertex(3, 1, edges=list(r2.values()))
    for vertex in r3_vertices:
        dag.add(vertex)
        consensus.try_commit()
    # Rounds 4 and 5 without validator 1 (the round-4 leader under the
    # initial schedule): round 4 is repeatedly evaluated and dismissed.
    build_round(dag, committee, 4, sources=[0, 2, 3])
    consensus.try_commit()
    build_round(dag, committee, 5, sources=[0, 2, 3])
    consensus.try_commit()
    assert consensus.last_ordered_anchor_round == 0
    # The withheld vote completes round 2's quorum; committing it switches
    # the schedule, making validator 2 the round-4 leader retroactively.
    dag.add(withheld)
    consensus.try_commit()
    return consensus


class TestScheduleChangeInvalidation:
    def test_new_leader_anchor_commits_without_new_insertions(self):
        incremental = drive_switch_scenario(incremental=True)
        rescan = drive_switch_scenario(incremental=False)
        assert rescan.last_ordered_anchor_round == 4
        assert incremental.last_ordered_anchor_round == 4
        assert incremental.ordering_digest == rescan.ordering_digest
        assert incremental.ordered_ids() == rescan.ordered_ids()
