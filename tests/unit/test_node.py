"""Unit tests for the validator node over a small simulated network."""

import pytest

from repro.committee import Committee
from repro.core.manager import StaticScheduleManager
from repro.network.latency import UniformLatencyModel
from repro.network.simulator import Simulator
from repro.network.transport import Network
from repro.node.config import NodeConfig
from repro.node.messages import FetchRequest
from repro.node.validator import ValidatorNode
from repro.schedule.round_robin import initial_schedule
from repro.storage.store import PersistentStore
from repro.errors import ConfigurationError
from repro.workload.transactions import counter_increment


def build_cluster(size=4, seed=1, config=None, dynamic=False, commits_per_schedule=4):
    committee = Committee.build(size)
    simulator = Simulator(seed=seed)
    network = Network(simulator, latency_model=UniformLatencyModel(base_delay=0.01, jitter=0.002))
    node_config = config if config is not None else NodeConfig(
        max_batch_size=50,
        min_round_interval=0.05,
        leader_timeout=0.5,
        record_sequence=True,
    )

    def manager_factory():
        schedule = initial_schedule(committee, seed=seed, permute=False)
        if dynamic:
            from repro.core.manager import HammerHeadScheduleManager
            from repro.core.schedule_change import CommitCountPolicy

            return HammerHeadScheduleManager(
                committee, schedule, policy=CommitCountPolicy(commits_per_schedule)
            )
        return StaticScheduleManager(committee, schedule)

    nodes = {}
    for validator in committee.validators:
        nodes[validator] = ValidatorNode(
            validator_id=validator,
            committee=committee,
            network=network,
            schedule_manager=manager_factory(),
            config=node_config,
            schedule_manager_factory=manager_factory,
        )
    return committee, simulator, network, nodes


class TestNodeLifecycle:
    def test_nodes_make_progress(self):
        committee, simulator, network, nodes = build_cluster()
        for node in nodes.values():
            node.start()
        simulator.run(until=5.0)
        for node in nodes.values():
            assert node.current_round > 10
            assert node.commit_count > 0
            assert node.proposals_made > 10

    def test_double_start_rejected(self):
        committee, simulator, network, nodes = build_cluster()
        nodes[0].start()
        with pytest.raises(ConfigurationError):
            nodes[0].start()

    def test_max_round_stops_progress(self):
        config = NodeConfig(
            max_batch_size=10, min_round_interval=0.05, leader_timeout=0.5, max_round=6
        )
        committee, simulator, network, nodes = build_cluster(config=config)
        for node in nodes.values():
            node.start()
        simulator.run(until=5.0)
        assert all(node.current_round <= 6 for node in nodes.values())

    def test_all_nodes_order_the_same_prefix(self):
        committee, simulator, network, nodes = build_cluster()
        for node in nodes.values():
            node.start()
        simulator.run(until=5.0)
        sequences = [node.consensus.ordered_ids() for node in nodes.values()]
        shortest = min(len(sequence) for sequence in sequences)
        assert shortest > 0
        reference = sequences[0][:shortest]
        for sequence in sequences[1:]:
            assert sequence[:shortest] == reference

    def test_transactions_flow_into_blocks(self):
        committee, simulator, network, nodes = build_cluster()
        for node in nodes.values():
            node.start()
        for index in range(100):
            nodes[0].submit_transaction(counter_increment(index, 0, 0.0, 0))
        simulator.run(until=5.0)
        assert nodes[0].transactions_proposed == 100
        assert nodes[0].pool_size == 0

    def test_pool_respects_batch_size(self):
        config = NodeConfig(max_batch_size=5, min_round_interval=0.05, leader_timeout=0.5)
        committee, simulator, network, nodes = build_cluster(config=config)
        for index in range(12):
            nodes[0].submit_transaction(counter_increment(index, 0, 0.0, 0))
        nodes[0].start()
        # Only the first batch of five was proposed with the round-1 vertex.
        assert nodes[0].transactions_proposed == 5
        assert nodes[0].pool_size == 7

    def test_crashed_node_rejects_transactions(self):
        committee, simulator, network, nodes = build_cluster()
        nodes[0].start()
        nodes[0].crash()
        nodes[0].submit_transaction(counter_increment(1, 0, 0.0, 0))
        assert nodes[0].transactions_submitted == 0

    def test_describe(self):
        committee, simulator, network, nodes = build_cluster()
        nodes[0].start()
        assert "validator 0" in nodes[0].describe()


class TestLeaderTimeouts:
    def test_crashed_leader_causes_timeouts(self):
        committee, simulator, network, nodes = build_cluster()
        for node in nodes.values():
            node.start()
        # Validator 0 leads round 2 under the non-permuted schedule; crash it
        # immediately so every anchor round it owns forces a timeout.
        nodes[0].crash()
        simulator.run(until=6.0)
        alive_timeouts = sum(
            node.leader_timeouts_suffered for node in nodes.values() if not node.crashed
        )
        assert alive_timeouts > 0

    def test_no_timeouts_when_all_leaders_alive(self):
        committee, simulator, network, nodes = build_cluster()
        for node in nodes.values():
            node.start()
        simulator.run(until=5.0)
        assert all(node.leader_timeouts_suffered == 0 for node in nodes.values())

    def test_progress_despite_crashed_leader(self):
        committee, simulator, network, nodes = build_cluster()
        for node in nodes.values():
            node.start()
        nodes[0].crash()
        simulator.run(until=8.0)
        for validator, node in nodes.items():
            if validator == 0:
                continue
            assert node.commit_count > 0
            assert node.current_round > 8


class TestCrashRecovery:
    def test_recovered_node_rejoins_and_catches_up(self):
        committee, simulator, network, nodes = build_cluster()
        for node in nodes.values():
            node.start()
        simulator.schedule_at(2.0, nodes[3].crash)
        simulator.schedule_at(4.0, nodes[3].recover)
        simulator.run(until=10.0)
        assert nodes[3].recoveries == 1
        assert not nodes[3].crashed
        # The recovered node keeps up with the rest of the committee.
        max_round = max(node.current_round for node in nodes.values())
        assert nodes[3].current_round >= max_round - 6
        assert nodes[3].commit_count > 0

    def test_recovery_preserves_total_order_prefix(self):
        committee, simulator, network, nodes = build_cluster()
        for node in nodes.values():
            node.start()
        simulator.schedule_at(2.0, nodes[2].crash)
        simulator.schedule_at(3.5, nodes[2].recover)
        simulator.run(until=10.0)
        recovered = nodes[2].consensus.ordered_ids()
        reference = nodes[0].consensus.ordered_ids()
        shortest = min(len(recovered), len(reference))
        assert shortest > 0
        assert recovered[:shortest] == reference[:shortest]

    def test_recovery_without_crash_is_a_no_op(self):
        committee, simulator, network, nodes = build_cluster()
        nodes[0].start()
        nodes[0].recover()
        assert nodes[0].recoveries == 0

    def test_store_retains_vertices_across_crash(self):
        committee, simulator, network, nodes = build_cluster()
        for node in nodes.values():
            node.start()
        simulator.run(until=2.0)
        persisted_before = len(nodes[1].store.family(PersistentStore.CF_VERTICES))
        nodes[1].crash()
        assert len(nodes[1].store.family(PersistentStore.CF_VERTICES)) == persisted_before
        nodes[1].recover()
        simulator.run(until=4.0)
        assert len(nodes[1].store.family(PersistentStore.CF_VERTICES)) >= persisted_before

    def test_recovered_node_does_not_equivocate(self):
        committee, simulator, network, nodes = build_cluster()
        for node in nodes.values():
            node.start()
        simulator.schedule_at(1.0, nodes[1].crash)
        simulator.schedule_at(2.0, nodes[1].recover)
        # If the recovered node equivocated, honest DAG stores would raise
        # EquivocationError and the run would crash.
        simulator.run(until=8.0)
        assert nodes[0].commit_count > 0


class TestSynchronizer:
    def test_fetch_request_answered_with_causal_history(self):
        committee, simulator, network, nodes = build_cluster()
        for node in nodes.values():
            node.start()
        simulator.run(until=3.0)
        recent_round = nodes[0].consensus.last_ordered_anchor_round
        target_vertex = nodes[0].dag.vertex_of(recent_round, 0)
        assert target_vertex is not None
        responses = []
        network.register(
            99,
            committee.region_of(0),
            lambda sender, message: responses.append(message),
        )
        request = FetchRequest(requester=99, missing=(target_vertex.id,), deep=True)
        network.send(99, 0, request)
        simulator.run(until=4.0)
        assert responses
        fetched = responses[0].vertices
        assert target_vertex.id in {vertex.id for vertex in fetched}
        # Deep fetch includes ancestors.
        assert any(vertex.round < recent_round for vertex in fetched)

    def test_shallow_fetch_returns_only_requested(self):
        committee, simulator, network, nodes = build_cluster()
        for node in nodes.values():
            node.start()
        simulator.run(until=3.0)
        recent_round = nodes[0].consensus.last_ordered_anchor_round + 1
        target_vertex = nodes[0].dag.vertex_of(recent_round, 1)
        assert target_vertex is not None
        responses = []
        network.register(98, committee.region_of(0), lambda sender, message: responses.append(message))
        network.send(98, 0, FetchRequest(requester=98, missing=(target_vertex.id,), deep=False))
        simulator.run(until=4.0)
        assert len(responses[0].vertices) == 1

    def test_unknown_vertices_yield_no_response(self):
        committee, simulator, network, nodes = build_cluster()
        nodes[0].start()
        responses = []
        network.register(97, committee.region_of(0), lambda sender, message: responses.append(message))
        from repro.types import VertexId

        network.send(97, 0, FetchRequest(requester=97, missing=(VertexId(500, 2),)))
        simulator.run(until=1.0)
        assert responses == []
