"""Regression tests: BehaviorFault windows restore honesty deterministically.

The pre-fix restore unconditionally reset the validator to HONEST when a
window closed.  With abutting windows ([0, 5) then [5, 10)) the two
t=5 events — restore of the first fault and install of the second — ran
in plan-scheduling order, so listing the second fault first in the plan
sequence made the first fault's restore clobber the fresh install:
last-writer-wins.  The restore now only reverts a policy it installed
itself, making the outcome independent of plan order; truly overlapping
windows are rejected up front (``validate_behavior_windows`` /
scenario validation).
"""

import pytest

from repro.behavior import HONEST, BehaviorPolicy, VoteWithholdingPolicy
from repro.errors import ConfigurationError
from repro.faults.behavior import BehaviorFault, validate_behavior_windows
from repro.network.simulator import Simulator
from repro.scenarios.spec import FaultSpec, ScenarioSpec, compile_spec


class RecordingNode:
    """A stand-in exposing exactly the surface BehaviorFault touches."""

    def __init__(self, node_id):
        self.id = node_id
        self.behavior = HONEST
        self.transitions = []

    def set_behavior(self, policy):
        if policy is None:
            policy = HONEST
        self.behavior = policy
        self.transitions.append(policy)


def run_faults(faults, until=20.0):
    simulator = Simulator(seed=1)
    nodes = {0: RecordingNode(0), 1: RecordingNode(1)}
    for fault in faults:
        fault.schedule(simulator, network=None, nodes=nodes)
    simulator.run(until=until)
    return nodes


class TestDeterministicRestore:
    @pytest.mark.parametrize("reverse_plan_order", [False, True])
    def test_abutting_windows_end_honest_regardless_of_order(self, reverse_plan_order):
        first = BehaviorFault(
            validators=(0,), policy_factory=VoteWithholdingPolicy, start=1.0, end=5.0
        )
        second = BehaviorFault(
            validators=(0,), policy_factory=VoteWithholdingPolicy, start=5.0, end=9.0
        )
        plans = [second, first] if reverse_plan_order else [first, second]
        nodes = run_faults(plans)
        # Regardless of scheduling order, the final state is honest and
        # the second window's policy was live between t=5 and t=9 (the
        # first fault's restore never clobbered it).
        assert nodes[0].behavior is HONEST
        adversarial = [p for p in nodes[0].transitions if not p.transparent]
        assert len(adversarial) == 2

    def test_abutting_windows_install_fires_even_when_restore_runs_late(self):
        # The adversarial regression: second window scheduled first, so
        # at t=5 its install fires *before* the first window's restore.
        first = BehaviorFault(
            validators=(0,), policy_factory=VoteWithholdingPolicy, start=1.0, end=5.0
        )
        second = BehaviorFault(
            validators=(0,), policy_factory=VoteWithholdingPolicy, start=5.0, end=9.0
        )
        simulator = Simulator(seed=1)
        nodes = {0: RecordingNode(0)}
        second.schedule(simulator, network=None, nodes=nodes)
        first.schedule(simulator, network=None, nodes=nodes)
        simulator.run(until=7.0)
        # Mid-second-window the node must still be adversarial: the
        # first fault's t=5 restore saw a policy it did not install.
        assert not nodes[0].behavior.transparent
        simulator.run(until=12.0)
        assert nodes[0].behavior is HONEST

    def test_open_ended_window_never_restores(self):
        fault = BehaviorFault(validators=(0,), policy_factory=VoteWithholdingPolicy, start=2.0)
        nodes = run_faults([fault])
        assert not nodes[0].behavior.transparent

    def test_externally_replaced_policy_is_not_clobbered(self):
        fault = BehaviorFault(
            validators=(0,), policy_factory=VoteWithholdingPolicy, start=1.0, end=5.0
        )
        simulator = Simulator(seed=1)
        nodes = {0: RecordingNode(0)}
        fault.schedule(simulator, network=None, nodes=nodes)
        simulator.run(until=3.0)
        replacement = BehaviorPolicy()
        nodes[0].set_behavior(replacement)
        simulator.run(until=10.0)
        # The window's restore does not undo a policy someone else set.
        assert nodes[0].behavior is replacement


class TestOverlapRejection:
    def test_helper_rejects_true_overlap_on_shared_validator(self):
        with pytest.raises(ValueError, match="overlap"):
            validate_behavior_windows(
                [
                    ((0, 1), 0.0, 10.0, "a"),
                    ((1, 2), 5.0, 15.0, "b"),
                ]
            )

    def test_helper_accepts_abutting_and_disjoint(self):
        validate_behavior_windows(
            [
                ((0,), 0.0, 5.0, "a"),
                ((0,), 5.0, 10.0, "b"),
                ((1,), 2.0, 8.0, "c"),
            ]
        )

    def test_open_ended_window_overlaps_everything_later(self):
        with pytest.raises(ValueError):
            validate_behavior_windows(
                [
                    ((0,), 0.0, None, "a"),
                    ((0,), 50.0, 60.0, "b"),
                ]
            )

    def test_spec_validation_rejects_overlapping_explicit_windows(self):
        with pytest.raises(ConfigurationError, match="overlap"):
            ScenarioSpec(
                name="bad",
                faults=(
                    FaultSpec(kind="lazy-leader", validators=(9,), at=0.0, end=10.0),
                    FaultSpec(
                        kind="reputation-gaming", validators=(9,), at=5.0, end=15.0
                    ),
                ),
            ).validate()

    def test_spec_validation_rejects_two_overlapping_tail_selectors(self):
        with pytest.raises(ConfigurationError, match="overlap"):
            ScenarioSpec(
                name="bad",
                faults=(
                    FaultSpec(kind="lazy-leader", count=1, at=0.0, end=10.0),
                    FaultSpec(kind="reputation-gaming", count=1, at=5.0, end=15.0),
                ),
            ).validate()

    def test_compile_rejects_overlap_hidden_behind_selectors(self):
        # One explicit, one tail-selected: the spec validator cannot
        # prove sharing, the compiler can (tail of 10 = validator 9).
        spec = ScenarioSpec(
            name="bad",
            faults=(
                FaultSpec(kind="lazy-leader", validators=(9,), at=0.0, end=10.0),
                FaultSpec(kind="reputation-gaming", count=1, at=5.0, end=15.0),
            ),
        )
        with pytest.raises(ConfigurationError, match="overlap"):
            compile_spec(spec)

    def test_abutting_windows_compile_cleanly(self):
        spec = ScenarioSpec(
            name="ok",
            faults=(
                FaultSpec(kind="lazy-leader", validators=(9,), at=0.0, end=10.0),
                FaultSpec(kind="reputation-gaming", validators=(9,), at=10.0, end=20.0),
            ),
        )
        assert compile_spec(spec.validate())


class TestCoordinatedInstall:
    def test_installed_coordinator_carries_the_policy_stride(self):
        """Regression: the per-window coordinator must adopt the stride the
        factory bakes into the policies — a stride-1 coordinator would
        silently turn the configured rotation throttle into
        attack-every-anchor."""
        from functools import partial

        from repro.behavior import CoalitionGamingPolicy

        fault = BehaviorFault(
            validators=(0, 1),
            policy_factory=partial(CoalitionGamingPolicy, stride=3),
            coordinated=True,
        )
        nodes = run_faults([fault], until=1.0)
        policies = [nodes[v].behavior for v in (0, 1)]
        coordinators = {id(policy.coordinator) for policy in policies}
        assert len(coordinators) == 1, "members must share one coordinator"
        assert policies[0].coordinator.stride == 3
        assert policies[0].coordinator.members == (0, 1)

    def test_compiled_coalition_scenario_installs_matching_stride(self):
        """The stride written in the registry spec survives compile +
        install: spec -> factory partial -> policy -> shared coordinator."""
        from repro.scenarios import get_scenario
        from repro.scenarios.spec import compile_spec

        (point,) = [
            p
            for p in compile_spec(get_scenario("adaptive-dos"))
            if p.protocol == "hammerhead"
        ]
        (plan,) = [
            plan for plan in point.config.extra_faults if isinstance(plan, BehaviorFault)
        ]
        spec_stride = get_scenario("adaptive-dos").faults[0].stride
        simulator = Simulator(seed=1)
        nodes = {v: RecordingNode(v) for v in plan.validators}
        plan.schedule(simulator, network=None, nodes=nodes)
        simulator.run(until=1.0)
        coordinators = {id(nodes[v].behavior.coordinator) for v in plan.validators}
        assert len(coordinators) == 1
        member = plan.validators[0]
        assert nodes[member].behavior.coordinator.stride == spec_stride == 2
