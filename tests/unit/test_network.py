"""Unit tests for latency models, synchrony models, and the transport."""

import random

import pytest

from repro.committee.committee import DEFAULT_REGIONS
from repro.errors import NetworkError
from repro.network.latency import GeoLatencyModel, UniformLatencyModel
from repro.network.simulator import Simulator
from repro.network.synchrony import AlwaysSynchronous, PartialSynchrony
from repro.network.transport import Network
from repro.types import Region


class TestUniformLatencyModel:
    def test_delay_close_to_base(self):
        model = UniformLatencyModel(base_delay=0.05, jitter=0.0)
        delay = model.one_way_delay(Region("a"), Region("b"), random.Random(0))
        assert delay == pytest.approx(0.05)

    def test_same_region_is_faster(self):
        model = UniformLatencyModel(base_delay=0.05, jitter=0.0)
        local = model.one_way_delay(Region("a"), Region("a"), random.Random(0))
        remote = model.one_way_delay(Region("a"), Region("b"), random.Random(0))
        assert local < remote

    def test_jitter_bounds(self):
        model = UniformLatencyModel(base_delay=0.05, jitter=0.01)
        rng = random.Random(1)
        for _ in range(100):
            delay = model.one_way_delay(Region("a"), Region("b"), rng)
            assert 0.04 <= delay <= 0.06

    def test_negative_delay_rejected(self):
        with pytest.raises(NetworkError):
            UniformLatencyModel(base_delay=-0.1)


class TestGeoLatencyModel:
    def test_intra_region_is_fast(self):
        model = GeoLatencyModel(jitter_fraction=0.0)
        region = Region("us-east-1")
        assert model.base_delay(region, region) < 0.02

    def test_transpacific_is_slow(self):
        model = GeoLatencyModel(jitter_fraction=0.0)
        delay = model.base_delay(Region("eu-west-1"), Region("ap-southeast-2"))
        assert delay > 0.10

    def test_all_paper_region_pairs_have_latencies(self):
        model = GeoLatencyModel(jitter_fraction=0.0)
        for source in DEFAULT_REGIONS:
            for destination in DEFAULT_REGIONS:
                delay = model.base_delay(Region(source), Region(destination))
                assert 0.0 < delay < 0.5

    def test_base_delay_is_deterministic(self):
        model_a = GeoLatencyModel(jitter_fraction=0.0)
        model_b = GeoLatencyModel(jitter_fraction=0.0)
        pair = (Region("us-east-1"), Region("ap-south-1"))
        assert model_a.base_delay(*pair) == model_b.base_delay(*pair)

    def test_unknown_region_gets_default_wan_delay(self):
        model = GeoLatencyModel(jitter_fraction=0.0)
        assert model.base_delay(Region("moon-base-1"), Region("us-east-1")) == pytest.approx(0.060)

    def test_extra_latency_degrades_region(self):
        slow = GeoLatencyModel(jitter_fraction=0.0, extra_latency={"us-east-1": 0.5})
        fast = GeoLatencyModel(jitter_fraction=0.0)
        rng = random.Random(0)
        pair = (Region("us-east-1"), Region("eu-west-1"))
        assert slow.one_way_delay(*pair, rng) > fast.one_way_delay(*pair, random.Random(0)) + 0.4

    def test_delay_is_never_negative(self):
        model = GeoLatencyModel(jitter_fraction=0.9)
        rng = random.Random(3)
        for _ in range(200):
            delay = model.one_way_delay(Region("eu-west-1"), Region("eu-west-2"), rng)
            assert delay > 0.0


class TestSynchronyModels:
    def test_always_synchronous_caps_at_delta(self):
        model = AlwaysSynchronous(delta=1.0)
        assert model.adjust_delay(0.0, 5.0, random.Random(0)) == 1.0
        assert model.adjust_delay(0.0, 0.5, random.Random(0)) == 0.5

    def test_partial_synchrony_respects_delta_after_gst(self):
        model = PartialSynchrony(gst=10.0, delta=1.0)
        rng = random.Random(0)
        assert model.adjust_delay(11.0, 5.0, rng) == 1.0
        assert model.adjust_delay(11.0, 0.2, rng) == 0.2

    def test_partial_synchrony_can_stretch_before_gst(self):
        model = PartialSynchrony(gst=10.0, delta=1.0, adversarial_probability=1.0)
        rng = random.Random(0)
        delays = [model.adjust_delay(0.0, 0.1, rng) for _ in range(50)]
        assert max(delays) > 0.1

    def test_pre_gst_messages_arrive_by_gst_plus_delta(self):
        model = PartialSynchrony(gst=10.0, delta=1.0, adversarial_probability=1.0)
        rng = random.Random(1)
        for send_time in (0.0, 3.0, 9.9):
            for _ in range(50):
                delay = model.adjust_delay(send_time, 0.1, rng)
                assert send_time + delay <= 10.0 + 1.0 + 1e-9

    def test_invalid_parameters_rejected(self):
        with pytest.raises(NetworkError):
            PartialSynchrony(gst=-1.0)
        with pytest.raises(NetworkError):
            PartialSynchrony(delta=0.0)
        with pytest.raises(NetworkError):
            AlwaysSynchronous(delta=0.0)
        with pytest.raises(NetworkError):
            PartialSynchrony(adversarial_probability=1.5)


class TestTransport:
    def _build(self, node_count=3, base_delay=0.01):
        simulator = Simulator(seed=1)
        network = Network(simulator, latency_model=UniformLatencyModel(base_delay, jitter=0.0))
        inboxes = {index: [] for index in range(node_count)}
        for index in range(node_count):
            network.register(
                index,
                Region(f"region-{index}"),
                lambda sender, message, index=index: inboxes[index].append((sender, message)),
            )
        return simulator, network, inboxes

    def test_send_delivers_to_recipient(self):
        simulator, network, inboxes = self._build()
        network.send(0, 1, "hello")
        simulator.run()
        assert inboxes[1] == [(0, "hello")]
        assert inboxes[2] == []

    def test_broadcast_delivers_to_everyone(self):
        simulator, network, inboxes = self._build()
        network.broadcast(0, "hi")
        simulator.run()
        assert all(inboxes[index] == [(0, "hi")] for index in inboxes)

    def test_broadcast_can_exclude_self(self):
        simulator, network, inboxes = self._build()
        network.broadcast(0, "hi", include_self=False)
        simulator.run()
        assert inboxes[0] == []
        assert inboxes[1] == [(0, "hi")]

    def test_multicast_targets_subset(self):
        simulator, network, inboxes = self._build(node_count=4)
        network.multicast(0, [1, 3], "m")
        simulator.run()
        assert inboxes[1] and inboxes[3]
        assert not inboxes[2]

    def test_crashed_sender_drops_messages(self):
        simulator, network, inboxes = self._build()
        network.set_crashed(0)
        network.send(0, 1, "lost")
        simulator.run()
        assert inboxes[1] == []
        assert network.stats.messages_dropped == 1

    def test_crashed_recipient_drops_messages(self):
        simulator, network, inboxes = self._build()
        network.set_crashed(1)
        network.send(0, 1, "lost")
        simulator.run()
        assert inboxes[1] == []

    def test_crash_during_flight_drops_message(self):
        simulator, network, inboxes = self._build(base_delay=0.5)
        network.send(0, 1, "in flight")
        simulator.schedule(0.1, lambda: network.set_crashed(1))
        simulator.run()
        assert inboxes[1] == []

    def test_recovered_recipient_receives_again(self):
        simulator, network, inboxes = self._build()
        network.set_crashed(1)
        network.set_crashed(1, False)
        network.send(0, 1, "back")
        simulator.run()
        assert inboxes[1] == [(0, "back")]

    def test_unregistered_recipient_rejected(self):
        simulator, network, _ = self._build()
        with pytest.raises(NetworkError):
            network.send(0, 99, "x")

    def test_duplicate_registration_rejected(self):
        simulator, network, _ = self._build()
        with pytest.raises(NetworkError):
            network.register(0, Region("r"), lambda sender, message: None)

    def test_messages_are_counted(self):
        simulator, network, _ = self._build()
        network.send(0, 1, "a")
        network.broadcast(1, "b")
        simulator.run()
        assert network.stats.messages_sent == 4
        assert network.stats.messages_delivered == 4
        assert network.stats.broadcasts == 1

    def test_link_degradation_slows_delivery(self):
        simulator, network, inboxes = self._build()
        network.set_link_degradation(1, inbound_extra=0.5)
        network.send(0, 1, "slow")
        network.send(0, 2, "fast")
        simulator.run()
        # Both delivered, but the degraded node received later; verify via
        # the simulator clock having advanced past the degradation delay.
        assert simulator.now >= 0.5

    def test_processing_delay_must_be_non_negative(self):
        _, network, _ = self._build()
        with pytest.raises(NetworkError):
            network.set_processing_delay(0, -0.1)


class TestPartitionAndDisturbance:
    def _build(self, node_count=4, base_delay=0.01):
        simulator = Simulator(seed=1)
        network = Network(simulator, latency_model=UniformLatencyModel(base_delay, jitter=0.0))
        inboxes = {index: [] for index in range(node_count)}
        for index in range(node_count):
            network.register(
                index,
                Region(f"region-{index}"),
                lambda sender, message, index=index: inboxes[index].append((sender, message)),
            )
        return simulator, network, inboxes

    def test_partition_drops_cross_group_messages(self):
        simulator, network, inboxes = self._build()
        network.set_partition([(0, 1), (2, 3)])
        network.send(0, 1, "same side")
        network.send(0, 2, "other side")
        simulator.run()
        assert inboxes[1] == [(0, "same side")]
        assert inboxes[2] == []
        assert network.stats.partition_drops == 1

    def test_unlisted_nodes_form_an_implicit_group(self):
        simulator, network, inboxes = self._build()
        network.set_partition([(0,)])
        network.send(2, 3, "both unlisted")
        network.send(2, 0, "into the island")
        simulator.run()
        assert inboxes[3] == [(2, "both unlisted")]
        assert inboxes[0] == []

    def test_clear_partition_restores_delivery(self):
        simulator, network, inboxes = self._build()
        network.set_partition([(0,), (1,)])
        network.clear_partition()
        network.send(0, 1, "healed")
        simulator.run()
        assert inboxes[1] == [(0, "healed")]

    def test_partition_rejects_overlapping_groups(self):
        _, network, _ = self._build()
        with pytest.raises(NetworkError):
            network.set_partition([(0, 1), (1, 2)])

    def test_self_delivery_survives_partition(self):
        simulator, network, inboxes = self._build()
        network.set_partition([(0,), (1, 2, 3)])
        network.send(0, 0, "to self")
        simulator.run()
        assert inboxes[0] == [(0, "to self")]

    def test_loss_rate_drops_some_messages(self):
        simulator, network, inboxes = self._build()
        network.set_loss_rate(0.5)
        for _ in range(100):
            network.send(0, 1, "maybe")
        simulator.run()
        assert 0 < len(inboxes[1]) < 100
        assert network.stats.loss_drops == 100 - len(inboxes[1])

    def test_loss_never_drops_self_delivery(self):
        simulator, network, inboxes = self._build()
        network.set_loss_rate(0.9)
        for _ in range(50):
            network.send(1, 1, "local")
        simulator.run()
        assert len(inboxes[1]) == 50

    def test_jitter_stretches_delivery(self):
        simulator, network, _ = self._build(base_delay=0.01)
        network.set_jitter(0.5)
        for _ in range(20):
            network.send(0, 1, "jittered")
        simulator.run()
        # With 0.5s of jitter at least one of 20 deliveries lands well
        # after the 0.01s base delay.
        assert simulator.now > 0.05

    def test_invalid_rates_rejected(self):
        _, network, _ = self._build()
        with pytest.raises(NetworkError):
            network.set_loss_rate(1.0)
        with pytest.raises(NetworkError):
            network.set_jitter(-0.1)
