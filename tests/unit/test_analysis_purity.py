"""Purity-map construction, baseline round-trips, and the poison gate.

The toy-package tests pin the graph semantics (import closure, function
reachability, islands excluded); the repository tests pin the
acceptance property: a nondeterministic call that enters the commit
path must surface as a purity violation *and* as baseline drift.
"""

import json
import textwrap

import pytest

from repro.analysis.config import repo_config
from repro.analysis.engine import analyze, load_baseline, write_baseline
from repro.analysis.purity import (
    MODULE_NODE,
    baseline_payload,
    build_purity_map,
    compare_baseline,
    import_closure,
)
from repro.analysis.source import load_package, module_from_source
from repro.analysis.config import AnalyzerConfig
from repro.errors import ReproError


def write_toy_package(tmp_path):
    pkg = tmp_path / "toy"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "a.py").write_text(
        textwrap.dedent(
            """
            from toy.b import helper


            def entry():
                return helper()
            """
        )
    )
    (pkg / "b.py").write_text(
        textwrap.dedent(
            """
            from toy import c


            def helper():
                return c.leaf()


            def unused():
                return 0
            """
        )
    )
    (pkg / "c.py").write_text("def leaf():\n    return 1\n")
    (pkg / "d.py").write_text("def island():\n    return 2\n")
    return tmp_path


def toy_map(tmp_path):
    root = write_toy_package(tmp_path)
    modules = load_package(root, "toy")
    config = AnalyzerConfig(root=root, package="toy", purity_roots=("toy.a",))
    return build_purity_map(modules, config), modules, config


class TestToyPackageGraph:
    def test_closure_follows_imports_and_skips_islands(self, tmp_path):
        purity, _modules, _config = toy_map(tmp_path)
        closure = set(purity.closure)
        assert {"toy.a", "toy.b", "toy.c"} <= closure
        assert "toy.d" not in closure

    def test_reachability_follows_call_edges(self, tmp_path):
        purity, _modules, _config = toy_map(tmp_path)
        reachable = purity.reachable_set()
        assert "toy.a:entry" in reachable
        assert "toy.b:helper" in reachable
        assert "toy.c:leaf" in reachable
        # Defined in a closure module but never called: not reachable.
        assert "toy.b:unused" not in reachable
        assert "toy.d:island" not in reachable

    def test_module_level_code_is_reachable(self, tmp_path):
        purity, _modules, _config = toy_map(tmp_path)
        reachable = purity.reachable_set()
        for module_name in purity.closure:
            assert f"{module_name}:{MODULE_NODE}" in reachable

    def test_missing_roots_are_skipped(self, tmp_path):
        root = write_toy_package(tmp_path)
        modules = load_package(root, "toy")
        config = AnalyzerConfig(
            root=root, package="toy", purity_roots=("toy.a", "toy.ghost")
        )
        purity = build_purity_map(modules, config)
        assert purity.roots == ("toy.a",)

    def test_import_closure_is_sorted_and_deterministic(self, tmp_path):
        root = write_toy_package(tmp_path)
        modules = load_package(root, "toy")
        closure = import_closure(("toy.a",), modules)
        assert list(closure) == sorted(closure)
        assert closure == import_closure(("toy.a",), modules)


class TestBaselineRoundTrip:
    def test_payload_is_self_consistent(self, tmp_path):
        purity, _modules, _config = toy_map(tmp_path)
        payload = baseline_payload(purity)
        assert payload["version"] == 1
        assert compare_baseline(payload, payload) == []

    def test_write_then_load_round_trips(self, tmp_path):
        purity, _modules, _config = toy_map(tmp_path)
        path = tmp_path / "analysis" / "purity_baseline.json"
        write_baseline(purity, path)
        loaded = load_baseline(path)
        assert compare_baseline(baseline_payload(purity), loaded) == []

    def test_drift_lines_name_added_and_removed_entries(self, tmp_path):
        purity, modules, config = toy_map(tmp_path)
        old = baseline_payload(purity)
        # Grow the graph: a new function in a root module is a new root.
        grown = modules["toy.a"].text + "\n\ndef extra():\n    return entry()\n"
        modules["toy.a"] = module_from_source("toy.a", "toy/a.py", grown)
        new = baseline_payload(build_purity_map(modules, config))
        drift = compare_baseline(new, old)
        assert "reachable: + toy.a:extra" in drift

    def test_load_baseline_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(ReproError):
            load_baseline(path)

    def test_load_baseline_rejects_non_object_payload(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ReproError):
            load_baseline(path)


class TestRepositoryPurityGate:
    """The acceptance property, run against the real tree."""

    def test_checked_in_baseline_matches_current_tree(self):
        config = repo_config()
        report = analyze(config, rules=["DET001", "DET002"])
        assert report.baseline_diff == ()
        assert report.purity_violations == ()

    def test_poisoned_commit_path_module_fails_all_three_gates(self):
        config = repo_config()
        modules = load_package(config.root, config.package)
        store = modules["repro.dag.store"]
        poisoned = store.text + textwrap.dedent(
            """

            import time


            def _poisoned_now():
                return time.time()
            """
        )
        modules["repro.dag.store"] = module_from_source(
            "repro.dag.store", store.path, poisoned
        )
        report = analyze(config, rules=["DET002"], modules=modules)
        assert not report.ok
        # Gate 1: the rule itself fires.
        assert any(f.rule == "DET002" for f in report.findings)
        # Gate 2: the finding is reachable from the ordering digest.
        assert any(
            v.module == "repro.dag.store" and v.function == "_poisoned_now"
            for v in report.purity_violations
        )
        # Gate 3: the checked-in baseline drifts.
        assert any(
            "reachable: + repro.dag.store:_poisoned_now" in line
            for line in report.baseline_diff
        )
