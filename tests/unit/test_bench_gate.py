"""Unit tests for the bench regression gate (benchmarks/check_regression.py)."""

import json
import os
import sys

BENCHMARKS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "benchmarks",
)
if BENCHMARKS_DIR not in sys.path:
    sys.path.insert(0, BENCHMARKS_DIR)

import check_regression  # noqa: E402


def fig1_point(load, eps):
    return {"input_load_tps": load, "events_per_sec": eps}


def committee_point(size, load, eps, duration=20.0, digest=None):
    point = {
        "committee_size": size,
        "input_load_tps": load,
        "duration_s": duration,
        "events_per_sec": eps,
    }
    if digest is not None:
        point["ordering_digest"] = digest
    return point


def document(points=(), committee=()):
    return {"points": list(points), "committee_scaling": list(committee)}


class TestThresholdLogic:
    def test_identical_documents_pass(self):
        doc = document([fig1_point(4000.0, 100000.0)], [committee_point(25, 4000.0, 200000.0)])
        findings = check_regression.compare_documents(doc, doc, 0.10)
        assert not any(finding.fatal for finding in findings)

    def test_regression_beyond_threshold_fails(self):
        base = document([fig1_point(4000.0, 100000.0)])
        fresh = document([fig1_point(4000.0, 89000.0)])  # -11%
        findings = check_regression.compare_documents(fresh, base, 0.10)
        assert any(finding.fatal for finding in findings)

    def test_regression_within_threshold_passes(self):
        base = document([fig1_point(4000.0, 100000.0)])
        fresh = document([fig1_point(4000.0, 91000.0)])  # -9%
        findings = check_regression.compare_documents(fresh, base, 0.10)
        assert not any(finding.fatal for finding in findings)

    def test_boundary_is_exclusive(self):
        # Exactly at the threshold (ratio == 1 - threshold) must pass:
        # the gate fails only on regressions *beyond* the tolerance.
        base = document([fig1_point(4000.0, 100000.0)])
        fresh = document([fig1_point(4000.0, 90000.0)])
        findings = check_regression.compare_documents(fresh, base, 0.10)
        assert not any(finding.fatal for finding in findings)

    def test_improvement_passes(self):
        base = document(committee=[committee_point(25, 4000.0, 100000.0)])
        fresh = document(committee=[committee_point(25, 4000.0, 250000.0)])
        findings = check_regression.compare_documents(fresh, base, 0.10)
        assert not any(finding.fatal for finding in findings)

    def test_wider_threshold_tolerates_more(self):
        base = document([fig1_point(4000.0, 100000.0)])
        fresh = document([fig1_point(4000.0, 70000.0)])  # -30%
        assert any(
            finding.fatal
            for finding in check_regression.compare_documents(fresh, base, 0.10)
        )
        assert not any(
            finding.fatal
            for finding in check_regression.compare_documents(fresh, base, 0.35)
        )


class TestStageMatching:
    def test_subset_smoke_document_passes(self):
        base = document(
            [fig1_point(1000.0, 90000.0), fig1_point(4000.0, 100000.0)],
            [committee_point(25, 4000.0, 200000.0), committee_point(50, 4000.0, 150000.0)],
        )
        fresh = document(
            [fig1_point(4000.0, 99000.0)], [committee_point(25, 4000.0, 195000.0)]
        )
        findings = check_regression.compare_documents(fresh, base, 0.10)
        assert not any(finding.fatal for finding in findings)
        skipped = [finding for finding in findings if not finding.fatal]
        assert skipped  # the missing stages are reported, not failed

    def test_changed_duration_is_a_different_stage(self):
        base = document(committee=[committee_point(25, 4000.0, 200000.0, duration=20.0)])
        fresh = document(committee=[committee_point(25, 4000.0, 50000.0, duration=5.0)])
        findings = check_regression.compare_documents(fresh, base, 0.10)
        assert not any(finding.fatal for finding in findings)

    def test_empty_fresh_document_is_fatal(self):
        findings = check_regression.compare_documents(
            document(), document([fig1_point(4000.0, 1.0)]), 0.10
        )
        assert any(finding.fatal for finding in findings)

    def test_digest_mismatch_is_fatal_even_when_fast(self):
        base = document(committee=[committee_point(25, 4000.0, 100000.0, digest="a" * 64)])
        fresh = document(committee=[committee_point(25, 4000.0, 300000.0, digest="b" * 64)])
        findings = check_regression.compare_documents(fresh, base, 0.10)
        assert any(finding.fatal for finding in findings)


class TestMainEntry:
    def write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_pass_and_fail_exit_codes(self, tmp_path):
        base = self.write(
            tmp_path, "base.json", document([fig1_point(4000.0, 100000.0)])
        )
        good = self.write(
            tmp_path, "good.json", document([fig1_point(4000.0, 99000.0)])
        )
        bad = self.write(
            tmp_path, "bad.json", document([fig1_point(4000.0, 10000.0)])
        )
        assert check_regression.main([good, "--baseline", base]) == 0
        assert check_regression.main([bad, "--baseline", base]) == 1

    def test_threshold_env_override(self, tmp_path, monkeypatch):
        base = self.write(
            tmp_path, "base.json", document([fig1_point(4000.0, 100000.0)])
        )
        bad = self.write(
            tmp_path, "bad.json", document([fig1_point(4000.0, 80000.0)])
        )
        assert check_regression.main([bad, "--baseline", base]) == 1
        monkeypatch.setenv("REPRO_BENCH_REGRESSION_THRESHOLD", "0.5")
        assert check_regression.main([bad, "--baseline", base]) == 0

    def test_unreadable_input_is_a_clean_error(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", document())
        assert check_regression.main([str(tmp_path / "missing.json"), "--baseline", base]) == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err

    def test_invalid_threshold_rejected(self, tmp_path):
        base = self.write(tmp_path, "base.json", document())
        assert check_regression.main([base, "--baseline", base, "--threshold", "1.5"]) == 2


def scenario_stage(digest="abc", points=None):
    return {
        "scenario": "reputation-gamer",
        "scenario_digest": digest,
        "points": points
        if points is not None
        else [{"label": "hammerhead - 4 nodes @ 300 tx/s", "ordering_digest": "d1" * 32}],
    }


class TestScenarioStageComparison:
    def test_matching_scenario_stage_passes(self):
        doc = dict(document([fig1_point(4000.0, 1.0)]), scenario_adversary=scenario_stage())
        findings = check_regression.compare_documents(doc, doc, 0.10)
        assert not any(finding.fatal for finding in findings)

    def test_ordering_digest_change_is_fatal(self):
        base = dict(document([fig1_point(4000.0, 1.0)]), scenario_adversary=scenario_stage())
        fresh = dict(
            document([fig1_point(4000.0, 1.0)]),
            scenario_adversary=scenario_stage(
                points=[{"label": "hammerhead - 4 nodes @ 300 tx/s", "ordering_digest": "e2" * 32}]
            ),
        )
        findings = check_regression.compare_documents(fresh, base, 0.10)
        assert any(finding.fatal and "scenario_adversary" in finding.stage for finding in findings)

    def test_changed_scenario_definition_skips(self):
        base = dict(document([fig1_point(4000.0, 1.0)]), scenario_smoke=scenario_stage("old"))
        fresh = dict(
            document([fig1_point(4000.0, 1.0)]),
            scenario_smoke=scenario_stage(
                "new",
                points=[{"label": "hammerhead - 4 nodes @ 300 tx/s", "ordering_digest": "e2" * 32}],
            ),
        )
        findings = check_regression.compare_documents(fresh, base, 0.10)
        assert not any(finding.fatal for finding in findings)

    def test_skipped_stage_is_not_fatal(self):
        base = dict(document([fig1_point(4000.0, 1.0)]), scenario_adversary=scenario_stage())
        fresh = dict(
            document([fig1_point(4000.0, 1.0)]),
            scenario_adversary={"outcome": "skipped", "reason": "--skip-scenario"},
        )
        findings = check_regression.compare_documents(fresh, base, 0.10)
        assert not any(finding.fatal for finding in findings)


def calibrated(doc, cpu_score):
    out = dict(doc)
    out["calibration"] = {"cpu_score": cpu_score}
    return out


class TestCalibrationNormalization:
    def test_slower_host_passes_after_normalization(self):
        base = calibrated(document([fig1_point(4000.0, 100000.0)]), 1000.0)
        # Half-speed host, half the events/sec: raw -50%, normalized 0%.
        fresh = calibrated(document([fig1_point(4000.0, 50000.0)]), 500.0)
        findings = check_regression.compare_documents(fresh, base, 0.10)
        assert not any(finding.fatal for finding in findings)
        # Without calibration the same documents fail.
        raw = check_regression.compare_documents(fresh, base, 0.10, calibrate=False)
        assert any(finding.fatal for finding in raw)

    def test_real_regression_still_fails_on_slower_host(self):
        base = calibrated(document([fig1_point(4000.0, 100000.0)]), 1000.0)
        # Half-speed host but only a third of the events/sec: a genuine
        # ~33% regression after normalization.
        fresh = calibrated(document([fig1_point(4000.0, 33000.0)]), 500.0)
        findings = check_regression.compare_documents(fresh, base, 0.10)
        assert any(finding.fatal for finding in findings)

    def test_missing_calibration_falls_back_to_raw(self):
        base = document([fig1_point(4000.0, 100000.0)])
        fresh = calibrated(document([fig1_point(4000.0, 100000.0)]), 500.0)
        findings = check_regression.compare_documents(fresh, base, 0.10)
        assert not any(finding.fatal for finding in findings)
        assert any(
            finding.stage == "calibration" and "raw" in finding.message
            for finding in findings
        )

    def test_out_of_band_ratio_falls_back_to_raw(self):
        base = calibrated(document([fig1_point(4000.0, 100000.0)]), 1000.0)
        fresh = calibrated(document([fig1_point(4000.0, 100000.0)]), 10.0)
        assert check_regression.calibration_ratio(fresh, base) is None

    def test_calibration_ratio_in_band(self):
        base = calibrated({}, 1000.0)
        fresh = calibrated({}, 925.0)
        assert check_regression.calibration_ratio(fresh, base) == 0.925


def matrix_cell(attack, rule, digest, scenario_digest="s" * 64, label=None):
    return {
        "attack": attack,
        "rule": rule,
        "label": label or f"{attack}/{rule}",
        "scenario_digest": scenario_digest,
        "ordering_digest": digest,
    }


def with_matrix(doc, cells):
    out = dict(doc)
    out["scenario_matrix"] = {"cells": list(cells)}
    return out


class TestMatrixStageComparison:
    def _base_doc(self):
        return document([fig1_point(4000.0, 100000.0)])

    def test_matching_cells_pass(self):
        doc = with_matrix(
            self._base_doc(), [matrix_cell("gamer", "completeness", "a" * 64)]
        )
        findings = check_regression.compare_documents(doc, doc, 0.10)
        assert not any(finding.fatal for finding in findings)

    def test_cell_digest_change_is_fatal(self):
        base = with_matrix(
            self._base_doc(), [matrix_cell("gamer", "completeness", "a" * 64)]
        )
        fresh = with_matrix(
            self._base_doc(), [matrix_cell("gamer", "completeness", "b" * 64)]
        )
        findings = check_regression.compare_documents(fresh, base, 0.10)
        fatal = [finding for finding in findings if finding.fatal]
        assert fatal and "scenario_matrix:gamer/completeness" in fatal[0].stage

    def test_changed_attack_definition_skips_cell(self):
        base = with_matrix(
            self._base_doc(),
            [matrix_cell("gamer", "completeness", "a" * 64, scenario_digest="1" * 64)],
        )
        fresh = with_matrix(
            self._base_doc(),
            [matrix_cell("gamer", "completeness", "b" * 64, scenario_digest="2" * 64)],
        )
        findings = check_regression.compare_documents(fresh, base, 0.10)
        assert not any(finding.fatal for finding in findings)

    def test_missing_matrix_stage_skips(self):
        base = with_matrix(
            self._base_doc(), [matrix_cell("gamer", "completeness", "a" * 64)]
        )
        findings = check_regression.compare_documents(self._base_doc(), base, 0.10)
        assert not any(finding.fatal for finding in findings)
        assert any("scenario_matrix" in finding.stage for finding in findings)
