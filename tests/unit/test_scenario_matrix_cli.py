"""The attack x rule matrix module and its CLI surface (describe/matrix)."""

import json

import pytest

from repro.scenarios import get_scenario
from repro.scenarios.cli import main as cli_main
from repro.scenarios.matrix import (
    DEFAULT_MATRIX_ATTACKS,
    format_matrix_table,
    matrix_spec,
    run_matrix,
    summarize_matrix,
)


def run_cli(capsys, *argv):
    code = cli_main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def cell(attack, rule, demoted, count, first, label=None, digest="a" * 64):
    return {
        "attack": attack,
        "rule": rule,
        "label": label or f"{attack}/{rule}",
        "scenario_digest": "s" * 64,
        "ordering_digest": digest,
        "culprits_demoted": demoted,
        "culprit_count": count,
        "first_demotion_round": first,
    }


class TestMatrixAssembly:
    def test_default_attacks_exist_in_registry(self):
        for attack in DEFAULT_MATRIX_ATTACKS:
            assert get_scenario(attack)

    def test_matrix_spec_restricts_protocols_and_sets_axis(self):
        spec = matrix_spec("reputation-gamer", ("hammerhead", "completeness"))
        assert spec.protocols == ("hammerhead",)
        assert spec.scoring_rules == ("hammerhead", "completeness")

    def test_summary_keeps_sharpest_verdict(self):
        cells = [
            cell("a", "r", 0, 3, None),
            cell("a", "r", 3, 3, 42),
            cell("a", "r", 3, 3, 22),
        ]
        assert summarize_matrix(cells) == {"a": {"r": "3/3@22"}}

    def test_summary_never_demoted_has_no_round(self):
        assert summarize_matrix([cell("a", "r", 0, 2, None)]) == {"a": {"r": "0/2"}}

    def test_format_table_lists_every_attack_and_rule(self):
        document = {
            "attacks": ["a", "b"],
            "rules": ["hammerhead", "completeness"],
            "summary": {"a": {"hammerhead": "1/1@22"}},
        }
        table = format_matrix_table(document)
        assert "hammerhead" in table and "completeness" in table
        assert "1/1@22" in table
        # Missing cells render as '-'.
        assert "-" in table.splitlines()[-1]

    def test_run_matrix_smoke_produces_cells_and_summary(self):
        document = run_matrix(
            attacks=("reputation-gamer",),
            rules=("hammerhead", "completeness"),
            smoke=True,
            parallelism=1,
        )
        assert document["attacks"] == ["reputation-gamer"]
        assert document["rules"] == ["hammerhead", "completeness"]
        assert len(document["cells"]) == 2
        for matrix_cell in document["cells"]:
            assert matrix_cell["ordering_digest"]
            assert matrix_cell["rule"] in ("hammerhead", "completeness")
            assert matrix_cell["rounds_until_demotion"]
        assert "reputation-gamer" in document["summary"]
        assert "reputation-gamer" in document["row_digests"]


class TestMatrixCli:
    def test_matrix_subcommand_writes_artifact(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        out_path = tmp_path / "matrix.json"
        code, out, err = run_cli(
            capsys,
            "matrix",
            "--smoke",
            "--attacks",
            "reputation-gamer",
            "--rules",
            "hammerhead",
            "--parallelism",
            "1",
            "--output",
            str(out_path),
        )
        assert code == 0
        assert "attack \\ rule" in out
        document = json.loads(out_path.read_text())
        assert document["matrix_version"] == 1
        assert document["smoke"] is True

    def test_unknown_rule_exits_nonzero_on_stderr(self, capsys):
        code, out, err = run_cli(
            capsys, "matrix", "--rules", "not-a-rule", "--attacks", "reputation-gamer"
        )
        assert code != 0
        assert "unknown scoring rule" in err

    def test_unknown_attack_exits_nonzero_on_stderr(self, capsys):
        code, out, err = run_cli(capsys, "matrix", "--attacks", "not-a-scenario")
        assert code != 0
        assert "unknown scenario" in err


class TestDescribeRendering:
    def test_describe_renders_scoring_rule(self, capsys):
        code, out, err = run_cli(capsys, "describe", "reputation-gamer")
        assert code == 0
        assert "scoring rule: hammerhead" in out

    def test_describe_renders_coalition_fault_kinds(self, capsys):
        for name, marker in (
            ("adaptive-dos", "adaptive leader DoS"),
            ("colluding-silence", "colluding silence"),
            ("coalition-gaming", "coalition reputation gaming"),
            ("adaptive-equivocation", "adaptive equivocation"),
        ):
            code, out, err = run_cli(capsys, "describe", name)
            assert code == 0, name
            assert marker in out, name
            if name != "adaptive-equivocation":
                assert "coordinated coalition" in out, name

    def test_describe_renders_scoring_axis(self, capsys, tmp_path):
        spec = get_scenario("reputation-gamer").with_overrides(
            scoring_rules=("hammerhead", "completeness")
        )
        path = tmp_path / "axis.json"
        path.write_text(spec.to_json())
        code, out, err = run_cli(capsys, "describe", "--spec", str(path))
        assert code == 0
        assert "scoring-rule sweep axis: hammerhead, completeness" in out
        assert "[scoring completeness]" in out

    def test_unknown_scoring_rule_in_spec_exits_nonzero(self, capsys, tmp_path):
        data = get_scenario("reputation-gamer").to_dict()
        data["scoring"] = "not-a-rule"
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(data))
        code, out, err = run_cli(capsys, "describe", "--spec", str(path))
        assert code != 0
        assert out == ""
        assert "unknown scoring rule" in err
