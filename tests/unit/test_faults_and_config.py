"""Unit tests for fault plans, node configuration, and experiment presets."""

import pytest

from repro.committee import Committee
from repro.errors import ConfigurationError
from repro.faults.base import FaultInjector
from repro.faults.byzantine import VoteWithholdingFault
from repro.faults.crash import CrashFault, CrashRecoveryFault, crash_last_f
from repro.faults.slow import SlowValidatorFault, degrade_fraction
from repro.node.config import NodeConfig
from repro.sim.experiment import ExperimentConfig
from repro.sim.presets import (
    MAINNET_COMMITS_PER_SCHEDULE,
    PAPER_COMMITS_PER_SCHEDULE,
    execution_capacity_for,
    node_config_for,
    paper_committee_sizes,
    paper_fault_counts,
)


class TestCrashFaultPlans:
    def test_crash_last_f_defaults_to_max_faulty(self, committee10):
        plan = crash_last_f(committee10)
        assert len(plan.validators) == 3
        assert set(plan.validators) == {9, 8, 7}

    def test_crash_last_f_protects_observer(self, committee10):
        plan = crash_last_f(committee10, faults=3, protect=(9, 8))
        assert 9 not in plan.validators
        assert 8 not in plan.validators
        assert len(plan.validators) == 3

    def test_crash_last_f_rejects_too_many(self, committee10):
        with pytest.raises(ValueError):
            crash_last_f(committee10, faults=4)

    def test_paper_fault_counts_match_max_faulty(self):
        for size, faults in paper_fault_counts().items():
            assert Committee.build(size).max_faulty == faults

    def test_crash_recovery_requires_later_recovery(self):
        with pytest.raises(ValueError):
            CrashRecoveryFault(validators=(1,), crash_at=5.0, recover_at=5.0)

    def test_fault_descriptions(self):
        assert "crash" in CrashFault(validators=(1, 2), at_time=3.0).describe()
        assert "recover" in CrashRecoveryFault(validators=(1,), crash_at=1.0, recover_at=2.0).describe()
        assert "slow" in SlowValidatorFault(validators=(1,), extra_delay=0.2).describe()
        assert "withholding" in VoteWithholdingFault(validators=(2,)).describe()


class TestSlowFaultPlans:
    def test_degrade_fraction_selects_expected_count(self, committee10):
        plan = degrade_fraction(committee10, fraction=0.10)
        assert len(plan.validators) == 1
        plan = degrade_fraction(committee10, fraction=0.30)
        assert len(plan.validators) == 3

    def test_degrade_fraction_protects_observer(self, committee10):
        plan = degrade_fraction(committee10, fraction=0.2, protect=(9,))
        assert 9 not in plan.validators


class TestFaultInjector:
    def test_affected_validators_deduplicated(self, committee10):
        injector = FaultInjector(
            [CrashFault(validators=(1, 2)), SlowValidatorFault(validators=(2, 3))]
        )
        assert injector.affected_validators() == [1, 2, 3]

    def test_describe_lists_all_plans(self, committee10):
        injector = FaultInjector([CrashFault(validators=(1,))])
        injector.add(SlowValidatorFault(validators=(2,)))
        description = injector.describe()
        assert "crash" in description and "slow" in description

    def test_empty_injector(self):
        assert FaultInjector().describe() == "no faults"
        assert FaultInjector().affected_validators() == []


class TestNodeConfig:
    def test_defaults_validate(self):
        assert NodeConfig().validate() is not None

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(max_batch_size=-1).validate()
        with pytest.raises(ConfigurationError):
            NodeConfig(leader_timeout=-1.0).validate()
        with pytest.raises(ConfigurationError):
            NodeConfig(broadcast="gossip").validate()
        with pytest.raises(ConfigurationError):
            NodeConfig(max_round=0).validate()
        with pytest.raises(ConfigurationError):
            NodeConfig(fetch_retry_interval=0.0).validate()

    def test_scaled_for_committee_increases_round_interval(self):
        base = NodeConfig()
        scaled = base.scaled_for_committee(100)
        assert scaled.min_round_interval > base.min_round_interval
        assert scaled.max_batch_size == base.max_batch_size

    def test_scaled_for_committee_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            NodeConfig().scaled_for_committee(0)


class TestPresets:
    def test_paper_committee_sizes(self):
        assert paper_committee_sizes() == [10, 50, 100]

    def test_schedule_parameters_match_paper_and_mainnet(self):
        assert PAPER_COMMITS_PER_SCHEDULE == 10
        assert MAINNET_COMMITS_PER_SCHEDULE == 300

    def test_execution_capacity_decreases_with_committee_size(self):
        assert execution_capacity_for(10) > execution_capacity_for(100)
        assert execution_capacity_for(1000) >= 1500.0

    def test_node_config_for_larger_committee_has_slower_rounds_smaller_batches(self):
        small = node_config_for(10)
        large = node_config_for(100)
        assert large.min_round_interval > small.min_round_interval
        assert large.max_batch_size < small.max_batch_size

    def test_node_config_batch_can_carry_capacity_with_f_crashed(self):
        # 2f+1 alive validators must be able to include the execution
        # capacity: this is what makes claim C3 possible.
        for size in paper_committee_sizes():
            config = node_config_for(size)
            alive = size - (size - 1) // 3
            wave = 2.0 * (config.min_round_interval + 0.15)
            inclusion = alive * config.max_batch_size / wave
            assert inclusion >= execution_capacity_for(size)


class TestExperimentConfig:
    def test_defaults_validate(self):
        assert ExperimentConfig().validate() is not None

    def test_invalid_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(protocol="pbft").validate()

    def test_fault_count_bounded_by_committee(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(committee_size=10, faults=4).validate()
        assert ExperimentConfig(committee_size=10, faults=3).validate()

    def test_warmup_must_fit_duration(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(duration=10.0, warmup=10.0).validate()

    def test_observer_must_be_member(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(committee_size=4, observer=4).validate()

    def test_unknown_scoring_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(scoring="random").validate()

    def test_seed_range_enforced(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(seed=5000).validate()

    def test_with_overrides_creates_modified_copy(self):
        base = ExperimentConfig(committee_size=10)
        changed = base.with_overrides(protocol="bullshark", input_load_tps=2000.0)
        assert changed.protocol == "bullshark"
        assert changed.input_load_tps == 2000.0
        assert base.protocol == "hammerhead"

    def test_label_mentions_faults_and_load(self):
        label = ExperimentConfig(committee_size=10, faults=3, input_load_tps=500).label()
        assert "3 faulty" in label
        assert "500" in label


class TestPartitionFaultPlans:
    def test_partition_plan_windows_the_partition(self, committee10):
        from repro.faults.partition import PartitionPlan
        from repro.network.latency import UniformLatencyModel
        from repro.network.simulator import Simulator
        from repro.network.transport import Network

        simulator = Simulator(seed=1)
        network = Network(simulator, latency_model=UniformLatencyModel(0.01, jitter=0.0))
        for validator in committee10.validators:
            network.register(validator, committee10.region_of(validator), lambda s, m: None)
        plan = PartitionPlan(groups=((7, 8, 9),), start=1.0, end=2.0)
        plan.schedule(simulator, network, {})
        assert not network.partitioned
        simulator.run(until=1.5)
        assert network.partitioned
        simulator.run(until=2.5)
        assert not network.partitioned

    def test_partition_plan_rejects_overlap_and_bad_window(self):
        from repro.faults.partition import PartitionPlan

        with pytest.raises(ValueError):
            PartitionPlan(groups=((1, 2), (2, 3)))
        with pytest.raises(ValueError):
            PartitionPlan(groups=((1,),), start=5.0, end=5.0)

    def test_isolate_tail_fraction_protects_observer(self, committee10):
        from repro.faults.partition import isolate_tail_fraction

        plan = isolate_tail_fraction(committee10, fraction=0.3, start=1.0, end=2.0)
        (minority,) = plan.groups
        assert 0 not in minority
        assert len(minority) == 3
        assert "partition" in plan.describe()

    def test_disturbance_windows_jitter_and_loss(self, committee10):
        from repro.faults.partition import NetworkDisturbanceFault
        from repro.network.latency import UniformLatencyModel
        from repro.network.simulator import Simulator
        from repro.network.transport import Network

        simulator = Simulator(seed=1)
        network = Network(simulator, latency_model=UniformLatencyModel(0.01, jitter=0.0))
        plan = NetworkDisturbanceFault(jitter=0.2, loss_rate=0.1, start=1.0, end=2.0)
        plan.schedule(simulator, network, {})
        simulator.run(until=1.5)
        assert network._jitter == pytest.approx(0.2)
        assert network._loss_rate == pytest.approx(0.1)
        simulator.run(until=2.5)
        assert network._jitter == 0.0
        assert network._loss_rate == 0.0

    def test_disturbance_validates_parameters(self):
        from repro.faults.partition import NetworkDisturbanceFault

        with pytest.raises(ValueError):
            NetworkDisturbanceFault(loss_rate=1.0)
        with pytest.raises(ValueError):
            NetworkDisturbanceFault(jitter=-0.1)
        with pytest.raises(ValueError):
            NetworkDisturbanceFault(jitter=0.1, start=3.0, end=3.0)
