"""Unit tests for schedule-change policies and next-schedule computation."""

import pytest

from repro.committee import Committee, geometric_stake
from repro.core.schedule_change import (
    CommitCountPolicy,
    RoundBasedPolicy,
    compute_next_schedule,
    select_swap_sets,
)
from repro.core.scores import ReputationScores
from repro.errors import ScheduleError
from repro.schedule.base import LeaderSchedule


class TestPolicies:
    def test_commit_count_policy_triggers_at_threshold(self):
        policy = CommitCountPolicy(10)
        schedule = LeaderSchedule(epoch=0, initial_round=2, slots=(0, 1))
        assert not policy.should_change(9, 20, schedule)
        assert policy.should_change(10, 20, schedule)
        assert policy.should_change(11, 20, schedule)

    def test_commit_count_policy_ignores_rounds(self):
        policy = CommitCountPolicy(5)
        schedule = LeaderSchedule(epoch=0, initial_round=2, slots=(0,))
        assert not policy.should_change(1, 1000, schedule)

    def test_commit_count_policy_rejects_non_positive(self):
        with pytest.raises(ScheduleError):
            CommitCountPolicy(0)

    def test_round_based_policy_triggers_after_T_rounds(self):
        policy = RoundBasedPolicy(20)
        schedule = LeaderSchedule(epoch=0, initial_round=10, slots=(0,))
        assert not policy.should_change(100, 28, schedule)
        assert policy.should_change(0, 30, schedule)
        assert policy.should_change(0, 31, schedule)

    def test_round_based_policy_rejects_non_positive(self):
        with pytest.raises(ScheduleError):
            RoundBasedPolicy(0)

    def test_policies_describe_themselves(self):
        assert "10" in CommitCountPolicy(10).describe()
        assert "20" in RoundBasedPolicy(20).describe()


class TestSwapSelection:
    def test_bottom_and_top_are_selected(self, committee10):
        scores = ReputationScores(committee10)
        for validator in committee10.validators:
            scores.add(validator, float(validator))  # validator i has score i
        demoted, promoted = select_swap_sets(scores, committee10, exclude_fraction=1 / 3)
        assert demoted == [0, 1, 2]
        assert promoted == [9, 8, 7]

    def test_sets_are_equal_size_and_disjoint(self, committee10):
        scores = ReputationScores(committee10)
        scores.add(5, 3.0)
        demoted, promoted = select_swap_sets(scores, committee10)
        assert len(demoted) == len(promoted)
        assert not set(demoted) & set(promoted)

    def test_stake_budget_respected_with_weighted_stake(self):
        committee = Committee.build(4, stake=geometric_stake(4, ratio=0.5, scale=8))
        # Stakes: 8, 4, 2, 1 (total 15).  Budget of one third (5 stake).
        scores = ReputationScores(committee)
        scores.add(0, -1.0)  # the heavy validator performs worst
        demoted, promoted = select_swap_sets(scores, committee, exclude_fraction=1 / 3)
        # Validator 0 holds 8 stake > 5 budget, so it cannot be demoted;
        # the two cheapest low scorers that fit are selected instead.
        assert 0 not in demoted
        assert committee.stake(demoted) <= 5

    def test_zero_fraction_changes_nothing(self, committee10):
        scores = ReputationScores(committee10)
        demoted, promoted = select_swap_sets(scores, committee10, exclude_fraction=0.0)
        assert demoted == [] and promoted == []

    def test_invalid_fraction_rejected(self, committee10):
        with pytest.raises(ScheduleError):
            select_swap_sets(ReputationScores(committee10), committee10, exclude_fraction=1.0)


class TestComputeNextSchedule:
    def _scores(self, committee, low, high):
        scores = ReputationScores(committee)
        for validator in committee.validators:
            if validator in low:
                scores.add(validator, 0.0)
            elif validator in high:
                scores.add(validator, 10.0)
            else:
                scores.add(validator, 5.0)
        return scores

    def test_low_scorers_lose_slots_to_high_scorers(self, committee10):
        previous = LeaderSchedule(epoch=0, initial_round=2, slots=tuple(range(10)))
        scores = self._scores(committee10, low={0, 1, 2}, high={7, 8, 9})
        next_schedule = compute_next_schedule(previous, scores, committee10, new_initial_round=22)
        assert next_schedule.epoch == 1
        assert next_schedule.initial_round == 22
        # The demoted validators hold no slots any more.
        counts = next_schedule.slot_counts()
        assert counts.get(0, 0) == 0
        assert counts.get(1, 0) == 0
        assert counts.get(2, 0) == 0
        # The promoted validators doubled their representation.
        assert counts[7] == 2
        assert counts[8] == 2
        assert counts[9] == 2
        # Everyone else keeps exactly one slot.
        assert all(counts[validator] == 1 for validator in range(3, 7))

    def test_total_slot_count_is_preserved(self, committee10):
        previous = LeaderSchedule(epoch=0, initial_round=2, slots=tuple(range(10)))
        scores = self._scores(committee10, low={4}, high={5})
        next_schedule = compute_next_schedule(previous, scores, committee10, new_initial_round=30)
        assert len(next_schedule.slots) == len(previous.slots)

    def test_promotion_is_round_robin_over_good_set(self, committee10):
        # Two slots of the same bad validator are replaced by two different
        # good validators in turn.
        previous = LeaderSchedule(
            epoch=0, initial_round=2, slots=(0, 0, 1, 2, 3, 4, 5, 6, 7, 8)
        )
        scores = self._scores(committee10, low={0, 1, 2}, high={7, 8, 9})
        next_schedule = compute_next_schedule(previous, scores, committee10, new_initial_round=22)
        replaced = next_schedule.slots[:2]
        assert replaced[0] != replaced[1]
        assert set(replaced) <= {7, 8, 9}

    def test_new_schedule_must_start_later(self, committee10):
        previous = LeaderSchedule(epoch=0, initial_round=10, slots=tuple(range(10)))
        scores = ReputationScores(committee10)
        with pytest.raises(ScheduleError):
            compute_next_schedule(previous, scores, committee10, new_initial_round=10)

    def test_new_schedule_must_start_on_anchor_round(self, committee10):
        previous = LeaderSchedule(epoch=0, initial_round=2, slots=tuple(range(10)))
        with pytest.raises(ScheduleError):
            compute_next_schedule(
                previous, ReputationScores(committee10), committee10, new_initial_round=7
            )

    def test_equal_scores_still_produce_valid_schedule(self, committee10):
        # With all-equal scores ties are broken by id; the schedule remains
        # a valid permutation of the same multiset size.
        previous = LeaderSchedule(epoch=0, initial_round=2, slots=tuple(range(10)))
        scores = ReputationScores(committee10)
        next_schedule = compute_next_schedule(previous, scores, committee10, new_initial_round=22)
        assert len(next_schedule.slots) == 10
        assert set(next_schedule.slots) <= set(committee10.validators)

    def test_crashed_validators_with_zero_score_are_excluded(self, committee10):
        # Validators 7, 8, 9 crashed (score 0); everyone else scored 10.
        previous = LeaderSchedule(epoch=0, initial_round=2, slots=tuple(range(10)))
        scores = self._scores(committee10, low={7, 8, 9}, high=set(range(7)))
        next_schedule = compute_next_schedule(previous, scores, committee10, new_initial_round=22)
        for crashed in (7, 8, 9):
            assert next_schedule.slots_of(crashed) == 0
