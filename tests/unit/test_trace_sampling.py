"""Unit tests for trace sampling (``MemoryTracer(sample_every=N)``).

Sampling thins the event stream at the emit site: the first event of
every stride of N survives, the other N-1 are counted in
``sampled_out`` and never allocated.  It composes with the ring bound
(``max_events``), and exports carry a ``trace_sampled`` marker so JSONL
consumers can tell a thinned trace from a complete one.
"""

import pytest

from repro.obs.trace import MemoryTracer
from repro.sim.experiment import ExperimentConfig


def fill(tracer, count, start=0):
    for index in range(start, start + count):
        tracer.emit("vertex_inserted", round=index, source=0)


class TestSampling:
    def test_keeps_first_of_every_stride(self):
        tracer = MemoryTracer(sample_every=3)
        fill(tracer, 10)
        kept = [event["round"] for event in tracer.events]
        assert kept == [0, 3, 6, 9]
        assert tracer.sampled_out == 6

    def test_sample_every_one_keeps_everything(self):
        tracer = MemoryTracer(sample_every=1)
        fill(tracer, 7)
        assert len(tracer.events) == 7
        assert tracer.sampled_out == 0

    def test_none_keeps_everything(self):
        tracer = MemoryTracer()
        fill(tracer, 7)
        assert len(tracer.events) == 7
        assert tracer.sampled_out == 0

    def test_rejects_non_positive_stride(self):
        with pytest.raises(ValueError):
            MemoryTracer(sample_every=0)
        with pytest.raises(ValueError):
            MemoryTracer(sample_every=-2)

    def test_composes_with_ring_bound(self):
        """The ring bound applies to the already-sampled stream: a
        sampled run keeps the newest window of the cross-section."""
        tracer = MemoryTracer(max_events=3, sample_every=2)
        fill(tracer, 12)  # samples rounds 0,2,4,6,8,10; ring keeps last 3
        assert [event["round"] for event in tracer.events] == [6, 8, 10]
        assert tracer.sampled_out == 6
        assert tracer.dropped == 3


class TestExportMarkers:
    def test_sampled_export_carries_marker_first(self):
        tracer = MemoryTracer(sample_every=2)
        fill(tracer, 6)
        exported = tracer.export_events()
        marker = exported[0]
        assert marker["kind"] == "trace_sampled"
        assert marker["sample_every"] == 2
        assert marker["sampled_out"] == 3
        assert marker["kept"] == 3
        assert marker["t"] == exported[1]["t"]
        assert [event["kind"] for event in exported[1:]] == ["vertex_inserted"] * 3

    def test_truncation_marker_precedes_sampling_marker(self):
        tracer = MemoryTracer(max_events=2, sample_every=2)
        fill(tracer, 10)
        exported = tracer.export_events()
        assert [event["kind"] for event in exported[:2]] == [
            "trace_truncated",
            "trace_sampled",
        ]
        first_retained_t = exported[2]["t"]
        assert exported[0]["t"] == first_retained_t
        assert exported[1]["t"] == first_retained_t

    def test_unsampled_export_has_no_marker(self):
        for tracer in (MemoryTracer(), MemoryTracer(sample_every=1)):
            fill(tracer, 4)
            assert all(
                event["kind"] != "trace_sampled" for event in tracer.export_events()
            )


class TestConfigPlumbing:
    def test_config_rejects_non_positive_stride(self):
        from repro.errors import ConfigurationError

        ExperimentConfig(trace=True, trace_sample_every=4).validate()
        ExperimentConfig(trace=True, trace_sample_every=None).validate()
        for stride in (0, -3):
            with pytest.raises(ConfigurationError, match="trace_sample_every"):
                ExperimentConfig(trace=True, trace_sample_every=stride).validate()

    def test_sampled_run_thins_the_stream(self):
        from repro.sim.runner import SimulationRunner

        base = ExperimentConfig(
            committee_size=4,
            faults=0,
            input_load_tps=200.0,
            duration=4.0,
            warmup=1.0,
            seed=5,
            trace=True,
        )
        full = SimulationRunner(base)
        full.run()
        sampled = SimulationRunner(base.with_overrides(trace_sample_every=4))
        sampled.run()
        assert len(sampled.tracer.events) < len(full.tracer.events)
        assert sampled.tracer.sampled_out > 0
        # The sampled stream is a subset cross-section of the full one.
        full_events = {
            (event["kind"], event["t"], event.get("round"), event.get("source"))
            for event in full.tracer.events
        }
        for event in sampled.tracer.events:
            key = (event["kind"], event["t"], event.get("round"), event.get("source"))
            assert key in full_events
