"""Scenario CLI exit-code guarantees and the artifact diff subcommand."""

import json

import pytest

from repro.scenarios import get_scenario
from repro.scenarios.cli import main as cli_main
from repro.scenarios.diff import (
    DIFF_MATCH,
    DIFF_MISMATCH,
    diff_artifacts,
    load_artifact,
)
from repro.errors import ConfigurationError

from tests.cli_contract import assert_error_contract


def artifact(scenario_digest="d" * 64, points=(), spec=None):
    return {
        "artifact_version": 1,
        "scenario": dict(spec or {"name": "x", "seed": 2}),
        "scenario_digest": scenario_digest,
        "seeds": [2],
        "points": list(points),
    }


def point(label="p", seed=2, digest="a" * 64, ordered=10, throughput=100.0):
    return {
        "committee_size": 4,
        "protocol": "hammerhead",
        "load": 100.0,
        "seed": seed,
        "label": label,
        "report": {"throughput_tps": throughput, "avg_latency_s": 1.0},
        "ordering_digest": digest,
        "ordered_count": ordered,
    }


class TestCliExitCodes:
    """Invalid ``--spec`` files: non-zero exit, stderr message, clean stdout."""

    def test_missing_spec_file(self, capsys, tmp_path):
        assert_error_contract(
            cli_main,
            capsys,
            "run",
            "--spec",
            str(tmp_path / "nope.json"),
            match="cannot read spec file",
        )

    def test_malformed_json_spec(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert_error_contract(cli_main, capsys, "run", "--spec", str(path))

    def test_schema_invalid_spec(self, capsys, tmp_path):
        spec = get_scenario("faultless").to_dict()
        spec["committee_sizes"] = "not-a-list"
        path = tmp_path / "invalid.json"
        path.write_text(json.dumps(spec))
        assert_error_contract(cli_main, capsys, "describe", "--spec", str(path))

    def test_unknown_scenario_name(self, capsys):
        assert_error_contract(cli_main, capsys, "describe", "definitely-not-registered")

    def test_diff_unreadable_artifact(self, capsys, tmp_path):
        good = tmp_path / "a.json"
        good.write_text(json.dumps(artifact()))
        assert_error_contract(
            cli_main, capsys, "diff", str(good), str(tmp_path / "missing.json")
        )


class TestDiffArtifacts:
    def test_identical_artifacts_match(self):
        left = artifact(points=[point()])
        code, lines = diff_artifacts(left, json.loads(json.dumps(left)))
        assert code == DIFF_MATCH
        assert any("[OK]" in line for line in lines)

    def test_ordering_divergence_is_a_mismatch(self):
        left = artifact(points=[point(digest="a" * 64)])
        right = artifact(points=[point(digest="b" * 64, throughput=90.0)])
        code, lines = diff_artifacts(left, right)
        assert code == DIFF_MISMATCH
        text = "\n".join(lines)
        assert "[DIVERGED]" in text
        assert "throughput_tps" in text  # per-point delta reported

    def test_missing_point_is_a_mismatch(self):
        left = artifact(points=[point(label="a"), point(label="b")])
        right = artifact(points=[point(label="a")])
        code, lines = diff_artifacts(left, right)
        assert code == DIFF_MISMATCH
        assert any("[MISSING]" in line for line in lines)

    def test_different_scenario_digests_explain_spec(self):
        left = artifact(spec={"name": "x", "seed": 2})
        right = artifact(scenario_digest="e" * 64, spec={"name": "x", "seed": 9})
        code, lines = diff_artifacts(left, right)
        assert code == DIFF_MISMATCH
        text = "\n".join(lines)
        assert "scenario digests differ" in text
        assert "seed: 2 -> 9" in text

    def test_nested_spec_difference_reported(self):
        left = artifact(spec={"name": "x", "workload": {"shape": "constant"}})
        right = artifact(
            scenario_digest="e" * 64,
            spec={"name": "x", "workload": {"shape": "burst"}},
        )
        code, lines = diff_artifacts(left, right)
        assert code == DIFF_MISMATCH
        assert any("workload.shape" in line for line in lines)

    def test_prefix_mode_accepts_consistent_divergence(self):
        """Two runs that diverge after a loss window but agree on every
        aligned checkpoint pass in prefix mode (strict mode fails)."""
        checkpoints = [[64, "c" * 64], [128, "d" * 64]]
        left_point = dict(point(digest="a" * 64, ordered=150))
        right_point = dict(point(digest="b" * 64, ordered=170))
        left_point["ordering_checkpoints"] = checkpoints
        right_point["ordering_checkpoints"] = checkpoints
        left = artifact(points=[left_point])
        right = artifact(points=[right_point])
        assert diff_artifacts(left, right)[0] == DIFF_MISMATCH
        code, lines = diff_artifacts(left, right, prefix=True, min_prefix=64)
        assert code == DIFF_MATCH
        assert any("[OK]" in line and "consistent" in line for line in lines)

    def test_prefix_mode_gates_on_min_prefix(self):
        """A genuine checkpoint contradiction below min_prefix fails."""
        left_point = dict(point(digest="a" * 64, ordered=150))
        right_point = dict(point(digest="b" * 64, ordered=170))
        left_point["ordering_checkpoints"] = [[64, "c" * 64], [128, "d" * 64]]
        right_point["ordering_checkpoints"] = [[64, "c" * 64], [128, "X" * 64]]
        left = artifact(points=[left_point])
        right = artifact(points=[right_point])
        code, lines = diff_artifacts(left, right, prefix=True, min_prefix=64)
        assert code == DIFF_MATCH
        assert any("[PREFIX]" in line for line in lines)
        code, lines = diff_artifacts(left, right, prefix=True, min_prefix=100)
        assert code == DIFF_MISMATCH
        assert any("[DIVERGED]" in line for line in lines)

    def test_prefix_mode_tolerates_spec_differences(self):
        """Prefix mode exists to compare *different* scenarios (piggyback
        on vs off): scenario digests may differ without failing."""
        shared = dict(point(digest="a" * 64))
        left = artifact(spec={"name": "x", "certificate_piggyback": False},
                        points=[shared])
        right = artifact(scenario_digest="e" * 64,
                         spec={"name": "x", "certificate_piggyback": True},
                         points=[json.loads(json.dumps(shared))])
        code, lines = diff_artifacts(left, right, prefix=True)
        assert code == DIFF_MATCH
        text = "\n".join(lines)
        assert "allowed in prefix mode" in text
        assert "certificate_piggyback" in text

    def test_load_artifact_rejects_junk(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"some": "document"}))
        with pytest.raises(ConfigurationError):
            load_artifact(str(path))
