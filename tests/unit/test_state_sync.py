"""Unit tests for the state-sync building blocks (fast forward, pending
reconsideration, sweep helpers)."""

import pytest

from repro.dag.store import DagStore
from repro.dag.vertex import genesis_vertices, make_vertex
from repro.sim.experiment import ExperimentConfig
from repro.sim.sweep import (
    compare_systems,
    curve_points,
    latency_at_peak,
    latency_throughput_curve,
    peak_throughput,
    reports_of,
)
from tests.conftest import make_consensus, drive_rounds, vid


class TestConsensusFastForward:
    def test_fast_forward_moves_last_ordered_round(self, committee4):
        consensus = make_consensus(committee4)
        new_round = consensus.fast_forward(100)
        assert new_round == 100
        assert consensus.last_ordered_anchor_round == 100
        assert consensus.state_sync_gaps == [(0, 100)]

    def test_fast_forward_rounds_up_to_even(self, committee4):
        consensus = make_consensus(committee4)
        assert consensus.fast_forward(101) == 102

    def test_fast_forward_never_goes_backwards(self, committee4):
        consensus = make_consensus(committee4)
        drive_rounds(consensus, committee4, rounds=9)
        before = consensus.last_ordered_anchor_round
        assert consensus.fast_forward(2) is None
        assert consensus.last_ordered_anchor_round == before

    def test_ordering_resumes_after_fast_forward(self, committee4):
        consensus = make_consensus(committee4)
        consensus.fast_forward(4)
        # Rounds 1..4 below the sync point never arrive; the DAG keeps
        # growing from round 5 as if they had been pruned.
        consensus.dag.garbage_collect(5)
        from tests.conftest import build_round

        # Round-5 vertices reference round-4 parents that were pruned
        # everywhere; the GC horizon treats them as present.
        frontier = [
            make_vertex(5, source, edges=[vid(4, 0), vid(4, 1), vid(4, 2)])
            for source in committee4.validators
        ]
        for vertex in frontier:
            consensus.dag.add(vertex)
            consensus.process_vertex(vertex)
        for round_number in range(6, 10):
            for vertex in build_round(consensus.dag, committee4, round_number):
                consensus.process_vertex(vertex)
        assert consensus.commit_count > 0
        assert consensus.last_ordered_anchor_round >= 6


class TestReconsiderPending:
    def test_pending_promoted_after_horizon_moves(self, committee4):
        dag = DagStore(committee4)
        for vertex in genesis_vertices(committee4):
            dag.add(vertex)
        # A vertex at round 5 whose parents (round 4) we will never receive.
        orphan = make_vertex(5, 0, edges=[vid(4, 0), vid(4, 1), vid(4, 2)])
        assert dag.add(orphan) is False
        assert dag.pending_count == 1
        # garbage_collect itself re-evaluates the pending buffer, so the
        # orphan is promoted without an explicit reconsider_pending() call.
        dag.garbage_collect(before_round=5)
        assert orphan.id in dag
        assert dag.pending_count == 0
        assert dag.reconsider_pending() == 0

    def test_reconsider_without_horizon_change_is_noop(self, committee4):
        dag = DagStore(committee4)
        for vertex in genesis_vertices(committee4):
            dag.add(vertex)
        orphan = make_vertex(2, 0, edges=[vid(1, 0), vid(1, 1), vid(1, 2)])
        dag.add(orphan)
        assert dag.reconsider_pending() == 0
        assert dag.pending_count == 1


class TestSweepHelpers:
    @pytest.fixture(scope="class")
    def tiny_results(self):
        config = ExperimentConfig(
            committee_size=4,
            input_load_tps=100.0,
            duration=10.0,
            warmup=2.0,
            latency_model="uniform",
            min_round_interval=0.10,
            leader_timeout=1.0,
            seed=8,
        )
        return latency_throughput_curve(config, loads=[50.0, 100.0])

    def test_curve_has_one_result_per_load(self, tiny_results):
        assert len(tiny_results) == 2
        assert tiny_results[0].config.input_load_tps == 50.0
        assert tiny_results[1].config.input_load_tps == 100.0

    def test_curve_points_match_reports(self, tiny_results):
        points = curve_points(tiny_results)
        assert len(points) == 2
        for (throughput, latency), result in zip(points, tiny_results):
            assert throughput == result.throughput
            assert latency == result.avg_latency

    def test_peak_throughput_and_latency_at_peak(self, tiny_results):
        peak = peak_throughput(tiny_results)
        assert peak == max(result.throughput for result in tiny_results)
        assert latency_at_peak(tiny_results) > 0.0

    def test_reports_of(self, tiny_results):
        reports = reports_of(tiny_results)
        assert len(reports) == 2
        assert all(report.committee_size == 4 for report in reports)

    def test_empty_sweep_helpers(self):
        assert peak_throughput([]) == 0.0
        assert latency_at_peak([]) == 0.0

    def test_compare_systems_covers_both_protocols(self):
        config = ExperimentConfig(
            committee_size=4,
            input_load_tps=80.0,
            duration=8.0,
            warmup=2.0,
            latency_model="uniform",
            min_round_interval=0.10,
            leader_timeout=1.0,
            seed=9,
        )
        curves = compare_systems(config, loads=[80.0])
        assert set(curves) == {"hammerhead", "bullshark"}
        assert all(len(results) == 1 for results in curves.values())
