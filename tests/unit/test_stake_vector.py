"""Unit tests for the vectorized stake helpers (the quorum hot path)."""

import pytest

from repro.committee import Committee
from repro.committee.stake import StakeVector, geometric_stake, zipfian_stake
from repro.errors import CommitteeError


class TestStakeVector:
    def test_totals_and_thresholds_match_committee(self):
        for stake in (None, geometric_stake(7), zipfian_stake(7)):
            committee = Committee.build(7, stake=stake)
            vector = committee.stake_vector
            assert vector.total == committee.total_stake
            assert vector.quorum == committee.quorum_threshold
            assert vector.validity == committee.validity_threshold
            assert vector.stakes == tuple(
                committee.stake_of(validator) for validator in committee.validators
            )

    def test_stake_of_unique_matches_committee_stake(self):
        committee = Committee.build(10, stake=geometric_stake(10))
        vector = committee.stake_vector
        subsets = [(0,), (1, 3, 5), tuple(range(10)), (9, 2, 4)]
        for subset in subsets:
            assert vector.stake_of_unique(subset) == committee.stake(subset)

    def test_stake_of_unique_rejects_unknown_ids(self):
        vector = StakeVector((1, 1, 1))
        with pytest.raises(CommitteeError):
            vector.stake_of_unique((0, 3))
        with pytest.raises(CommitteeError):
            vector.stake_of_unique((-1,))

    def test_range_stake_uses_cumulative_masks(self):
        vector = StakeVector((5, 1, 2, 7, 4))
        assert vector.range_stake(0, 5) == 19
        assert vector.range_stake(1, 4) == 10
        assert vector.range_stake(2, 2) == 0
        with pytest.raises(CommitteeError):
            vector.range_stake(3, 6)

    def test_signer_quorum_matches_has_quorum(self):
        committee = Committee.build(7, stake=zipfian_stake(7))
        vector = committee.stake_vector
        for signers in [(0, 1), (0, 1, 2, 3, 4), tuple(range(7)), (5, 6)]:
            assert vector.signer_tuple_has_quorum(signers) == committee.has_quorum(signers)
        # Memoized: the same tuple answers from cache.
        assert vector.signer_tuple_has_quorum((0, 1, 2, 3, 4))

    def test_duplicate_signers_cannot_inflate_stake(self):
        # 3f+1 = 4 with equal stake: quorum needs 3 distinct validators.
        vector = StakeVector((1, 1, 1, 1))
        assert not vector.signer_tuple_has_quorum((0, 0, 0))
        assert not vector.signer_tuple_has_quorum((1, 1, 0))
        assert vector.signer_tuple_has_quorum((0, 1, 2))

    def test_uniform_stake_detection(self):
        assert StakeVector((3, 3, 3)).uniform_stake == 3
        assert StakeVector((3, 2, 3)).uniform_stake == 0


class TestEdgeQuorumMemo:
    def test_verdict_matches_direct_check_and_caches(self):
        committee = Committee.build(4)
        digest = b"\x01" * 32
        assert committee.edge_quorum_verdict(digest, (0, 1, 2)) is True
        # Cached by digest: the sources are not even consulted on a hit.
        assert committee.edge_quorum_verdict(digest, ()) is True
        assert committee.edge_quorum_verdict(b"\x02" * 32, (0,)) is False
