"""The shared CLI guard: one exception-to-exit-code mapping for every CLI.

The ordering of the except clauses is load-bearing —
``BrokenPipeError`` subclasses ``OSError``, so catching ``OSError``
first would turn a closed pager into exit 2.  These tests pin the
contract the scenario, analysis, and obs CLIs all inherit.
"""

import pytest

from repro.cliutil import EXIT_ERROR, EXIT_FINDINGS, EXIT_OK, run_guarded
from repro.errors import ReproError


class TestRunGuarded:
    def test_success_passes_through_return_value(self):
        assert run_guarded(lambda: EXIT_OK) == EXIT_OK
        assert run_guarded(lambda: EXIT_FINDINGS) == EXIT_FINDINGS

    def test_repro_error_exits_2_with_stderr_line(self, capsys):
        def handler():
            raise ReproError("the spec is broken")

        assert run_guarded(handler) == EXIT_ERROR
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == "error: the spec is broken\n"

    def test_broken_pipe_is_not_an_error(self, capsys):
        def handler():
            raise BrokenPipeError()

        assert run_guarded(handler) == EXIT_OK
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""

    def test_os_error_exits_2_with_stderr_line(self, capsys):
        def handler():
            raise OSError("disk on fire")

        assert run_guarded(handler) == EXIT_ERROR
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith("error:")
        assert "disk on fire" in captured.err

    def test_broken_pipe_precedence_over_oserror(self, capsys):
        """The subclass must win even though OSError is also caught."""
        assert issubclass(BrokenPipeError, OSError)

        def handler():
            raise BrokenPipeError("downstream closed")

        assert run_guarded(handler) == EXIT_OK
        assert capsys.readouterr().err == ""

    def test_os_error_appends_errno_context_when_missing(self, capsys):
        """The asyncio-error shape: errno set, but not rendered by str().

        ``OSError.__str__`` only embeds ``[Errno N]`` when ``strerror``
        or ``filename`` is populated; errors carrying a bare message
        plus an errno attribute (timeouts, some asyncio failures) used
        to lose the errno on the way to stderr.
        """
        import errno

        def handler():
            error = OSError("cannot connect to validator 3 within 5.0s")
            error.errno = errno.ECONNREFUSED
            raise error

        assert run_guarded(handler) == EXIT_ERROR
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "cannot connect to validator 3" in err
        assert f"errno {errno.ECONNREFUSED}" in err

    def test_os_error_with_address_stays_single_mention(self, capsys):
        """Net-backend connect failures carry (errno, message, address);
        str() already renders all three — nothing may be duplicated."""
        import errno

        def handler():
            raise OSError(
                errno.ECONNREFUSED,
                "cannot connect to validator 3 within 5.0s: connection refused",
                "/tmp/run/validator-3.sock",
            )

        assert run_guarded(handler) == EXIT_ERROR
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert err.count("/tmp/run/validator-3.sock") == 1
        assert err.count(str(errno.ECONNREFUSED)) == 1

    def test_unexpected_exceptions_propagate(self):
        """Bugs must crash loudly, not hide behind exit 2."""

        def handler():
            raise ValueError("a programming error")

        with pytest.raises(ValueError):
            run_guarded(handler)
