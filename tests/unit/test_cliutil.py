"""The shared CLI guard: one exception-to-exit-code mapping for every CLI.

The ordering of the except clauses is load-bearing —
``BrokenPipeError`` subclasses ``OSError``, so catching ``OSError``
first would turn a closed pager into exit 2.  These tests pin the
contract the scenario, analysis, and obs CLIs all inherit.
"""

import pytest

from repro.cliutil import EXIT_ERROR, EXIT_FINDINGS, EXIT_OK, run_guarded
from repro.errors import ReproError


class TestRunGuarded:
    def test_success_passes_through_return_value(self):
        assert run_guarded(lambda: EXIT_OK) == EXIT_OK
        assert run_guarded(lambda: EXIT_FINDINGS) == EXIT_FINDINGS

    def test_repro_error_exits_2_with_stderr_line(self, capsys):
        def handler():
            raise ReproError("the spec is broken")

        assert run_guarded(handler) == EXIT_ERROR
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == "error: the spec is broken\n"

    def test_broken_pipe_is_not_an_error(self, capsys):
        def handler():
            raise BrokenPipeError()

        assert run_guarded(handler) == EXIT_OK
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""

    def test_os_error_exits_2_with_stderr_line(self, capsys):
        def handler():
            raise OSError("disk on fire")

        assert run_guarded(handler) == EXIT_ERROR
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith("error:")
        assert "disk on fire" in captured.err

    def test_broken_pipe_precedence_over_oserror(self, capsys):
        """The subclass must win even though OSError is also caught."""
        assert issubclass(BrokenPipeError, OSError)

        def handler():
            raise BrokenPipeError("downstream closed")

        assert run_guarded(handler) == EXIT_OK
        assert capsys.readouterr().err == ""

    def test_unexpected_exceptions_propagate(self):
        """Bugs must crash loudly, not hide behind exit 2."""

        def handler():
            raise ValueError("a programming error")

        with pytest.raises(ValueError):
            run_guarded(handler)
