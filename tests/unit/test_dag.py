"""Unit tests for DAG vertices and the DAG store."""

import pytest

from repro.dag.store import DagStore
from repro.dag.vertex import check_edge_quorum, genesis_vertices, make_vertex
from repro.errors import DagError, EquivocationError
from tests.conftest import build_round, populate_dag, vid


class TestVertexConstruction:
    def test_make_vertex_basic(self, committee4):
        parents = [vid(0, index) for index in range(4)]
        vertex = make_vertex(1, 2, edges=parents, block=("tx1", "tx2"))
        assert vertex.round == 1
        assert vertex.source == 2
        assert vertex.edges == frozenset(parents)
        assert vertex.block == ("tx1", "tx2")

    def test_genesis_vertices_have_no_edges(self, committee4):
        vertices = genesis_vertices(committee4)
        assert len(vertices) == 4
        assert all(vertex.round == 0 and not vertex.edges for vertex in vertices)

    def test_genesis_with_edges_rejected(self):
        with pytest.raises(DagError):
            make_vertex(0, 0, edges=[vid(0, 1)])

    def test_edges_must_point_to_previous_round(self):
        with pytest.raises(DagError):
            make_vertex(3, 0, edges=[vid(1, 0)])
        with pytest.raises(DagError):
            make_vertex(3, 0, edges=[vid(3, 1)])

    def test_negative_round_rejected(self):
        with pytest.raises(DagError):
            make_vertex(-1, 0, edges=[])

    def test_digest_depends_on_edges(self):
        vertex_a = make_vertex(1, 0, edges=[vid(0, 0), vid(0, 1), vid(0, 2)])
        vertex_b = make_vertex(1, 0, edges=[vid(0, 0), vid(0, 1), vid(0, 3)])
        assert vertex_a.digest != vertex_b.digest

    def test_digest_is_stable_under_edge_ordering(self):
        edges = [vid(0, 2), vid(0, 0), vid(0, 1)]
        assert make_vertex(1, 0, edges=edges).digest == make_vertex(1, 0, edges=reversed(edges)).digest

    def test_references(self):
        vertex = make_vertex(1, 0, edges=[vid(0, 0), vid(0, 1), vid(0, 2)])
        assert vertex.references(vid(0, 1))
        assert not vertex.references(vid(0, 3))

    def test_check_edge_quorum(self, committee4):
        good = make_vertex(1, 0, edges=[vid(0, 0), vid(0, 1), vid(0, 2)])
        bad = make_vertex(1, 0, edges=[vid(0, 0), vid(0, 1)])
        assert check_edge_quorum(good, committee4)
        assert not check_edge_quorum(bad, committee4)
        assert check_edge_quorum(genesis_vertices(committee4)[0], committee4)


class TestDagStoreInsertion:
    def test_add_genesis_and_rounds(self, committee4):
        dag = DagStore(committee4)
        populate_dag(dag, committee4, rounds=3)
        assert dag.highest_round() == 3
        assert len(dag) == 4 * 4  # genesis + 3 rounds
        for round_number in range(4):
            assert dag.has_quorum_at(round_number)

    def test_duplicate_insert_is_ignored(self, committee4):
        dag = DagStore(committee4)
        vertex = genesis_vertices(committee4)[0]
        assert dag.add(vertex) is True
        assert dag.add(vertex) is False
        assert len(dag) == 1

    def test_equivocation_is_detected(self, committee4):
        dag = DagStore(committee4)
        populate_dag(dag, committee4, rounds=1)
        honest = make_vertex(2, 0, edges=[vid(1, 0), vid(1, 1), vid(1, 2)], block=("a",))
        conflicting = make_vertex(2, 0, edges=[vid(1, 1), vid(1, 2), vid(1, 3)], block=("b",))
        dag.add(honest)
        with pytest.raises(EquivocationError):
            dag.add(conflicting)

    def test_insufficient_edge_quorum_rejected(self, committee4):
        dag = DagStore(committee4)
        populate_dag(dag, committee4, rounds=1)
        with pytest.raises(DagError):
            dag.add(make_vertex(2, 0, edges=[vid(1, 0), vid(1, 1)]))

    def test_quorum_check_can_be_disabled(self, committee4):
        dag = DagStore(committee4, require_edge_quorum=False)
        populate_dag(dag, committee4, rounds=1)
        assert dag.add(make_vertex(2, 0, edges=[vid(1, 0), vid(1, 1)]))

    def test_missing_parents_are_buffered(self, committee4):
        dag = DagStore(committee4)
        for vertex in genesis_vertices(committee4):
            dag.add(vertex)
        round1 = [make_vertex(1, index, edges=[vid(0, 0), vid(0, 1), vid(0, 2)]) for index in range(4)]
        orphan = make_vertex(2, 0, edges=[vertex.id for vertex in round1[:3]])
        assert dag.add(orphan) is False
        assert orphan.id not in dag
        assert dag.pending_count == 1
        # Parents arrive: the orphan is promoted automatically.
        for vertex in round1:
            dag.add(vertex)
        assert orphan.id in dag
        assert dag.pending_count == 0

    def test_pending_promotion_cascades(self, committee4):
        dag = DagStore(committee4)
        for vertex in genesis_vertices(committee4):
            dag.add(vertex)
        round1 = [make_vertex(1, index, edges=[vid(0, 0), vid(0, 1), vid(0, 2)]) for index in range(4)]
        round2 = [make_vertex(2, index, edges=[vertex.id for vertex in round1[:3]]) for index in range(4)]
        round3 = [make_vertex(3, index, edges=[vertex.id for vertex in round2[:3]]) for index in range(4)]
        # Insert out of order: rounds 3, then 2, then 1.
        for vertex in round3 + round2:
            assert dag.add(vertex) is False
        assert dag.pending_count == 8
        for vertex in round1:
            dag.add(vertex)
        assert dag.pending_count == 0
        assert dag.highest_round() == 3

    def test_pending_missing_lists_blocking_parents(self, committee4):
        dag = DagStore(committee4)
        for vertex in genesis_vertices(committee4):
            dag.add(vertex)
        round1 = [make_vertex(1, index, edges=[vid(0, 0), vid(0, 1), vid(0, 2)]) for index in range(3)]
        child = make_vertex(2, 0, edges=[vertex.id for vertex in round1])
        dag.add(child)
        assert dag.pending_missing() == {vertex.id for vertex in round1}
        assert dag.pending_vertices() == (child,)

    def test_insert_callback_fires_for_each_insert(self, committee4):
        dag = DagStore(committee4)
        seen = []
        dag.on_insert(lambda vertex: seen.append(vertex.id))
        populate_dag(dag, committee4, rounds=2)
        assert len(seen) == 12

    def test_replace_insert_callbacks(self, committee4):
        dag = DagStore(committee4)
        first, second = [], []
        dag.on_insert(lambda vertex: first.append(vertex.id))
        dag.replace_insert_callbacks([lambda vertex: second.append(vertex.id)])
        populate_dag(dag, committee4, rounds=1)
        assert not first
        assert len(second) == 8


class TestDagStoreQueries:
    def test_vertex_lookup(self, committee4):
        dag = DagStore(committee4)
        populate_dag(dag, committee4, rounds=2)
        vertex = dag.vertex_of(2, 1)
        assert vertex is not None
        assert dag.get(vertex.id) is vertex
        assert dag.vertex_of(2, 99) is None

    def test_sources_and_stake(self, committee4):
        dag = DagStore(committee4)
        populate_dag(dag, committee4, rounds=1)
        build_round(dag, committee4, 2, sources=[0, 1, 2])
        assert dag.sources_at(2) == {0, 1, 2}
        assert dag.stake_at(2) == 3
        assert dag.has_quorum_at(2)
        build_round(dag, committee4, 3, sources=[0, 1])
        assert not dag.has_quorum_at(3)

    def test_path_direct_edge(self, committee4):
        dag = DagStore(committee4)
        populate_dag(dag, committee4, rounds=2)
        assert dag.path(vid(2, 0), vid(1, 1))

    def test_path_multi_round(self, committee4):
        dag = DagStore(committee4)
        populate_dag(dag, committee4, rounds=6)
        assert dag.path(vid(6, 3), vid(1, 0))
        assert dag.path(vid(6, 3), vid(0, 2))

    def test_path_to_self(self, committee4):
        dag = DagStore(committee4)
        populate_dag(dag, committee4, rounds=1)
        assert dag.path(vid(1, 0), vid(1, 0))

    def test_no_path_forward(self, committee4):
        dag = DagStore(committee4)
        populate_dag(dag, committee4, rounds=2)
        assert not dag.path(vid(1, 0), vid(2, 0))

    def test_no_path_when_disconnected(self, committee4):
        dag = DagStore(committee4)
        for vertex in genesis_vertices(committee4):
            dag.add(vertex)
        # Round 1 vertices from 0,1,2; round 2 vertex of 3 references only 0,1,2's
        # round-1 vertices; vertex (1,3) does not exist, so no path to it.
        build_round(dag, committee4, 1, sources=[0, 1, 2])
        build_round(dag, committee4, 2, sources=[3])
        assert not dag.path(vid(2, 3), vid(1, 3))

    def test_path_missing_descendant(self, committee4):
        dag = DagStore(committee4)
        populate_dag(dag, committee4, rounds=1)
        assert not dag.path(vid(5, 0), vid(0, 0))

    def test_causal_history_is_complete_and_sorted(self, committee4):
        dag = DagStore(committee4)
        populate_dag(dag, committee4, rounds=4)
        history = dag.causal_history(vid(4, 0))
        rounds = [vertex.round for vertex in history]
        assert rounds == sorted(rounds)
        # Full DAG: 4 genesis + 4 per round for rounds 1..3, plus the root.
        assert len(history) == 4 + 4 * 3 + 1

    def test_causal_history_excludes_given_set(self, committee4):
        dag = DagStore(committee4)
        populate_dag(dag, committee4, rounds=4)
        already = {vertex.id for vertex in dag.causal_history(vid(2, 0))}
        fresh = dag.causal_history(vid(4, 0), exclude=already)
        assert all(vertex.id not in already for vertex in fresh)
        assert all(vertex.round >= 1 for vertex in fresh)

    def test_causal_history_of_unknown_vertex_raises(self, committee4):
        dag = DagStore(committee4)
        with pytest.raises(DagError):
            dag.causal_history(vid(1, 0))

    def test_iteration_and_rounds(self, committee4):
        dag = DagStore(committee4)
        populate_dag(dag, committee4, rounds=2)
        assert {vertex.round for vertex in dag} == {0, 1, 2}
        assert dag.all_rounds() == [0, 1, 2]


class TestGarbageCollection:
    def test_gc_removes_old_rounds(self, committee4):
        dag = DagStore(committee4)
        populate_dag(dag, committee4, rounds=6)
        removed = dag.garbage_collect(before_round=3)
        assert removed == 4 * 3  # rounds 0, 1, 2
        assert dag.all_rounds() == [3, 4, 5, 6]
        assert dag.lowest_round == 3

    def test_gc_is_idempotent(self, committee4):
        dag = DagStore(committee4)
        populate_dag(dag, committee4, rounds=4)
        dag.garbage_collect(before_round=2)
        assert dag.garbage_collect(before_round=2) == 0

    def test_vertices_below_horizon_do_not_block_insertion(self, committee4):
        dag = DagStore(committee4)
        populate_dag(dag, committee4, rounds=4)
        dag.garbage_collect(before_round=4)
        # A new vertex referencing pruned round-4 parents... round-5 vertex
        # references round-4 vertices which are still present.
        build_round(dag, committee4, 5)
        # Now prune round 5's parents and insert a round-6 vertex that
        # references them; the GC horizon treats them as present.
        dag.garbage_collect(before_round=5)
        vertex = make_vertex(6, 0, edges=[vid(5, 0), vid(5, 1), vid(5, 2)])
        dag.garbage_collect(before_round=6)
        assert dag.add(vertex) is True

    def test_causal_history_stops_at_gc_horizon(self, committee4):
        dag = DagStore(committee4)
        populate_dag(dag, committee4, rounds=6)
        dag.garbage_collect(before_round=3)
        history = dag.causal_history(vid(6, 0))
        assert all(vertex.round >= 3 for vertex in history)


class TestStragglerCacheInvalidation:
    """Below-horizon insertions invalidate per subtree, not wholesale."""

    def _grown_dag(self, committee4):
        dag = DagStore(committee4)
        for vertex in genesis_vertices(committee4):
            dag.add(vertex)
        for round_number in range(1, 7):
            build_round(dag, committee4, round_number)
        return dag

    def test_unreachable_straggler_keeps_cache_entries_warm(self, committee4):
        # Round 1 misses validator 3, so no stored edge ever names (1, 3):
        # a late delivery of that vertex reconnects nothing.
        dag = DagStore(committee4)
        for vertex in genesis_vertices(committee4):
            dag.add(vertex)
        build_round(dag, committee4, 1, sources=[0, 1, 2])
        for round_number in range(2, 7):
            build_round(dag, committee4, round_number)
        root = dag.vertex_of(6, 0)
        for target in (2, 3, 4, 5):
            dag.reachable_sources(root.id, target)
        dag.garbage_collect(2)
        warm_before = {
            vertex_id: dict(entry) for vertex_id, entry in dag._reach_cache.items()
        }
        assert warm_before, "the cache should hold entries after GC"
        genesis = [vid(0, source) for source in committee4.validators]
        straggler = make_vertex(1, 3, edges=genesis)
        assert dag.add(straggler) is True
        # Nothing reaches the straggler, so every warm entry survives.
        assert {
            vertex_id: dict(entry) for vertex_id, entry in dag._reach_cache.items()
        } == warm_before

    def test_reachable_straggler_invalidates_only_low_targets(self, committee4):
        dag = self._grown_dag(committee4)
        root = dag.vertex_of(6, 0)
        for target in (2, 3, 4, 5):
            dag.reachable_sources(root.id, target)
        dag.garbage_collect(3)
        entry_before = dict(dag._reach_cache[root.id])
        assert set(entry_before) >= {3, 4, 5}
        # Re-deliver the pruned (2, 0) vertex: round-3 edges name it, so
        # every vertex above can reach it.
        straggler = make_vertex(2, 0, edges=[vid(1, 0), vid(1, 1), vid(1, 2)])
        assert dag.add(straggler) is True
        entry_after = dag._reach_cache.get(root.id, {})
        # Targets above the straggler's round survive; lower ones are gone.
        assert set(entry_after) >= {3, 4, 5}
        assert all(target > 2 for target in entry_after)

    def test_straggler_results_match_oracle_after_invalidation(self, committee4):
        """Differential check: cached path() equals the reference BFS."""
        cached = self._grown_dag(committee4)
        cached.garbage_collect(3)
        # Warm every entry.
        for vertex in list(cached):
            for target in range(3, vertex.round):
                cached.reachable_sources(vertex.id, target)
        # Deliver a straggler below the horizon (state-sync replay).
        straggler = make_vertex(2, 0, edges=[vid(1, 0), vid(1, 1), vid(1, 2)])
        cached.add(straggler)
        # The oracle replays the same content (same GC horizon, same
        # straggler) without any caching.
        oracle = DagStore(committee4, cache_reachability=False)
        oracle.garbage_collect(3)
        for vertex in sorted(cached, key=lambda v: (v.round, v.source)):
            oracle.add(vertex)
        assert len(oracle) == len(cached)
        for vertex in list(cached):
            for target in range(vertex.round):
                for source in committee4.validators:
                    target_id = vid(target, source)
                    assert cached.path(vertex.id, target_id) == oracle.path(
                        vertex.id, target_id
                    ), f"path({vertex.id}, {target_id}) diverged from the oracle"


class TestCachedCausalHistory:
    def test_cached_history_matches_walk(self, committee4):
        cached = DagStore(committee4, cache_reachability=True)
        walk = DagStore(committee4, cache_reachability=False)
        for store in (cached, walk):
            for vertex in genesis_vertices(committee4):
                store.add(vertex)
        for round_number in range(1, 8):
            # Vary participation so the DAG has holes.
            sources = [0, 1, 2] if round_number % 3 == 0 else None
            build_round(cached, committee4, round_number, sources=sources)
            build_round(walk, committee4, round_number, sources=sources)
        for vertex in list(cached):
            assert cached.causal_history(vertex.id) == walk.causal_history(vertex.id)
            assert cached.causal_history(vertex.id, include_root=False) == walk.causal_history(
                vertex.id, include_root=False
            )

    def test_exclude_set_still_uses_the_walk(self, committee4):
        dag = DagStore(committee4, cache_reachability=True)
        for vertex in genesis_vertices(committee4):
            dag.add(vertex)
        for round_number in range(1, 4):
            build_round(dag, committee4, round_number)
        root = dag.vertex_of(3, 0)
        excluded = {vertex.id for vertex in dag.vertices_at(1)}
        history = dag.causal_history(root.id, exclude=excluded)
        assert all(vertex.id not in excluded for vertex in history)

    def test_cached_history_includes_below_horizon_stragglers(self, committee4):
        """Regression: a stored straggler below the GC horizon is history too."""
        dag = DagStore(committee4)
        for vertex in genesis_vertices(committee4):
            dag.add(vertex)
        for round_number in range(1, 7):
            build_round(dag, committee4, round_number)
        dag.garbage_collect(3)
        straggler = make_vertex(2, 0, edges=[vid(1, 0), vid(1, 1), vid(1, 2)])
        assert dag.add(straggler) is True
        root = dag.vertex_of(6, 0)
        cached_history = dag.causal_history(root.id)
        # A non-empty exclude set forces the reference walk.
        walk_history = dag.causal_history(root.id, exclude={vid(99, 0)})
        assert straggler.id in {vertex.id for vertex in cached_history}
        assert cached_history == walk_history

    def test_cached_history_ordering_is_round_then_source(self, committee4):
        dag = DagStore(committee4)
        for vertex in genesis_vertices(committee4):
            dag.add(vertex)
        for round_number in range(1, 5):
            build_round(dag, committee4, round_number)
        root = dag.vertex_of(4, 2)
        history = dag.causal_history(root.id)
        keys = [(vertex.round, vertex.source) for vertex in history]
        assert keys == sorted(keys)
        assert history[-1].id == root.id
