"""Unit tests for the bounded (ring-buffer) tracer mode.

``MemoryTracer(max_events=N)`` keeps at most N events, evicting the
oldest first, and :meth:`export_events` prefixes a single
``trace_truncated`` marker (``dropped``/``kept`` fields) whenever
anything was evicted — the JSONL contract that lets consumers tell a
bounded trace from a complete one.
"""

import pytest

from repro.errors import ConfigurationError
from repro.obs.trace import KNOWN_KINDS, MemoryTracer, event_lines
from repro.sim.experiment import ExperimentConfig


def fill(tracer, count):
    for index in range(count):
        tracer.emit("vertex_inserted", round=index, source=0)


class TestRingBuffer:
    def test_under_capacity_keeps_everything(self):
        tracer = MemoryTracer(max_events=10)
        fill(tracer, 7)
        assert len(tracer) == 7
        assert tracer.dropped == 0
        events = tracer.export_events()
        assert len(events) == 7
        assert [event["round"] for event in events] == list(range(7))

    def test_overflow_evicts_oldest_first(self):
        tracer = MemoryTracer(max_events=5)
        fill(tracer, 12)
        assert len(tracer) == 5
        assert tracer.dropped == 7
        kept = [event["round"] for event in tracer.events]
        assert kept == [7, 8, 9, 10, 11]  # newest five survive

    def test_export_prepends_truncation_marker(self):
        tracer = MemoryTracer(max_events=3)
        fill(tracer, 5)
        events = tracer.export_events()
        marker = events[0]
        assert marker["kind"] == "trace_truncated"
        assert marker["dropped"] == 2
        assert marker["kept"] == 3
        # Stamped with the oldest retained event's time, so the marker
        # sorts first in any time-ordered view of the stream.
        assert marker["t"] == events[1]["t"]
        assert [event["round"] for event in events[1:]] == [2, 3, 4]

    def test_truncation_marker_is_a_known_kind(self):
        assert "trace_truncated" in KNOWN_KINDS

    def test_marker_serializes_like_any_event(self):
        tracer = MemoryTracer(max_events=1)
        fill(tracer, 2)
        lines = event_lines(tracer.export_events(), point="p", seed=1)
        assert len(lines) == 2
        assert '"kind":"trace_truncated"' in lines[0]

    def test_unbounded_tracer_unchanged(self):
        tracer = MemoryTracer()
        fill(tracer, 4)
        assert tracer.max_events is None
        assert tracer.dropped == 0
        assert isinstance(tracer.events, list)
        assert tracer.export_events() == list(tracer.events)


class TestConfigValidation:
    def test_positive_limit_accepted(self):
        ExperimentConfig(trace=True, trace_limit=100).validate()

    def test_none_limit_accepted(self):
        ExperimentConfig(trace=True, trace_limit=None).validate()

    @pytest.mark.parametrize("limit", [0, -1])
    def test_non_positive_limit_rejected(self, limit):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(trace=True, trace_limit=limit).validate()
