"""Unit tests for the scenario engine (spec, registry, compile, runner)."""

import dataclasses
import json

import pytest

from repro.errors import ConfigurationError
from repro.faults.byzantine import VoteWithholdingFault
from repro.faults.crash import CrashFault, CrashRecoveryFault
from repro.faults.partition import NetworkDisturbanceFault, PartitionPlan
from repro.faults.slow import SlowValidatorFault
from repro.scenarios import (
    DisturbanceSpec,
    FaultSpec,
    PartitionSpec,
    ScenarioSpec,
    WorkloadSpec,
    all_scenarios,
    compile_spec,
    get_scenario,
    run_scenario,
    scenario_names,
)
from repro.scenarios.spec import SPEC_VERSION


def rich_spec() -> ScenarioSpec:
    """A spec exercising every nested section."""
    return ScenarioSpec(
        name="rich",
        description="everything at once",
        protocols=("hammerhead", "bullshark"),
        committee_sizes=(7,),
        workload=WorkloadSpec(
            kind="burst", tps=300.0, burst_tps=900.0, burst_start=4.0, burst_end=8.0
        ),
        duration=20.0,
        warmup=5.0,
        seed=11,
        faults=(
            FaultSpec(kind="crash", count=1, at=2.0),
            FaultSpec(kind="crash-recovery", validators=(5,), at=3.0, recover_at=9.0),
            FaultSpec(kind="slow", fraction=0.2, extra_delay=0.3, at=1.0, end=12.0),
            FaultSpec(kind="vote-withholding", validators=(4,), at=0.0),
        ),
        partitions=(PartitionSpec(isolate_fraction=0.3, start=10.0, end=14.0),),
        disturbances=(DisturbanceSpec(jitter=0.1, loss_rate=0.01, start=6.0, end=11.0),),
    )


class TestSpecRoundTrip:
    def test_dict_round_trip_is_identity(self):
        spec = rich_spec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_is_identity(self):
        spec = rich_spec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_round_trip_preserves_digest(self):
        spec = rich_spec()
        assert ScenarioSpec.from_json(spec.to_json()).scenario_digest() == spec.scenario_digest()

    def test_to_dict_is_plain_json(self):
        # No tuples, dataclasses, or other non-JSON types survive.
        text = json.dumps(rich_spec().to_dict())
        assert json.loads(text) == rich_spec().to_dict()

    def test_version_is_embedded_and_checked(self):
        data = rich_spec().to_dict()
        assert data["version"] == SPEC_VERSION
        data["version"] = SPEC_VERSION + 1
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict(data)

    def test_unknown_keys_rejected(self):
        data = rich_spec().to_dict()
        data["surprise"] = 1
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict(data)

    def test_unknown_nested_keys_rejected(self):
        data = rich_spec().to_dict()
        data["faults"][0]["surprise"] = 1
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict(data)

    def test_wrong_types_rejected(self):
        data = rich_spec().to_dict()
        data["duration"] = "long"
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict(data)

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_json("{not json")


class TestSpecValidation:
    def test_fault_needs_exactly_one_selector(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="crash", count=1, fraction=0.5).validate()
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="crash").validate()

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="meltdown", count=1).validate()

    def test_crash_recovery_needs_future_recovery(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="crash-recovery", count=1, at=5.0, recover_at=5.0).validate()

    def test_partition_needs_one_shape(self):
        with pytest.raises(ConfigurationError):
            PartitionSpec().validate()
        with pytest.raises(ConfigurationError):
            PartitionSpec(groups=((1, 2),), isolate_fraction=0.5).validate()

    def test_disturbance_needs_some_disturbance(self):
        with pytest.raises(ConfigurationError):
            DisturbanceSpec().validate()

    def test_at_most_one_tail_crash(self):
        spec = ScenarioSpec(
            name="bad",
            faults=(
                FaultSpec(kind="crash", count=1),
                FaultSpec(kind="crash", max_faulty=True),
            ),
        )
        with pytest.raises(ConfigurationError):
            spec.validate()

    def test_warmup_within_duration(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="bad", duration=10.0, warmup=10.0).validate()


class TestDigest:
    def test_digest_is_deterministic(self):
        assert rich_spec().scenario_digest() == rich_spec().scenario_digest()

    def test_digest_ignores_construction_order(self):
        data = rich_spec().to_dict()
        shuffled = dict(reversed(list(data.items())))
        assert (
            ScenarioSpec.from_dict(shuffled).scenario_digest()
            == rich_spec().scenario_digest()
        )

    def test_digest_distinguishes_specs(self):
        digests = {spec.scenario_digest() for spec in all_scenarios().values()}
        digests.add(rich_spec().scenario_digest())
        assert len(digests) == len(all_scenarios()) + 1

    def test_digest_changes_with_any_field(self):
        spec = rich_spec()
        assert spec.with_overrides(seed=12).scenario_digest() != spec.scenario_digest()


class TestRegistry:
    def test_registry_has_the_curated_catalogue(self):
        expected = {
            "faultless",
            "figure2-faults",
            "sui-incident",
            "rolling-crash-churn",
            "targeted-leader-attack",
            "asymmetric-partition",
            "load-spike",
            "mixed-adversary",
        }
        assert expected <= set(scenario_names())
        assert len(scenario_names()) >= 8

    def test_every_scenario_validates_and_compiles(self):
        for name, spec in all_scenarios().items():
            spec.validate()
            points = compile_spec(spec)
            assert points, f"scenario {name} compiled to no points"
            for point in points:
                point.config.validate()

    def test_every_scenario_has_a_valid_smoke_variant(self):
        for name, spec in all_scenarios().items():
            smoke = spec.smoke()
            assert smoke.duration <= 15.0
            assert smoke.committee_sizes == (4,)
            points = compile_spec(smoke)
            assert points, f"smoke variant of {name} compiled to no points"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            get_scenario("no-such-scenario")


class TestCompile:
    def test_tail_crash_compiles_to_builtin_faults(self):
        spec = ScenarioSpec(
            name="crash",
            committee_sizes=(10,),
            loads=(500.0,),
            faults=(FaultSpec(kind="crash", max_faulty=True, at=1.5),),
        )
        (point,) = compile_spec(spec)
        assert point.config.faults == 3
        assert point.config.fault_time == 1.5
        assert point.config.extra_faults == ()

    def test_explicit_faults_compile_to_plans(self):
        spec = rich_spec()
        points = compile_spec(spec)
        plans = points[0].config.extra_faults
        kinds = [type(plan) for plan in plans]
        assert CrashRecoveryFault in kinds
        assert SlowValidatorFault in kinds
        assert VoteWithholdingFault in kinds
        assert PartitionPlan in kinds
        assert NetworkDisturbanceFault in kinds
        # The count-selected crash went through the builtin path.
        assert CrashFault not in kinds
        assert points[0].config.faults == 1

    def test_point_order_is_committee_protocol_load(self):
        spec = ScenarioSpec(
            name="order",
            protocols=("hammerhead", "bullshark"),
            committee_sizes=(4, 7),
            loads=(100.0, 200.0),
        )
        labels = [
            (point.committee_size, point.protocol, point.load)
            for point in compile_spec(spec)
        ]
        assert labels == [
            (4, "hammerhead", 100.0),
            (4, "hammerhead", 200.0),
            (4, "bullshark", 100.0),
            (4, "bullshark", 200.0),
            (7, "hammerhead", 100.0),
            (7, "hammerhead", 200.0),
            (7, "bullshark", 100.0),
            (7, "bullshark", 200.0),
        ]

    def test_seed_override(self):
        spec = ScenarioSpec(name="seeded", committee_sizes=(4,), loads=(100.0,), seed=5)
        (point,) = compile_spec(spec, seed=9)
        assert point.config.seed == 9

    def test_burst_workload_compiles_to_phases(self):
        spec = ScenarioSpec(
            name="bursty",
            committee_sizes=(4,),
            workload=WorkloadSpec(
                kind="burst", tps=100.0, burst_tps=400.0, burst_start=5.0, burst_end=10.0
            ),
            duration=20.0,
            warmup=2.0,
        )
        (point,) = compile_spec(spec)
        phases = point.config.load_phases
        assert len(phases) == 3
        assert phases[1] == (5.0, 10.0, 400.0)
        # The nominal load is the time-weighted average.
        assert point.config.input_load_tps == pytest.approx(
            (100.0 * 4.5 + 400.0 * 5.0 + 100.0 * 10.0) / 19.5, abs=1e-3
        )

    def test_without_faults_strips_all_timelines(self):
        healthy = rich_spec().without_faults()
        assert healthy.faults == ()
        assert healthy.partitions == ()
        assert healthy.disturbances == ()
        (first, *_) = compile_spec(healthy)
        assert first.config.faults == 0
        assert first.config.extra_faults == ()


class TestRunScenario:
    def test_artifact_carries_reproducibility_fields(self):
        spec = ScenarioSpec(
            name="tiny",
            protocols=("hammerhead",),
            committee_sizes=(4,),
            loads=(150.0,),
            duration=8.0,
            warmup=2.0,
            seed=3,
        )
        artifact = run_scenario(spec, parallelism=1)
        assert artifact["scenario"] == spec.to_dict()
        assert artifact["scenario_digest"] == spec.scenario_digest()
        assert artifact["seeds"] == [3]
        (point,) = artifact["points"]
        assert point["ordering_digest"]
        assert point["report"]["committed_transactions"] > 0
        # The artifact is valid JSON end to end.
        json.dumps(artifact)

    def test_multi_seed_sweep_fans_out(self):
        spec = ScenarioSpec(
            name="tiny-sweep",
            protocols=("hammerhead",),
            committee_sizes=(4,),
            loads=(100.0,),
            duration=6.0,
            warmup=1.0,
        )
        artifact = run_scenario(spec, seeds=(1, 2), parallelism=1)
        assert artifact["seeds"] == [1, 2]
        assert [point["seed"] for point in artifact["points"]] == [1, 2]
        # Different seeds, different runs.
        digests = {point["ordering_digest"] for point in artifact["points"]}
        assert len(digests) == 2


class TestReviewRegressions:
    """Regression tests for defects found in the PR-2 code review."""

    def test_smoke_handles_multiple_explicit_crashes(self):
        spec = ScenarioSpec(
            name="double-crash",
            committee_sizes=(10,),
            loads=(500.0,),
            duration=60.0,
            warmup=10.0,
            faults=(
                FaultSpec(kind="crash", validators=(9,), at=10.0),
                FaultSpec(kind="crash", validators=(8,), at=30.0),
                FaultSpec(kind="crash-recovery", validators=(7,), at=20.0, recover_at=40.0),
            ),
        ).validate()
        smoke = spec.smoke()
        # Only one permanent crash survives on a 4-member committee.
        permanent = [fault for fault in smoke.faults if fault.kind == "crash"]
        assert len(permanent) == 1
        compile_spec(smoke)  # must not raise

    def test_smoke_remaps_explicit_validators_distinctly(self):
        spec = ScenarioSpec(
            name="churn-like",
            committee_sizes=(10,),
            loads=(500.0,),
            duration=60.0,
            warmup=10.0,
            faults=(
                FaultSpec(kind="crash-recovery", validators=(9,), at=10.0, recover_at=30.0),
                FaultSpec(kind="crash-recovery", validators=(8,), at=20.0, recover_at=40.0),
                FaultSpec(kind="crash-recovery", validators=(7,), at=30.0, recover_at=50.0),
            ),
        ).validate()
        smoke = spec.smoke()
        chosen = [fault.validators for fault in smoke.faults]
        assert all(len(validators) == 1 for validators in chosen)
        assert len(set(chosen)) == 3, "waves must hit distinct validators"
        assert all(0 not in validators for validators in chosen)

    def test_burst_window_outside_duration_rejected_at_validate(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                name="late-burst",
                committee_sizes=(4,),
                duration=40.0,
                workload=WorkloadSpec(
                    kind="burst", tps=100.0, burst_tps=400.0, burst_start=50.0, burst_end=60.0
                ),
            ).validate()

    def test_overlapping_partition_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                name="double-partition",
                committee_sizes=(8,),
                loads=(100.0,),
                partitions=(
                    PartitionSpec(isolate_fraction=0.25, start=5.0, end=15.0),
                    PartitionSpec(isolate_fraction=0.25, start=10.0, end=20.0),
                ),
            ).validate()

    def test_overlapping_disturbance_windows_compose(self):
        from repro.faults.partition import NetworkDisturbanceFault
        from repro.network.latency import UniformLatencyModel
        from repro.network.simulator import Simulator
        from repro.network.transport import Network

        simulator = Simulator(seed=1)
        network = Network(simulator, latency_model=UniformLatencyModel(0.01, jitter=0.0))
        first = NetworkDisturbanceFault(jitter=0.2, start=10.0, end=50.0)
        second = NetworkDisturbanceFault(loss_rate=0.1, start=20.0, end=30.0)
        first.schedule(simulator, network, {})
        second.schedule(simulator, network, {})
        simulator.run(until=25.0)
        assert network._jitter == pytest.approx(0.2)
        assert network._loss_rate == pytest.approx(0.1)
        # The second window closing must not end the first one early.
        simulator.run(until=35.0)
        assert network._jitter == pytest.approx(0.2)
        assert network._loss_rate == 0.0
        simulator.run(until=55.0)
        assert network._jitter == 0.0
