"""AsyncioTransport over real Unix-domain sockets, in-process.

Each test builds a tiny transport (2-3 endpoints), runs it inside
``asyncio.run`` (the suite has no async test plugin, by design — the
transport must be drivable from plain synchronous code the same way the
net runner drives it), and asserts the wire-level contract:

* frames delivered end to end after the Hello handshake,
* garbage on the wire closes that connection with a logged reason —
  the transport neither hangs nor crashes,
* a full bounded send queue sheds frames and counts them,
* a connect that cannot succeed fails *by the deadline* with an
  ``OSError`` carrying errno and the peer's address,
* crash semantics: a crashed sender's frames are refused at the
  source, inbound frames to a crashed endpoint count as dropped.
"""

from __future__ import annotations

import asyncio
import tempfile

import pytest

from repro.errors import NetworkError
from repro.netexec.clock import MonotonicScheduler
from repro.netexec.codec import Hello, encode_frame
from repro.netexec.transport import AsyncioTransport, PeerLink
from repro.rbc.messages import ReadyMessage


def run(coroutine):
    return asyncio.run(coroutine)


async def _wait_until(predicate, timeout=5.0, interval=0.01):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() >= deadline:
            raise AssertionError("condition not reached within the timeout")
        await asyncio.sleep(interval)


class _Harness:
    """A started transport with recording handlers, one per endpoint."""

    def __init__(self, transport):
        self.transport = transport
        self.received = {}

    @classmethod
    async def start(cls, socket_dir, size=2, family="uds", **kwargs):
        loop = asyncio.get_running_loop()
        scheduler = MonotonicScheduler(loop, seed=1)
        transport = AsyncioTransport(
            scheduler, socket_dir=socket_dir, family=family, **kwargs
        )
        harness = cls(transport)
        for node_id in range(size):
            harness.received[node_id] = []

            def handler(sender, message, _inbox=harness.received[node_id]):
                _inbox.append((sender, message))

            transport.register(node_id, region="r0", handler=handler)
        await transport.start()
        return harness


def _ready(origin, round_number=1):
    return ReadyMessage(origin=origin, round=round_number, digest=b"\x07" * 32)


class TestDelivery:
    def test_send_and_broadcast_deliver_over_uds(self):
        async def scenario():
            with tempfile.TemporaryDirectory() as socket_dir:
                harness = await _Harness.start(socket_dir, size=3)
                transport = harness.transport
                transport.send(0, 1, _ready(0))
                transport.broadcast(2, _ready(2), include_self=True)
                await _wait_until(
                    lambda: transport.stats.messages_delivered >= 4
                )
                await transport.shutdown()
                return harness

        harness = run(scenario())
        assert (0, _ready(0)) in harness.received[1]
        # The broadcast reached every endpoint, including the sender
        # itself (self-delivery goes through the codec too).
        for node_id in range(3):
            assert (2, _ready(2)) in harness.received[node_id]
        assert harness.transport.handler_errors == []

    def test_tcp_family_works_identically(self):
        async def scenario():
            with tempfile.TemporaryDirectory() as socket_dir:
                harness = await _Harness.start(socket_dir, size=2, family="tcp")
                harness.transport.send(1, 0, _ready(1))
                await _wait_until(
                    lambda: harness.transport.stats.messages_delivered >= 1
                )
                await harness.transport.shutdown()
                return harness

        harness = run(scenario())
        assert harness.received[0] == [(1, _ready(1))]

    def test_unknown_family_rejected(self):
        scheduler = object()
        with pytest.raises(NetworkError, match="unknown transport family"):
            AsyncioTransport(scheduler, socket_dir="/tmp", family="carrier-pigeon")


class TestHostilePeers:
    def test_garbage_after_hello_closes_connection_with_reason(self):
        async def scenario():
            with tempfile.TemporaryDirectory() as socket_dir:
                harness = await _Harness.start(socket_dir, size=2)
                transport = harness.transport
                address = transport._endpoints[0].address
                reader, writer = await asyncio.open_unix_connection(address)
                writer.write(encode_frame(Hello(1)))
                # A framed body whose first tag byte is garbage.
                writer.write(b"\x00\x00\x00\x05GARBA")
                await writer.drain()
                # The server must close the connection (EOF at our end),
                # not hang waiting for more bytes.
                leftovers = await asyncio.wait_for(reader.read(), timeout=5.0)
                writer.close()
                await writer.wait_closed()
                await transport.shutdown()
                return harness, leftovers

        harness, leftovers = run(scenario())
        assert leftovers == b""
        assert any(
            "validator 0: closing connection from validator 1" in event
            for event in harness.transport.events
        ), harness.transport.events
        assert harness.transport.handler_errors == []

    def test_zero_length_frame_instead_of_hello_closes_connection(self):
        async def scenario():
            with tempfile.TemporaryDirectory() as socket_dir:
                harness = await _Harness.start(socket_dir, size=2)
                transport = harness.transport
                address = transport._endpoints[1].address
                reader, writer = await asyncio.open_unix_connection(address)
                writer.write(b"\x00\x00\x00\x00")
                await writer.drain()
                leftovers = await asyncio.wait_for(reader.read(), timeout=5.0)
                writer.close()
                await writer.wait_closed()
                await transport.shutdown()
                return harness, leftovers

        harness, leftovers = run(scenario())
        assert leftovers == b""
        assert any(
            "validator 1: closing connection from unidentified peer" in event
            for event in harness.transport.events
        ), harness.transport.events

    def test_non_hello_first_frame_closes_connection(self):
        async def scenario():
            with tempfile.TemporaryDirectory() as socket_dir:
                harness = await _Harness.start(socket_dir, size=2)
                transport = harness.transport
                address = transport._endpoints[0].address
                reader, writer = await asyncio.open_unix_connection(address)
                writer.write(encode_frame(_ready(1)))
                await writer.drain()
                await asyncio.wait_for(reader.read(), timeout=5.0)
                writer.close()
                await writer.wait_closed()
                await transport.shutdown()
                return harness

        harness = run(scenario())
        assert any(
            "expected a hello frame" in event for event in harness.transport.events
        ), harness.transport.events
        # The impostor frame was never dispatched to a handler.
        assert harness.received[0] == []


class TestBackpressure:
    def test_full_send_queue_sheds_and_counts(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            never = loop.create_future()
            events = []

            async def connect():
                await never  # the link never comes up, so nothing drains

            link = PeerLink(
                owner=0, peer=1, connect=connect, capacity=2, on_event=events.append
            )
            link.start(loop)
            frame = encode_frame(_ready(0))
            accepted = [link.send_frame(frame) for _ in range(3)]
            never.cancel()
            link.task.cancel()
            try:
                await link.task
            except asyncio.CancelledError:
                pass
            return accepted, link, events

        accepted, link, events = run(scenario())
        assert accepted == [True, True, False]
        assert link.frames_dropped == 1
        assert any("send queue full" in event for event in events)

    def test_transport_counts_shed_frames_as_dropped(self):
        async def scenario():
            with tempfile.TemporaryDirectory() as socket_dir:
                harness = await _Harness.start(socket_dir, size=2, link_capacity=1)
                transport = harness.transport
                # Stall the writer by swapping in an unconnected queue
                # consumer: easiest deterministic stall is to pause the
                # link task and overfill the queue directly.
                link = transport._links[(0, 1)]
                link.queue.put_nowait(encode_frame(_ready(0)))  # fill capacity 1
                before = transport.stats.messages_dropped
                transport.send(0, 1, _ready(0))
                dropped_grew = transport.stats.messages_dropped >= before
                await transport.shutdown()
                return dropped_grew

        assert run(scenario())


class TestConnectDeadline:
    def test_terminal_failure_carries_errno_and_address(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            scheduler = MonotonicScheduler(loop, seed=1)
            with tempfile.TemporaryDirectory() as socket_dir:
                transport = AsyncioTransport(
                    scheduler,
                    socket_dir=socket_dir,
                    family="uds",
                    connect_deadline=0.3,
                )
                transport.register(0, region="r0", handler=lambda s, m: None)
                # Point at a socket nobody listens on and connect without
                # ever starting the server.
                endpoint = transport._endpoints[0]
                endpoint.address = f"{socket_dir}/validator-0.sock"
                try:
                    await transport._connect_with_deadline(0)
                except OSError as error:
                    return error
                raise AssertionError("connect unexpectedly succeeded")

        error = run(scenario())
        assert error.errno is not None
        assert "cannot connect to validator 0 within 0.3s" in str(error)
        assert error.filename is not None
        assert "validator-0.sock" in str(error.filename)


class TestCrashSemantics:
    def test_crashed_sender_refused_and_crashed_recipient_drops(self):
        async def scenario():
            with tempfile.TemporaryDirectory() as socket_dir:
                harness = await _Harness.start(socket_dir, size=3)
                transport = harness.transport
                transport.set_crashed(2)
                assert transport.is_crashed(2)
                # Outbound from the crashed validator: refused at source.
                transport.send(2, 0, _ready(2))
                # Inbound to the crashed validator: delivered over the
                # wire, counted as dropped at dispatch.
                before = transport.stats.messages_dropped
                transport.send(0, 2, _ready(0))
                await _wait_until(
                    lambda: transport.stats.messages_dropped >= before + 1
                )
                await transport.shutdown()
                return harness

        harness = run(scenario())
        assert harness.received[0] == []
        assert harness.received[2] == []
