"""Property and differential suite for certificate piggybacking.

``NodeConfig.certificate_piggyback`` attaches recently collected
certificates to the propose fan-out so receivers can heal a lost
certificate from a local stash instead of a fetch round-trip.  Two
contracts are pinned here:

* **Loss-free transparency** — with no loss there is nothing to heal:
  the stash is consulted only on the fetch-trigger path, which never
  fires, so piggyback on/off runs are byte-identical (same transport
  statistics, same DAG state, same ordering digest) across committee
  sizes.
* **Lossy effectiveness** — under a loss window the piggyback run
  issues strictly fewer fetches, heals at least one certificate, stays
  prefix-consistent with the non-piggyback run, and never stalls parked
  vertices longer on average.

Plus the protocol-level selection/dedup/bounded-state/hostile-input
properties of :class:`~repro.rbc.certified.CertifiedBroadcast`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.committee import Committee
from repro.faults.partition import NetworkDisturbanceFault
from repro.network.latency import UniformLatencyModel
from repro.network.simulator import Simulator
from repro.network.transport import Network
from repro.obs.consistency import check_run_consistency, checkpoint_chain, compare_prefixes
from repro.obs.recovery import mine_recovery
from repro.rbc.certified import (
    PIGGYBACK_DEPTH,
    PIGGYBACK_MAX_PER_ENVELOPE,
    PIGGYBACK_PENDING_LIMIT,
    PIGGYBACK_RECENT_LIMIT,
    PIGGYBACK_SEEN_LIMIT,
    CertifiedBroadcast,
)
from repro.rbc.messages import CertificateBatch, CertificateMessage, PiggybackedPropose
from repro.sim.experiment import ExperimentConfig
from repro.sim.runner import SimulationRunner


def run_runner(config: ExperimentConfig) -> SimulationRunner:
    runner = SimulationRunner(config)
    runner.run()
    return runner


def dag_state(runner: SimulationRunner):
    """Full per-validator DAG fingerprint: stored ids, digests, pending."""
    state = {}
    for validator, node in runner.nodes.items():
        state[validator] = (
            sorted((vertex.id, vertex.digest) for vertex in node.dag),
            sorted(vertex.id for vertex in node.dag.pending_vertices()),
            node.dag.lowest_round,
            node.consensus.ordering_digest,
            node.consensus.ordered_count,
        )
    return state


def loss_window(duration):
    """A mid-run loss+jitter window covering a third of the run."""
    return (
        NetworkDisturbanceFault(
            jitter=0.02, loss_rate=0.12, start=duration / 4, end=duration / 2
        ),
    )


def total_fetches(runner: SimulationRunner) -> int:
    return sum(node.fetch_requests_sent for node in runner.nodes.values())


def total_healed(runner: SimulationRunner) -> int:
    return sum(
        node.broadcast_protocol.certificates_healed for node in runner.nodes.values()
    )


# -- loss-free transparency ----------------------------------------------------

LOSS_FREE_CASES = [
    # (committee_size, protocol, duration)
    pytest.param(10, "bullshark", 8.0, id="committee10"),
    pytest.param(25, "hammerhead", 5.0, id="committee25"),
    pytest.param(100, "bullshark", 2.0, id="committee100"),
]


@pytest.mark.parametrize("size,protocol,duration", LOSS_FREE_CASES)
def test_loss_free_piggyback_is_byte_identical(size, protocol, duration):
    """Without loss the stash is never consulted, so piggyback on/off
    runs produce identical transport statistics and DAG state."""
    base = ExperimentConfig(
        protocol=protocol,
        committee_size=size,
        faults=0,
        input_load_tps=600.0,
        duration=duration,
        warmup=1.0,
        seed=7,
        commits_per_schedule=4,
        latency_model="geo",
    )
    on = run_runner(base.with_overrides(certificate_piggyback=True))
    off = run_runner(base.with_overrides(certificate_piggyback=False))
    assert on.network.stats.as_dict() == off.network.stats.as_dict()
    assert dag_state(on) == dag_state(off)
    # Nothing to heal: the fetch trigger (the only stash consumer) never fired.
    assert total_healed(on) == 0


def test_lossy_piggyback_invariants():
    """Under a loss window the piggyback run fetches less, heals from
    the stash, stays prefix-consistent, and stalls parked vertices no
    longer on average."""
    duration = 20.0
    base = ExperimentConfig(
        protocol="bullshark",
        committee_size=10,
        faults=0,
        input_load_tps=600.0,
        duration=duration,
        warmup=2.0,
        seed=11,
        commits_per_schedule=4,
        extra_faults=loss_window(duration),
        latency_model="geo",
        trace=True,
    )
    off = run_runner(base.with_overrides(certificate_piggyback=False))
    on = run_runner(base.with_overrides(certificate_piggyback=True))

    assert total_fetches(off) > 0, "loss window produced no fetches to save"
    assert total_fetches(on) < total_fetches(off)
    assert total_healed(on) > 0
    assert total_healed(off) == 0

    # Intra-run safety: every validator's committed prefix agrees.
    for runner in (off, on):
        digests = {
            validator: (node.consensus.ordered_count, node.consensus.ordering_digest)
            for validator, node in runner.nodes.items()
        }
        checkpoints = {
            validator: list(node.consensus.ordering_checkpoints)
            for validator, node in runner.nodes.items()
        }
        assert check_run_consistency(digests, checkpoints) == []

    # Cross-run: the two variants commit consistent prefixes.
    observer = base.observer
    chains = {}
    for label, runner in (("off", off), ("on", on)):
        node = runner.nodes[observer]
        chains[label] = checkpoint_chain(
            list(node.consensus.ordering_checkpoints),
            (node.consensus.ordered_count, node.consensus.ordering_digest),
        )
    assert compare_prefixes(chains["off"], chains["on"]).consistent

    # Park-to-promote stalls mined from the traces: healing beats fetching.
    stalls = {
        label: mine_recovery(runner.tracer.export_events()).summary()
        for label, runner in (("off", off), ("on", on))
    }
    assert stalls["off"]["count"] > 0
    assert stalls["on"]["avg"] <= stalls["off"]["avg"]


# -- protocol-level selection / dedup / bounds --------------------------------


def certified_cluster(size=4, seed=3, piggyback=True):
    committee = Committee.build(size)
    simulator = Simulator(seed=seed)
    network = Network(
        simulator, latency_model=UniformLatencyModel(base_delay=0.01, jitter=0.002)
    )
    deliveries = {index: [] for index in range(size)}
    protocols = {}
    for index in range(size):
        protocol = CertifiedBroadcast(
            index,
            committee,
            network,
            lambda delivery, index=index: deliveries[index].append(delivery),
            piggyback_certificates=piggyback,
        )
        protocols[index] = protocol
        network.register(
            index,
            committee.region_of(index),
            lambda sender, message, index=index: protocols[index].handle_message(
                sender, message
            ),
        )
    return committee, simulator, network, protocols, deliveries


def harvest_certificates(rounds=3, size=4):
    """Real certificates produced by running the certified protocol."""
    committee, simulator, network, protocols, _ = certified_cluster(size=size)
    collected = {}

    original = Network.broadcast

    def capture(self, sender, message, include_self=True):
        if isinstance(message, CertificateBatch):
            for certificate in message.certificates:
                collected[(certificate.origin, certificate.round)] = certificate
        elif isinstance(message, CertificateMessage):
            collected[(message.origin, message.round)] = message
        return original(self, sender, message, include_self)

    Network.broadcast = capture
    try:
        for round_number in range(1, rounds + 1):
            for index in protocols:
                protocols[index].broadcast(f"payload-{index}-{round_number}", round_number)
            simulator.run_until_idle(max_time=10.0 * round_number)
    finally:
        Network.broadcast = original
    return committee, collected


def fake_certificate(origin, round_number):
    """A structurally valid (but unverifiable) piggyback candidate —
    fine for selection/bounds tests, which never verify."""
    return CertificateMessage(
        origin=origin,
        round=round_number,
        digest=bytes([origin % 256]) * 32,
        payload=f"payload-{origin}-{round_number}",
        signers=(origin,),
    )


def test_select_never_rides_twice_and_caps_envelope():
    """A certificate is piggybacked to a given peer at most once, and an
    envelope never carries more than PIGGYBACK_MAX_PER_ENVELOPE."""
    _, _, _, protocols, _ = certified_cluster(size=4)
    protocol = protocols[0]
    for origin in range(5, 5 + PIGGYBACK_MAX_PER_ENVELOPE + 8):
        protocol._record_recent(fake_certificate(origin, 6))
    first = protocol._select_piggyback(1, 6)
    assert len(first) == PIGGYBACK_MAX_PER_ENVELOPE
    second = protocol._select_piggyback(1, 6)
    # The 8 left over after the cap — never anything from the first batch.
    assert len(second) == 8
    first_keys = {(c.origin, c.round) for c in first}
    second_keys = {(c.origin, c.round) for c in second}
    assert not first_keys & second_keys
    assert protocol._select_piggyback(1, 6) == ()


def test_select_skips_provably_seen_certificates():
    """Never relay to the certificate's own origin, to the peer that
    sent it to us, or below the round horizon."""
    _, _, _, protocols, _ = certified_cluster(size=6)
    protocol = protocols[0]
    stale = fake_certificate(4, 6 - PIGGYBACK_DEPTH - 1)
    fresh = fake_certificate(5, 6)
    protocol._record_recent(stale)
    protocol._record_recent(fresh)
    protocol._note_peer_has(2, (fresh.origin, fresh.round))

    # Peer 5 is the fresh certificate's origin: never echoed back.
    assert all(c.origin != 5 for c in protocol._select_piggyback(5, 6))
    # Peer 2 provably has it (it sent it to us): not re-relayed.
    assert fresh not in protocol._select_piggyback(2, 6)
    # The stale certificate is below the depth horizon for everyone.
    assert all(c is not stale for c in protocol._select_piggyback(3, 6))
    # Never piggyback to ourselves.
    assert protocol._select_piggyback(0, 6) == ()


def test_propose_edges_retire_peer_deltas():
    """A peer's proposal edges are proof it holds those certificates —
    they drop out of the peer's future deltas."""
    from types import SimpleNamespace

    from repro.types import VertexId

    _, _, _, protocols, _ = certified_cluster(size=4)
    protocol = protocols[0]
    cited = fake_certificate(2, 5)
    uncited = fake_certificate(3, 5)
    protocol._record_recent(cited)
    protocol._record_recent(uncited)
    payload = SimpleNamespace(edges=frozenset({VertexId(5, 2)}))
    protocol._note_peer_edges(1, payload)
    delta = protocol._select_piggyback(1, 6)
    assert uncited in delta
    assert cited not in delta


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_piggyback_tables_stay_bounded(data):
    """Hammering the protocol with certificates, evidence, and stashed
    envelopes never grows any table past its cap."""
    _, _, _, protocols, _ = certified_cluster(size=4)
    protocol = protocols[0]
    origins = st.integers(min_value=0, max_value=2000)
    rounds = st.integers(min_value=1, max_value=2000)
    for _ in range(data.draw(st.integers(min_value=200, max_value=400), label="ops")):
        origin = data.draw(origins, label="origin")
        round_number = data.draw(rounds, label="round")
        certificate = fake_certificate(origin, round_number)
        action = data.draw(st.integers(min_value=0, max_value=2), label="action")
        if action == 0:
            protocol._record_recent(certificate)
        elif action == 1:
            protocol._note_peer_has(data.draw(st.integers(0, 3), label="peer"), (origin, round_number))
        else:
            envelope = PiggybackedPropose(
                origin=1,
                round=round_number,
                digest=bytes(32),
                payload=None,
                certificates=(certificate,),
            )
            protocol._handle_piggybacked_propose(1, envelope)
    assert len(protocol._recent_certificates) <= PIGGYBACK_RECENT_LIMIT
    assert len(protocol._pending_certificates) <= PIGGYBACK_PENDING_LIMIT
    for seen in protocol._peer_seen.values():
        assert len(seen) <= PIGGYBACK_SEEN_LIMIT


# -- stash semantics: hostile, duplicate, and valid certificates --------------


def test_hostile_piggybacked_certificate_sits_inert_and_never_heals():
    """A forged certificate rides into the stash but delivers nothing:
    recovery verifies, rejects, and discards it."""
    _, _, _, protocols, deliveries = certified_cluster(size=4)
    receiver = protocols[0]
    forged = CertificateMessage(
        origin=2, round=4, digest=b"\x00" * 32, payload="forged", signers=(1,)
    )
    envelope = PiggybackedPropose(
        origin=1, round=4, digest=b"\x01" * 32, payload=None, certificates=(forged,)
    )
    receiver.handle_message(1, envelope)
    receiver.handle_message(1, envelope)  # duplicate stash is idempotent
    assert list(receiver._pending_certificates) == [(2, 4)]
    assert deliveries[0] == []
    assert receiver.recover_certificate(2, 4) is False
    assert receiver.certificates_healed == 0
    assert deliveries[0] == []
    assert (2, 4) not in receiver._pending_certificates


def test_piggybacked_envelope_from_relay_is_not_stashed():
    """Only the proposal's own origin may attach certificates — a relayed
    envelope (sender != origin) stashes nothing."""
    _, _, _, protocols, _ = certified_cluster(size=4)
    receiver = protocols[0]
    certificate = fake_certificate(3, 4)
    envelope = PiggybackedPropose(
        origin=1, round=4, digest=b"\x01" * 32, payload=None, certificates=(certificate,)
    )
    receiver.handle_message(2, envelope)
    assert receiver._pending_certificates == {}


def standalone_receiver(committee, received):
    """A lone piggyback-enabled receiver on its own network (registered
    so its Ack replies have a live endpoint to send from)."""
    network = Network(Simulator(seed=0))
    receiver = CertifiedBroadcast(
        0,
        committee,
        network=network,
        on_deliver=received.append,
        piggyback_certificates=True,
    )
    for index in committee.validators:
        if index == 0:
            network.register(0, committee.region_of(0), receiver.handle_message)
        else:
            network.register(index, committee.region_of(index), lambda sender, message: None)
    return receiver


def test_valid_stash_heals_once_and_dedups_later_certificate():
    """A genuine stashed certificate heals exactly once; the real
    certificate arriving later is deduplicated."""
    committee, harvested = harvest_certificates()
    key, certificate = sorted(harvested.items())[0]
    received = []
    receiver = standalone_receiver(committee, received)
    sender = (certificate.origin + 1) % len(committee.validators)
    envelope = PiggybackedPropose(
        origin=sender,
        round=certificate.round,
        digest=b"\x01" * 32,
        payload=None,
        certificates=(certificate,),
    )
    receiver.handle_message(sender, envelope)
    assert received == []  # stash is passive: nothing delivered yet

    assert receiver.recover_certificate(*key) is True
    assert receiver.certificates_healed == 1
    assert [(d.origin, d.round) for d in received] == [key]

    # Stash is consumed; a second recovery finds nothing.
    assert receiver.recover_certificate(*key) is False
    # The real certificate arriving later is a duplicate, not a redelivery.
    receiver.handle_message(certificate.origin, certificate)
    assert len(received) == 1


def test_recover_after_delivery_reports_healed_without_redelivering():
    """Recovering a key whose payload already arrived returns True (the
    fetch is unnecessary) without delivering twice or counting a heal."""
    committee, harvested = harvest_certificates()
    key, certificate = sorted(harvested.items())[0]
    received = []
    receiver = standalone_receiver(committee, received)
    sender = (certificate.origin + 1) % len(committee.validators)
    envelope = PiggybackedPropose(
        origin=sender,
        round=certificate.round,
        digest=b"\x01" * 32,
        payload=None,
        certificates=(certificate,),
    )
    receiver.handle_message(sender, envelope)
    # The real certificate wins the race: delivered through the normal path.
    receiver.handle_message(certificate.origin, certificate)
    assert len(received) == 1

    assert receiver.recover_certificate(*key) is True
    assert receiver.certificates_healed == 0
    assert len(received) == 1
