"""Property-based tests for consensus safety.

The central safety property (Total Order) must hold no matter in which
order vertices reach a validator and no matter which subsets of validators
participate in each round.  These tests build one global DAG, then feed it
to independent consensus instances in different randomized orders and
check that all instances produce the same total order (prefix-wise) and
the same schedule history.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.committee import Committee
from repro.consensus.bullshark import BullsharkConsensus
from repro.core.manager import HammerHeadScheduleManager, StaticScheduleManager
from repro.core.schedule_change import CommitCountPolicy
from repro.dag.store import DagStore
from repro.dag.vertex import genesis_vertices, make_vertex
from repro.schedule.round_robin import initial_schedule


@st.composite
def dag_scenario(draw):
    """A random global DAG: committee size, rounds, per-round participants."""
    size = draw(st.integers(min_value=4, max_value=7))
    committee = Committee.build(size)
    rounds = draw(st.integers(min_value=4, max_value=12))
    quorum = committee.quorum_threshold
    participation = []
    for _ in range(rounds):
        participants = draw(
            st.lists(
                st.integers(min_value=0, max_value=size - 1),
                min_size=quorum,
                max_size=size,
                unique=True,
            )
        )
        participation.append(sorted(participants))
    shuffle_seed = draw(st.integers(min_value=0, max_value=10_000))
    return committee, participation, shuffle_seed


def build_global_dag(committee, participation):
    """All vertices of a run where each round's participants reference every
    vertex of the previous round."""
    vertices = list(genesis_vertices(committee))
    previous = [vertex.id for vertex in vertices]
    for round_number, participants in enumerate(participation, start=1):
        current = []
        for source in participants:
            vertex = make_vertex(round_number, source, edges=previous)
            vertices.append(vertex)
            current.append(vertex.id)
        previous = current
    return vertices


def run_consensus(committee, vertices, order_seed, dynamic):
    """Feed ``vertices`` to a fresh consensus instance in a random order."""
    dag = DagStore(committee)
    schedule = initial_schedule(committee, seed=0, permute=False)
    if dynamic:
        manager = HammerHeadScheduleManager(committee, schedule, policy=CommitCountPolicy(3))
    else:
        manager = StaticScheduleManager(committee, schedule)
    consensus = BullsharkConsensus(
        owner=0, committee=committee, dag=dag, schedule_manager=manager, record_sequence=True
    )
    shuffled = list(vertices)
    random.Random(order_seed).shuffle(shuffled)
    for vertex in shuffled:
        inserted_before = len(dag)
        dag.add(vertex)
        if len(dag) != inserted_before:
            consensus.try_commit()
    # One final attempt once everything is present.
    consensus.try_commit()
    return consensus, manager


class TestTotalOrderProperty:
    @given(dag_scenario())
    @settings(max_examples=40, deadline=None)
    def test_same_order_regardless_of_delivery_order_static(self, scenario):
        committee, participation, shuffle_seed = scenario
        vertices = build_global_dag(committee, participation)
        first, _ = run_consensus(committee, vertices, order_seed=shuffle_seed, dynamic=False)
        second, _ = run_consensus(committee, vertices, order_seed=shuffle_seed + 1, dynamic=False)
        assert first.ordered_ids() == second.ordered_ids()
        assert first.ordering_digest == second.ordering_digest

    @given(dag_scenario())
    @settings(max_examples=40, deadline=None)
    def test_same_order_regardless_of_delivery_order_hammerhead(self, scenario):
        committee, participation, shuffle_seed = scenario
        vertices = build_global_dag(committee, participation)
        first, manager_a = run_consensus(committee, vertices, order_seed=shuffle_seed, dynamic=True)
        second, manager_b = run_consensus(
            committee, vertices, order_seed=shuffle_seed + 17, dynamic=True
        )
        assert first.ordered_ids() == second.ordered_ids()
        # Schedule Agreement (Proposition 1): identical schedule histories.
        history_a = [(schedule.epoch, schedule.initial_round, schedule.slots) for schedule in manager_a.history]
        history_b = [(schedule.epoch, schedule.initial_round, schedule.slots) for schedule in manager_b.history]
        assert history_a == history_b

    @given(dag_scenario())
    @settings(max_examples=40, deadline=None)
    def test_no_duplicates_and_causal_order(self, scenario):
        committee, participation, shuffle_seed = scenario
        vertices = build_global_dag(committee, participation)
        consensus, _ = run_consensus(committee, vertices, order_seed=shuffle_seed, dynamic=True)
        ordered = consensus.ordered_ids()
        assert len(ordered) == len(set(ordered))
        # Causal order: a vertex never appears before one of its ancestors.
        positions = {vertex_id: index for index, vertex_id in enumerate(ordered)}
        by_id = {vertex.id: vertex for vertex in vertices}
        for vertex_id in ordered:
            vertex = by_id[vertex_id]
            for parent in vertex.edges:
                if parent in positions:
                    assert positions[parent] < positions[vertex_id]

    @given(dag_scenario())
    @settings(max_examples=30, deadline=None)
    def test_static_prefix_of_partial_delivery(self, scenario):
        """A validator that has seen only a prefix of the DAG orders a prefix
        of what a validator with the full DAG orders (no divergence)."""
        committee, participation, shuffle_seed = scenario
        vertices = build_global_dag(committee, participation)
        max_round = max(vertex.round for vertex in vertices)
        cutoff = max(2, max_round - 2)
        partial_vertices = [vertex for vertex in vertices if vertex.round <= cutoff]
        partial, _ = run_consensus(committee, partial_vertices, order_seed=shuffle_seed, dynamic=False)
        full, _ = run_consensus(committee, vertices, order_seed=shuffle_seed, dynamic=False)
        partial_ids = partial.ordered_ids()
        full_ids = full.ordered_ids()
        assert partial_ids == full_ids[: len(partial_ids)]
