"""Differential properties: incremental commit scan vs the seed rescan.

The incremental commit path (dirty anchor-round tracking, see
``BullsharkConsensus._find_committable_incremental``) and the round-indexed
reachability cache (``DagStore.reachable_sources``) are pure optimizations:
for any insertion sequence, any fault pattern, any GC horizon movement, and
any schedule-manager dynamics they must order exactly the vertices the
original implementation ordered, in the same order.  These tests run both
implementations side by side over randomized scenarios and demand
byte-identical ordering digests after every single step.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.committee import Committee
from repro.consensus.bullshark import BullsharkConsensus
from repro.core.manager import HammerHeadScheduleManager, StaticScheduleManager
from repro.core.schedule_change import CommitCountPolicy
from repro.dag.store import DagStore
from repro.dag.vertex import genesis_vertices, make_vertex
from repro.schedule.round_robin import initial_schedule


@st.composite
def equivalence_scenario(draw):
    """A randomized run: DAG shape, insertion order, GC and state sync."""
    size = draw(st.integers(min_value=4, max_value=7))
    committee = Committee.build(size)
    rounds = draw(st.integers(min_value=6, max_value=16))
    quorum = committee.quorum_threshold
    rng_seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(rng_seed)
    participation = []
    for _ in range(rounds):
        participants = draw(
            st.lists(
                st.integers(min_value=0, max_value=size - 1),
                min_size=quorum,
                max_size=size,
                unique=True,
            )
        )
        participation.append(sorted(participants))
    dynamic = draw(st.booleans())
    commits_per_schedule = draw(st.integers(min_value=2, max_value=5))
    # Sprinkle GC calls (with varying keep windows) over the stream, and
    # possibly one state-sync fast-forward.
    gc_probability = draw(st.floats(min_value=0.0, max_value=0.3))
    keep_rounds = draw(st.integers(min_value=2, max_value=8))
    fast_forward_round = draw(st.one_of(st.none(), st.integers(min_value=2, max_value=rounds)))
    return (
        committee,
        participation,
        rng,
        dynamic,
        commits_per_schedule,
        gc_probability,
        keep_rounds,
        fast_forward_round,
    )


def build_vertices(committee, participation, rng):
    """A global DAG where each vertex links to a random parent quorum.

    Random sub-quorum edge selection produces skipped anchors and varying
    vote patterns, which is what exercises the commit rule.
    """
    vertices = list(genesis_vertices(committee))
    previous = [vertex.id for vertex in vertices]
    quorum = committee.quorum_threshold
    for round_number, participants in enumerate(participation, start=1):
        current = []
        for source in participants:
            if len(previous) > quorum and rng.random() < 0.5:
                edge_count = rng.randint(quorum, len(previous))
                edges = rng.sample(previous, edge_count)
            else:
                edges = list(previous)
            current.append(make_vertex(round_number, source, edges=edges))
        vertices.extend(current)
        previous = [vertex.id for vertex in current]
    return vertices


def make_engine(committee, dynamic, commits_per_schedule, incremental):
    dag = DagStore(committee, cache_reachability=incremental)
    schedule = initial_schedule(committee, seed=0, permute=False)
    if dynamic:
        manager = HammerHeadScheduleManager(
            committee, schedule, policy=CommitCountPolicy(commits_per_schedule)
        )
    else:
        manager = StaticScheduleManager(committee, schedule)
    return BullsharkConsensus(
        owner=0,
        committee=committee,
        dag=dag,
        schedule_manager=manager,
        record_sequence=True,
        incremental=incremental,
    )


@given(equivalence_scenario())
@settings(max_examples=40, deadline=None)
def test_incremental_path_orders_identically(scenario):
    (
        committee,
        participation,
        rng,
        dynamic,
        commits_per_schedule,
        gc_probability,
        keep_rounds,
        fast_forward_round,
    ) = scenario
    vertices = build_vertices(committee, participation, rng)
    stream = list(vertices)
    rng.shuffle(stream)
    # Drop a small suffix of the stream entirely: those vertices stay
    # parked on missing parents until GC purges or promotes them.
    withheld = set()
    if len(stream) > 8 and rng.random() < 0.5:
        for vertex in rng.sample(stream, rng.randint(1, 3)):
            withheld.add(vertex.id)
    new_engine = make_engine(committee, dynamic, commits_per_schedule, incremental=True)
    old_engine = make_engine(committee, dynamic, commits_per_schedule, incremental=False)
    fast_forward_at = rng.randint(0, len(stream) - 1) if fast_forward_round else -1
    for position, vertex in enumerate(stream):
        if vertex.id in withheld:
            continue
        # Draw every random decision once per step so both engines see the
        # exact same schedule of insertions, GCs, and state syncs.
        do_gc = gc_probability > 0.0 and rng.random() < gc_probability
        for engine in (new_engine, old_engine):
            engine.dag.add(vertex)
            engine.try_commit()
            if do_gc:
                engine.garbage_collect(keep_rounds=keep_rounds)
        if position == fast_forward_at:
            for engine in (new_engine, old_engine):
                engine.fast_forward(fast_forward_round)
                engine.try_commit()
        assert new_engine.ordering_digest == old_engine.ordering_digest, (
            f"divergence at step {position}"
        )
        assert new_engine.ordered_count == old_engine.ordered_count
        assert new_engine.last_ordered_anchor_round == old_engine.last_ordered_anchor_round
    new_engine.try_commit()
    old_engine.try_commit()
    assert new_engine.ordering_digest == old_engine.ordering_digest
    assert new_engine.ordered_ids() == old_engine.ordered_ids()
    assert new_engine.commit_count == old_engine.commit_count
    assert [s.epoch for s in new_engine.schedule_manager.history] == [
        s.epoch for s in old_engine.schedule_manager.history
    ]


@given(equivalence_scenario())
@settings(max_examples=25, deadline=None)
def test_reachability_cache_matches_bfs(scenario):
    """Cached ``path()`` answers equal the reference BFS on random DAGs."""
    committee, participation, rng, _, _, _, keep_rounds, _ = scenario
    vertices = build_vertices(committee, participation, rng)
    stream = list(vertices)
    rng.shuffle(stream)
    cached = DagStore(committee, cache_reachability=True)
    reference = DagStore(committee, cache_reachability=False)
    inserted = []
    for position, vertex in enumerate(stream):
        cached.add(vertex)
        reference.add(vertex)
        if vertex.id in cached:
            inserted.append(vertex)
        # Interleave queries with insertions so the cache is exercised
        # against a growing DAG, not just the final one.
        if inserted and position % 3 == 0:
            for _ in range(4):
                descendant = rng.choice(inserted)
                ancestor = rng.choice(inserted)
                if ancestor.round > descendant.round:
                    descendant, ancestor = ancestor, descendant
                assert cached.path(descendant.id, ancestor.id) == reference.path(
                    descendant.id, ancestor.id
                ), f"path({descendant.id}, {ancestor.id}) diverged"
        if position % 7 == 0 and cached.highest_round() > keep_rounds:
            horizon = cached.highest_round() - keep_rounds
            cached.garbage_collect(horizon)
            reference.garbage_collect(horizon)
            inserted = [v for v in inserted if v.id in cached]
    # Exhaustive sweep at the end.
    for descendant in inserted:
        for ancestor in inserted:
            if ancestor.round >= descendant.round:
                continue
            assert cached.path(descendant.id, ancestor.id) == reference.path(
                descendant.id, ancestor.id
            )
    # The public reachable_sources() entry point must agree between the
    # memoized and BFS-backed (cache_reachability=False) implementations.
    for descendant in inserted[:8]:
        for target_round in range(max(0, descendant.round - 4), descendant.round):
            assert cached.reachable_sources(
                descendant.id, target_round
            ) == reference.reachable_sources(descendant.id, target_round)