"""Property-based tests for hashing, stake arithmetic, latency statistics,
and the event queue."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import digest_of
from repro.metrics.latency import LatencyStats
from repro.network.events import EventQueue
from repro.types import quorum_threshold, split_evenly, validity_threshold

# Values the canonical serializer supports.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.text(max_size=30),
    st.binary(max_size=30),
)
canonical_values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


class TestHashingProperties:
    @given(canonical_values)
    @settings(max_examples=200)
    def test_digest_is_deterministic(self, value):
        assert digest_of(value) == digest_of(value)

    @given(canonical_values)
    @settings(max_examples=200)
    def test_digest_is_32_bytes(self, value):
        assert len(digest_of(value)) == 32

    @given(st.dictionaries(st.text(max_size=6), st.integers(), min_size=1, max_size=6))
    @settings(max_examples=100)
    def test_dict_digest_ignores_insertion_order(self, mapping):
        reversed_mapping = dict(reversed(list(mapping.items())))
        assert digest_of(mapping) == digest_of(reversed_mapping)

    @given(st.lists(st.integers(), min_size=2, max_size=6, unique=True))
    @settings(max_examples=100)
    def test_list_digest_depends_on_order(self, values):
        assert digest_of(values) != digest_of(list(reversed(values)))


class TestStakeThresholdProperties:
    @given(st.integers(min_value=1, max_value=10**9))
    def test_quorum_majority(self, total):
        # Any two quorums overlap in more than f stake.
        assert 2 * quorum_threshold(total) > total

    @given(st.integers(min_value=1, max_value=10**9))
    def test_quorum_and_validity_intersect(self, total):
        assert quorum_threshold(total) + validity_threshold(total) > total

    @given(st.integers(min_value=1, max_value=10**9))
    def test_thresholds_do_not_exceed_total(self, total):
        assert validity_threshold(total) <= quorum_threshold(total) <= total + 1

    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=1, max_value=500))
    def test_split_evenly_preserves_total_and_balance(self, amount, parts):
        split = split_evenly(amount, parts)
        assert sum(split) == amount
        assert len(split) == parts
        assert max(split) - min(split) <= 1


class TestLatencyStatsProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
    @settings(max_examples=150)
    def test_percentiles_are_monotone_and_bounded(self, samples):
        stats = LatencyStats()
        stats.extend(samples)
        assert min(samples) <= stats.p50() <= stats.p95() <= stats.p99() <= max(samples)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
    @settings(max_examples=150)
    def test_average_is_bounded_by_extremes(self, samples):
        stats = LatencyStats()
        stats.extend(samples)
        assert min(samples) - 1e-9 <= stats.average() <= max(samples) + 1e-9

    @given(st.lists(st.floats(min_value=0.0, max_value=1e3, allow_nan=False), min_size=2, max_size=100))
    @settings(max_examples=100)
    def test_stdev_is_non_negative_and_finite(self, samples):
        stats = LatencyStats()
        stats.extend(samples)
        assert stats.stdev() >= 0.0
        assert math.isfinite(stats.stdev())


class TestEventQueueProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=100))
    @settings(max_examples=100)
    def test_events_pop_in_non_decreasing_time_order(self, times):
        queue = EventQueue()
        for time in times:
            queue.push(time, lambda: None)
        popped = []
        while len(queue):
            popped.append(queue.pop().time)
        assert popped == sorted(times)

    @given(
        st.lists(
            st.tuples(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), st.booleans()),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=100)
    def test_cancelled_events_never_pop(self, entries):
        queue = EventQueue()
        expected = []
        for time, keep in entries:
            handle = queue.push(time, lambda: None)
            if keep:
                expected.append(time)
            else:
                handle.cancel()
                queue.note_cancelled()
        popped = []
        while len(queue):
            popped.append(queue.pop().time)
        assert popped == sorted(expected)
