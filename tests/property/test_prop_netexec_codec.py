"""Property suite for the netexec wire codec (satellite of the net backend).

The contract pinned here is what the socket transport stands on:

* ``decode(encode(m)) == m`` for **every registered message type** and
  every value shape they carry (round-trip identity),
* ``encode(decode(encode(m))) == encode(m)`` (canonical idempotence —
  re-encoding a decoded value reproduces the exact bytes, which is what
  makes frames comparable across processes),
* equal sets/dicts encode identically whatever their insertion order
  (canonical container ordering),
* arbitrary garbage fed to the decoder raises :class:`CodecError` or
  returns a value — it never hangs, loops, or escapes with a different
  exception type,
* every strict prefix of a valid encoding is rejected (truncation can
  never be mistaken for a complete value).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import vertex_digest
from repro.dag.vertex import Vertex
from repro.netexec.codec import (
    CodecError,
    FrameError,
    Hello,
    decode,
    decode_frames,
    encode,
    encode_frame,
)
from repro.node.messages import ConsensusSnapshot, FetchRequest, FetchResponse
from repro.rbc.messages import (
    AckMessage,
    BroadcastMessage,
    CertificateBatch,
    CertificateMessage,
    EchoMessage,
    PiggybackedPropose,
    ProposeMessage,
    ReadyMessage,
)
from repro.schedule.base import LeaderSchedule
from repro.types import VertexId
from repro.workload.transactions import Transaction

# -- strategies over the wire vocabulary --------------------------------------------

validator_ids = st.integers(min_value=0, max_value=49)
rounds = st.integers(min_value=0, max_value=500)
digests = st.binary(min_size=32, max_size=32)
wire_floats = st.floats(allow_nan=False, allow_infinity=True, width=64)

vertex_ids = st.builds(VertexId, round=rounds, source=validator_ids)

transactions = st.builds(
    Transaction,
    tx_id=st.integers(min_value=0, max_value=10**9),
    client_id=validator_ids,
    submitted_at=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    target_validator=validator_ids,
    kind=st.sampled_from(["counter_increment", "transfer"]),
    payload_bytes=st.integers(min_value=0, max_value=4096),
)


@st.composite
def vertices(draw):
    """A structurally valid vertex whose carried digest is the true one.

    The codec integrity-checks the digest on decode, so the strategy must
    produce internally consistent vertices (a forged digest is a *unit*
    test, not a round-trip property).
    """
    round_number = draw(st.integers(min_value=1, max_value=50))
    source = draw(validator_ids)
    edge_sources = draw(st.frozensets(validator_ids, min_size=1, max_size=6))
    edges = frozenset(VertexId(round_number - 1, s) for s in edge_sources)
    block = tuple(draw(st.lists(transactions, max_size=3)))
    digest = vertex_digest(round_number, source, sorted(edges), len(block))
    created_at = draw(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    return Vertex(
        id=VertexId(round_number, source),
        edges=edges,
        block=block,
        digest=digest,
        created_at=created_at,
    )


@st.composite
def leader_schedules(draw):
    return LeaderSchedule(
        epoch=draw(st.integers(min_value=0, max_value=30)),
        initial_round=2 * draw(st.integers(min_value=0, max_value=100)),
        slots=tuple(draw(st.lists(validator_ids, min_size=1, max_size=8))),
    )


@st.composite
def snapshots(draw):
    return ConsensusSnapshot(
        last_ordered_anchor_round=draw(rounds),
        gc_round=draw(rounds),
        schedules=tuple(draw(st.lists(leader_schedules(), max_size=3))),
        scores=draw(st.dictionaries(validator_ids, wire_floats, max_size=6)),
        commits_in_epoch=draw(st.integers(min_value=0, max_value=100)),
        ordered_vertices=draw(st.frozensets(vertex_ids, max_size=8)),
        vote_accounting=draw(
            st.none()
            | st.tuples(
                st.tuples(st.integers(0, 9), st.integers(0, 9)),
                st.tuples(st.integers(0, 9)),
            )
        ),
    )


certificates = st.builds(
    CertificateMessage,
    origin=validator_ids,
    round=rounds,
    digest=digests,
    payload=st.none() | vertices(),
    signers=st.lists(validator_ids, max_size=6).map(tuple),
)

messages = st.one_of(
    st.builds(Hello, node_id=validator_ids),
    vertex_ids,
    vertices(),
    transactions,
    leader_schedules(),
    snapshots(),
    st.builds(
        FetchRequest,
        requester=validator_ids,
        missing=st.lists(vertex_ids, max_size=6).map(tuple),
        deep=st.booleans(),
    ),
    st.builds(
        FetchResponse,
        responder=validator_ids,
        vertices=st.lists(vertices(), max_size=3).map(tuple),
        responder_gc_round=rounds,
        snapshot=st.none() | snapshots(),
    ),
    st.builds(BroadcastMessage, origin=validator_ids, round=rounds, digest=digests),
    st.builds(
        ProposeMessage,
        origin=validator_ids,
        round=rounds,
        digest=digests,
        payload=st.none() | vertices(),
    ),
    st.builds(
        AckMessage,
        origin=validator_ids,
        round=rounds,
        digest=digests,
        voter=validator_ids,
    ),
    certificates,
    st.builds(
        PiggybackedPropose,
        origin=validator_ids,
        round=rounds,
        digest=digests,
        payload=st.none() | vertices(),
        certificates=st.lists(certificates, max_size=3).map(tuple),
    ),
    st.builds(
        CertificateBatch,
        origin=validator_ids,
        round=rounds,
        digest=digests,
        certificates=st.lists(certificates, max_size=3).map(tuple),
    ),
    st.builds(
        EchoMessage,
        origin=validator_ids,
        round=rounds,
        digest=digests,
        payload=st.none() | vertices(),
    ),
    st.builds(ReadyMessage, origin=validator_ids, round=rounds, digest=digests),
)


class TestRoundTrip:
    @given(messages)
    @settings(max_examples=300, deadline=None)
    def test_decode_encode_is_identity(self, message):
        assert decode(encode(message)) == message
        assert type(decode(encode(message))) is type(message)

    @given(messages)
    @settings(max_examples=300, deadline=None)
    def test_reencoding_is_canonical(self, message):
        wire = encode(message)
        assert encode(decode(wire)) == wire

    @given(st.lists(messages, min_size=1, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_frame_stream_round_trips(self, batch):
        stream = b"".join(encode_frame(message) for message in batch)
        values, remainder = decode_frames(stream)
        assert list(values) == batch
        assert remainder == b""

    @given(st.lists(messages, min_size=1, max_size=3), st.integers(min_value=1))
    @settings(max_examples=100, deadline=None)
    def test_partial_trailing_frame_is_kept_not_decoded(self, batch, cut):
        stream = b"".join(encode_frame(message) for message in batch)
        tail = encode_frame(batch[0])
        cut = cut % len(tail)  # strict prefix of the extra frame
        buffer = stream + tail[:cut]
        values, remainder = decode_frames(buffer)
        assert list(values) == batch
        assert remainder == tail[:cut]


class TestCanonicalContainers:
    @given(st.lists(vertex_ids, min_size=2, max_size=8, unique=True))
    @settings(max_examples=100, deadline=None)
    def test_set_encoding_ignores_insertion_order(self, ids):
        forward = frozenset(ids)
        backward = frozenset(reversed(ids))
        assert encode(forward) == encode(backward)

    @given(st.dictionaries(validator_ids, wire_floats, min_size=2, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_dict_encoding_ignores_insertion_order(self, mapping):
        reversed_order = dict(reversed(list(mapping.items())))
        assert encode(mapping) == encode(reversed_order)


class TestAdversarialInput:
    @given(st.binary(max_size=200))
    @settings(max_examples=500, deadline=None)
    def test_garbage_never_escapes_codec_error(self, blob):
        """Arbitrary bytes either decode or raise CodecError — nothing else."""
        try:
            decode(blob)
        except CodecError:
            pass

    @given(messages, st.integers(min_value=0))
    @settings(max_examples=200, deadline=None)
    def test_every_strict_prefix_is_rejected(self, message, cut):
        wire = encode(message)
        cut = cut % len(wire)
        try:
            decode(wire[:cut])
        except CodecError:
            return
        raise AssertionError(
            f"truncated encoding ({cut}/{len(wire)} bytes) decoded successfully"
        )

    @given(st.binary(max_size=64))
    @settings(max_examples=300, deadline=None)
    def test_frame_stream_garbage_raises_or_returns(self, blob):
        try:
            decode_frames(blob)
        except (FrameError, CodecError):
            pass
