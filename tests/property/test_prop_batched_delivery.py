"""Differential properties of the batched certificate fan-out.

The ``CertificateBatch`` wire format (``NodeConfig.certificate_batching``)
is a pure envelope change: batched and unbatched runs must issue the same
number of transport sends in the same order, consume the identical RNG
stream, and therefore produce byte-identical DAGs and ordering digests —
across committee sizes, fault plans, and loss windows.  These tests run
both wire formats side by side and demand full equality, and additionally
replay the batched run's persisted DAG through the *seed* commit path
(``BullsharkConsensus(incremental=False)`` — the rescan oracle kept from
the original implementation) to pin the ordering digest to the seed
semantics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.committee import Committee
from repro.consensus.bullshark import BullsharkConsensus
from repro.dag.store import DagStore
from repro.faults.partition import NetworkDisturbanceFault
from repro.network.latency import UniformLatencyModel
from repro.network.simulator import Simulator
from repro.network.transport import Network
from repro.rbc.certified import CertifiedBroadcast
from repro.rbc.messages import CertificateBatch, CertificateMessage
from repro.sim.experiment import ExperimentConfig
from repro.sim.runner import SimulationRunner
from repro.storage.store import PersistentStore


def run_runner(config: ExperimentConfig) -> SimulationRunner:
    runner = SimulationRunner(config)
    runner.run()
    return runner


def dag_state(runner: SimulationRunner):
    """Full per-validator DAG fingerprint: stored ids, digests, pending."""
    state = {}
    for validator, node in runner.nodes.items():
        state[validator] = (
            sorted((vertex.id, vertex.digest) for vertex in node.dag),
            sorted(vertex.id for vertex in node.dag.pending_vertices()),
            node.dag.lowest_round,
            node.consensus.ordering_digest,
            node.consensus.ordered_count,
        )
    return state


def loss_window(duration):
    """A mid-run loss+jitter window covering a third of the run."""
    return (
        NetworkDisturbanceFault(
            jitter=0.02, loss_rate=0.12, start=duration / 4, end=duration / 2
        ),
    )


BATCH_CASES = [
    # (committee_size, faults, with_loss_window, protocol, duration)
    pytest.param(10, 3, False, "hammerhead", 8.0, id="committee10-faults"),
    pytest.param(10, 0, True, "bullshark", 8.0, id="committee10-loss-window"),
    pytest.param(25, 8, False, "hammerhead", 5.0, id="committee25-faults"),
    pytest.param(25, 0, True, "hammerhead", 5.0, id="committee25-loss-window"),
    pytest.param(50, 16, False, "bullshark", 4.0, id="committee50-faults"),
]


@pytest.mark.parametrize("size,faults,with_loss,protocol,duration", BATCH_CASES)
def test_batched_equals_unbatched(size, faults, with_loss, protocol, duration):
    """Same DAG state and ordering digest with batching on and off."""
    base = ExperimentConfig(
        protocol=protocol,
        committee_size=size,
        faults=faults,
        fault_time=duration / 3 if faults else 0.0,
        input_load_tps=600.0,
        duration=duration,
        warmup=1.0,
        seed=7,
        commits_per_schedule=4,
        extra_faults=loss_window(duration) if with_loss else (),
        latency_model="geo",
    )
    batched = run_runner(base.with_overrides(certificate_batching=True))
    unbatched = run_runner(base.with_overrides(certificate_batching=False))
    # The envelope never changes how many sends happen or when.
    assert batched.network.stats.as_dict() == unbatched.network.stats.as_dict()
    assert dag_state(batched) == dag_state(unbatched)


@pytest.mark.parametrize(
    "size,protocol", [(10, "bullshark"), (25, "hammerhead")], ids=["b10", "h25"]
)
def test_batched_run_matches_seed_commit_oracle(size, protocol):
    """Replaying the batched run's persisted DAG through the seed rescan
    path (``incremental=False``) reproduces the live ordering digest."""
    config = ExperimentConfig(
        protocol=protocol,
        committee_size=size,
        faults=0,
        input_load_tps=500.0,
        duration=6.0,
        warmup=1.0,
        seed=11,
        commits_per_schedule=5,
        latency_model="geo",
    )
    runner = run_runner(config)
    observer = runner.nodes[config.observer]
    vertices = sorted(
        (value for _, value in observer.store.family(PersistentStore.CF_VERTICES).items()),
        key=lambda vertex: (vertex.round, vertex.source),
    )
    oracle_dag = DagStore(runner.committee)
    oracle = BullsharkConsensus(
        owner=config.observer,
        committee=runner.committee,
        dag=oracle_dag,
        schedule_manager=runner._schedule_manager_factory()(),
        record_sequence=False,
        incremental=False,
    )
    oracle_dag.on_insert(oracle.process_vertex)
    for vertex in vertices:
        oracle_dag.add(vertex)
    assert oracle.ordering_digest == observer.consensus.ordering_digest
    assert oracle.ordered_count == observer.consensus.ordered_count


# -- protocol-level batch semantics ------------------------------------------


def certified_cluster(size=4, seed=3, batch=True):
    committee = Committee.build(size)
    simulator = Simulator(seed=seed)
    network = Network(
        simulator, latency_model=UniformLatencyModel(base_delay=0.01, jitter=0.002)
    )
    deliveries = {index: [] for index in range(size)}
    protocols = {}
    for index in range(size):
        protocol = CertifiedBroadcast(
            index,
            committee,
            network,
            lambda delivery, index=index: deliveries[index].append(delivery),
            batch_certificates=batch,
        )
        protocols[index] = protocol
        network.register(
            index,
            committee.region_of(index),
            lambda sender, message, index=index: protocols[index].handle_message(
                sender, message
            ),
        )
    return committee, simulator, network, protocols, deliveries


def harvest_certificates(rounds=3, size=4):
    """Real certificates produced by running the certified protocol."""
    committee, simulator, network, protocols, _ = certified_cluster(size=size)
    collected = {}

    original = Network.broadcast

    def capture(self, sender, message, include_self=True):
        if isinstance(message, CertificateBatch):
            for certificate in message.certificates:
                collected[(certificate.origin, certificate.round)] = certificate
        elif isinstance(message, CertificateMessage):
            collected[(message.origin, message.round)] = message
        return original(self, sender, message, include_self)

    Network.broadcast = capture
    try:
        for round_number in range(1, rounds + 1):
            for index in protocols:
                protocols[index].broadcast(f"payload-{index}-{round_number}", round_number)
            simulator.run_until_idle(max_time=10.0 * round_number)
    finally:
        Network.broadcast = original
    return committee, collected


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_batch_split_dedup_matches_individual_delivery(data):
    """Splitting a CertificateBatch delivers exactly what the same
    certificates deliver individually: same set, same order, duplicates
    and invalid certificates ignored in both modes."""
    committee, certificates = harvest_certificates()
    pool = sorted(certificates.values(), key=lambda c: (c.round, c.origin))
    chosen = data.draw(
        st.lists(st.sampled_from(pool), min_size=1, max_size=8), label="certs"
    )
    # Possibly corrupt some into invalid certificates (insufficient
    # signers); both paths must skip them.
    corrupted = []
    for certificate in chosen:
        if data.draw(st.booleans(), label="corrupt"):
            corrupted.append(
                CertificateMessage(
                    origin=certificate.origin,
                    round=certificate.round,
                    digest=certificate.digest,
                    payload=certificate.payload,
                    signers=certificate.signers[:1],
                )
            )
        else:
            corrupted.append(certificate)

    def fresh_receiver():
        received = []
        protocol = CertifiedBroadcast(
            0,
            committee,
            network=Network(Simulator(seed=0)),
            on_deliver=received.append,
        )
        return protocol, received

    batch_protocol, batch_deliveries = fresh_receiver()
    batch = CertificateBatch(
        origin=1, round=corrupted[0].round, digest=corrupted[0].digest,
        certificates=tuple(corrupted),
    )
    assert batch_protocol.handle_message(1, batch) is True

    single_protocol, single_deliveries = fresh_receiver()
    for certificate in corrupted:
        single_protocol.handle_message(1, certificate)

    assert [
        (d.origin, d.round, d.payload) for d in batch_deliveries
    ] == [(d.origin, d.round, d.payload) for d in single_deliveries]
    delivered_keys = [(d.origin, d.round) for d in batch_deliveries]
    assert len(delivered_keys) == len(set(delivered_keys))


def test_batch_ingest_parks_and_promotes_out_of_order_vertices():
    """Batched ingest interacts with ``DagStore._pending`` exactly like
    sequential delivery: a child arriving before its parent (inside one
    batch) parks and is promoted once the parent is split out."""
    from tests.conftest import build_round
    from repro.dag.vertex import genesis_vertices

    committee = Committee.build(4)
    reference = DagStore(committee)
    genesis = list(genesis_vertices(committee))
    for vertex in genesis:
        reference.add(vertex)
    round1 = build_round(reference, committee, 1)
    round2 = build_round(reference, committee, 2)

    out_of_order = DagStore(committee)
    for vertex in genesis:
        out_of_order.add(vertex)
    # Children first: every round-2 vertex parks...
    for vertex in round2:
        out_of_order.add(vertex)
    assert out_of_order.pending_count == len(round2)
    # ...until the parents arrive (later in the same batch) and the
    # whole buffer promotes.
    for vertex in round1:
        out_of_order.add(vertex)
    assert out_of_order.pending_count == 0
    assert sorted(v.id for v in out_of_order) == sorted(v.id for v in reference)
