"""Differential properties: bitmask quorum arithmetic vs the tuple API.

The committee-100 fast path encodes validator subsets as int bitmasks
(``StakeVector.mask_stake`` / ``mask_has_quorum`` / ``mask_of_validators``
/ ``validators_of_mask``).  Every mask operation must agree bit for bit
with the tuple-based API it replaces — across uniform, geometric, and
Zipfian stake distributions, and under duplicate validator ids (which the
tuple fallback dedups and the bitmask collapses by construction).  These
properties are what license the RBC and consensus layers to swap tuples
for masks without a digest audit per call site.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.committee.stake import (
    StakeVector,
    equal_stake,
    geometric_stake,
    zipfian_stake,
)
from repro.errors import CommitteeError

DISTRIBUTIONS = ("uniform", "geometric", "zipf")


def vector_for(kind: str, size: int) -> StakeVector:
    if kind == "uniform":
        return StakeVector(equal_stake(size).stakes)
    if kind == "geometric":
        return StakeVector(geometric_stake(size).stakes)
    return StakeVector(zipfian_stake(size).stakes)


@st.composite
def subset_case(draw):
    """A stake distribution plus a validator multiset (duplicates allowed)."""
    kind = draw(st.sampled_from(DISTRIBUTIONS))
    size = draw(st.integers(min_value=1, max_value=64))
    validators = draw(
        st.lists(
            st.integers(min_value=0, max_value=size - 1),
            min_size=0,
            max_size=2 * size,
        )
    )
    return kind, size, validators


@given(subset_case())
@settings(max_examples=200, deadline=None)
def test_mask_quorum_matches_signer_tuple_quorum(case):
    """mask_has_quorum == signer_tuple_has_quorum on the same subset.

    The tuple API receives the raw (possibly duplicated, unsorted) tuple
    — its defensive dedup fallback must agree with the mask, whose bits
    collapse duplicates by construction.
    """
    kind, size, validators = case
    vector = vector_for(kind, size)
    mask = vector.mask_of_validators(validators)
    assert vector.mask_has_quorum(mask) == vector.signer_tuple_has_quorum(
        tuple(validators)
    )


@given(subset_case())
@settings(max_examples=200, deadline=None)
def test_mask_stake_matches_stake_of_unique(case):
    kind, size, validators = case
    vector = vector_for(kind, size)
    unique = sorted(set(validators))
    mask = vector.mask_of_validators(validators)
    assert vector.mask_stake(mask) == vector.stake_of_unique(unique)
    assert vector.mask_meets_validity(mask) == (
        vector.stake_of_unique(unique) >= vector.validity
    )


@given(subset_case())
@settings(max_examples=200, deadline=None)
def test_mask_roundtrip_is_sorted_unique(case):
    """validators_of_mask(mask_of_validators(v)) == tuple(sorted(set(v))).

    Bit order *is* ascending id order — the invariant that lets the RBC
    layer build certificate signer tuples straight from ack masks and
    stay byte-identical to the historical sorted-set construction.
    """
    _, size, validators = case
    mask = StakeVector.mask_of_validators(validators)
    ids = StakeVector.validators_of_mask(mask)
    assert ids == tuple(sorted(set(validators)))
    assert StakeVector.mask_of_validators(ids) == mask


@given(
    st.sampled_from(DISTRIBUTIONS),
    st.integers(min_value=2, max_value=32),
)
@settings(max_examples=60, deadline=None)
def test_full_committee_and_empty_set(kind, size):
    vector = vector_for(kind, size)
    full = (1 << size) - 1
    assert vector.mask_stake(full) == vector.total
    assert vector.mask_has_quorum(full)
    assert vector.mask_stake(0) == 0
    assert not vector.mask_has_quorum(0)
    assert not vector.mask_meets_validity(0)


class TestMaskErrorPaths:
    def test_out_of_committee_bit_raises(self):
        vector = vector_for("uniform", 4)
        with pytest.raises(CommitteeError):
            vector.mask_stake(1 << 4)
        with pytest.raises(CommitteeError):
            vector.mask_has_quorum(1 << 10)

    def test_negative_mask_raises(self):
        vector = vector_for("geometric", 4)
        with pytest.raises(CommitteeError):
            vector.mask_stake(-1)

    def test_negative_validator_raises(self):
        with pytest.raises(CommitteeError):
            StakeVector.mask_of_validators([0, -1])

    def test_verdicts_are_memoized(self):
        vector = vector_for("zipf", 8)
        mask = StakeVector.mask_of_validators(range(6))
        before = vector.mask_cache_misses
        first = vector.mask_has_quorum(mask)
        second = vector.mask_has_quorum(mask)
        assert first == second
        assert vector.mask_cache_misses == before + 1
        assert vector.mask_cache_hits >= 1
