"""Property-based tests for DAG invariants and schedule-change invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.committee import Committee
from repro.core.schedule_change import compute_next_schedule, select_swap_sets
from repro.core.scores import ReputationScores
from repro.dag.store import DagStore
from repro.dag.vertex import genesis_vertices, make_vertex
from repro.schedule.base import LeaderSchedule
from repro.schedule.round_robin import initial_schedule
from repro.types import VertexId


# -- random DAG growth ---------------------------------------------------------------

committee_sizes = st.integers(min_value=4, max_value=10)


@st.composite
def dag_growth_plan(draw):
    """A random plan: committee size, rounds, and per-round participation."""
    size = draw(committee_sizes)
    committee = Committee.build(size)
    rounds = draw(st.integers(min_value=1, max_value=8))
    quorum = committee.quorum_threshold
    participation = []
    for _ in range(rounds):
        participants = draw(
            st.lists(
                st.integers(min_value=0, max_value=size - 1),
                min_size=quorum,
                max_size=size,
                unique=True,
            )
        )
        participation.append(sorted(participants))
    return committee, participation


def grow_dag(committee, participation, shuffle_seed=None):
    """Build a DAG following ``participation`` (who proposes per round)."""
    dag = DagStore(committee)
    vertices = list(genesis_vertices(committee))
    previous = {vertex.source: vertex.id for vertex in vertices}
    all_vertices = list(vertices)
    for round_index, participants in enumerate(participation, start=1):
        current = {}
        for source in participants:
            vertex = make_vertex(round_index, source, edges=list(previous.values()))
            current[source] = vertex.id
            all_vertices.append(vertex)
        previous = current
    return dag, all_vertices


class TestDagProperties:
    @given(dag_growth_plan())
    @settings(max_examples=60, deadline=None)
    def test_causal_completeness_in_any_insertion_order(self, plan):
        """Claim 1: a vertex only enters the DAG once its history is present,
        regardless of the order in which vertices arrive."""
        committee, participation = plan
        dag, vertices = grow_dag(committee, participation)
        # Insert in reverse round order (worst case for buffering).
        for vertex in sorted(vertices, key=lambda vertex: -vertex.round):
            dag.add(vertex)
            for inserted in list(dag):
                for parent in inserted.edges:
                    assert parent in dag
        # Everything was eventually inserted.
        assert len(dag) == len(vertices)
        assert dag.pending_count == 0

    @given(dag_growth_plan())
    @settings(max_examples=60, deadline=None)
    def test_path_respects_round_monotonicity(self, plan):
        committee, participation = plan
        dag, vertices = grow_dag(committee, participation)
        for vertex in vertices:
            dag.add(vertex)
        highest = dag.highest_round()
        if highest < 1:
            return
        top = dag.vertices_at(highest)[0]
        for target in dag.vertices_at(0):
            # Full participation by construction of edges: every round-0
            # vertex referenced by round-1 is reachable from any top vertex.
            if dag.path(top.id, target.id):
                assert target.round <= top.round

    @given(dag_growth_plan())
    @settings(max_examples=60, deadline=None)
    def test_causal_history_is_downward_closed(self, plan):
        committee, participation = plan
        dag, vertices = grow_dag(committee, participation)
        for vertex in vertices:
            dag.add(vertex)
        highest = dag.highest_round()
        root = dag.vertices_at(highest)[0]
        history = dag.causal_history(root.id)
        history_ids = {vertex.id for vertex in history}
        for vertex in history:
            for parent in vertex.edges:
                assert parent in history_ids


# -- schedule-change properties -----------------------------------------------------------


@st.composite
def scored_committee(draw):
    size = draw(st.integers(min_value=4, max_value=16))
    committee = Committee.build(size)
    scores = ReputationScores(committee)
    for validator in committee.validators:
        scores.add(validator, float(draw(st.integers(min_value=0, max_value=50))))
    fraction = draw(st.sampled_from([0.2, 1.0 / 3.0, 0.25]))
    return committee, scores, fraction


class TestScheduleChangeProperties:
    @given(scored_committee())
    @settings(max_examples=100, deadline=None)
    def test_swap_sets_are_disjoint_equal_size_and_within_budget(self, data):
        committee, scores, fraction = data
        demoted, promoted = select_swap_sets(scores, committee, exclude_fraction=fraction)
        assert len(demoted) == len(promoted)
        assert not set(demoted) & set(promoted)
        assert committee.stake(demoted) <= int(fraction * committee.total_stake)

    @given(scored_committee())
    @settings(max_examples=100, deadline=None)
    def test_demoted_have_no_higher_score_than_promoted(self, data):
        committee, scores, fraction = data
        demoted, promoted = select_swap_sets(scores, committee, exclude_fraction=fraction)
        if not demoted:
            return
        worst_promoted = min(scores.score_of(validator) for validator in promoted)
        best_demoted = max(scores.score_of(validator) for validator in demoted)
        assert best_demoted <= worst_promoted

    @given(scored_committee(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=100, deadline=None)
    def test_next_schedule_preserves_slot_count_and_membership(self, data, seed):
        committee, scores, fraction = data
        previous = initial_schedule(committee, seed=seed)
        next_schedule = compute_next_schedule(
            previous, scores, committee, new_initial_round=previous.initial_round + 20,
            exclude_fraction=fraction,
        )
        assert len(next_schedule.slots) == len(previous.slots)
        assert set(next_schedule.slots) <= set(committee.validators)
        assert next_schedule.epoch == previous.epoch + 1

    @given(scored_committee())
    @settings(max_examples=100, deadline=None)
    def test_untouched_validators_keep_their_slots(self, data):
        committee, scores, fraction = data
        previous = initial_schedule(committee, seed=1)
        demoted, _ = select_swap_sets(scores, committee, exclude_fraction=fraction)
        next_schedule = compute_next_schedule(
            previous, scores, committee, new_initial_round=previous.initial_round + 10,
            exclude_fraction=fraction,
        )
        for validator in committee.validators:
            if validator in demoted:
                continue
            assert next_schedule.slots_of(validator) >= previous.slots_of(validator)

    @given(scored_committee())
    @settings(max_examples=100, deadline=None)
    def test_schedule_change_is_deterministic(self, data):
        committee, scores, fraction = data
        previous = initial_schedule(committee, seed=2)
        first = compute_next_schedule(
            previous, scores, committee, new_initial_round=30, exclude_fraction=fraction
        )
        second = compute_next_schedule(
            previous, scores.snapshot(), committee, new_initial_round=30, exclude_fraction=fraction
        )
        assert first == second


class TestLeaderScheduleProperties:
    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=100)
    def test_leader_lookup_is_total_over_anchor_rounds(self, slot_count, epoch, offset):
        slots = tuple(range(slot_count))
        initial_round = 2 + 2 * (epoch % 5)
        schedule = LeaderSchedule(epoch=epoch, initial_round=initial_round, slots=slots)
        round_number = initial_round + 2 * offset
        leader = schedule.leader_for_round(round_number)
        assert leader in slots

    @given(st.integers(min_value=1, max_value=12))
    @settings(max_examples=50)
    def test_rotation_visits_all_slots_equally(self, slot_count):
        schedule = LeaderSchedule(epoch=0, initial_round=2, slots=tuple(range(slot_count)))
        leaders = [
            schedule.leader_for_round(2 + 2 * index) for index in range(slot_count * 3)
        ]
        for slot in range(slot_count):
            assert leaders.count(slot) == 3
