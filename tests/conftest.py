"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import pytest

from repro.committee import Committee, equal_stake
from repro.consensus.bullshark import BullsharkConsensus
from repro.core.manager import HammerHeadScheduleManager, StaticScheduleManager
from repro.dag.store import DagStore
from repro.dag.vertex import Vertex, genesis_vertices, make_vertex
from repro.network.latency import UniformLatencyModel
from repro.network.simulator import Simulator
from repro.network.transport import Network
from repro.schedule.round_robin import initial_schedule
from repro.types import Round, ValidatorId, VertexId


@pytest.fixture
def committee4() -> Committee:
    """A minimal committee tolerating one fault (n=4, f=1)."""
    return Committee.build(4)


@pytest.fixture
def committee7() -> Committee:
    """A committee of seven validators (f=2)."""
    return Committee.build(7)


@pytest.fixture
def committee10() -> Committee:
    """The smallest committee size used in the paper's evaluation."""
    return Committee.build(10)


@pytest.fixture
def simulator() -> Simulator:
    return Simulator(seed=7)


@pytest.fixture
def network(simulator) -> Network:
    return Network(simulator, latency_model=UniformLatencyModel(base_delay=0.01, jitter=0.0))


# -- DAG construction helpers -------------------------------------------------------


def build_round(
    dag: DagStore,
    committee: Committee,
    round_number: Round,
    sources: Optional[Iterable[ValidatorId]] = None,
    parent_sources: Optional[Dict[ValidatorId, Iterable[ValidatorId]]] = None,
) -> List[Vertex]:
    """Add one full round of vertices to ``dag``.

    ``sources`` selects which validators produce a vertex (default: all).
    ``parent_sources`` optionally restricts, per source, which previous
    round vertices are referenced (default: every vertex of the previous
    round currently in the DAG).
    """
    chosen = list(sources) if sources is not None else list(committee.validators)
    previous = {vertex.source: vertex.id for vertex in dag.vertices_at(round_number - 1)}
    created = []
    for source in chosen:
        if parent_sources is not None and source in parent_sources:
            parents = [previous[parent] for parent in parent_sources[source] if parent in previous]
        else:
            parents = list(previous.values())
        vertex = make_vertex(round_number, source, edges=parents)
        dag.add(vertex)
        created.append(vertex)
    return created


def populate_dag(
    dag: DagStore,
    committee: Committee,
    rounds: int,
    sources: Optional[Sequence[ValidatorId]] = None,
) -> None:
    """Fill ``dag`` with ``rounds`` full rounds on top of genesis."""
    for vertex in genesis_vertices(committee):
        dag.add(vertex)
    for round_number in range(1, rounds + 1):
        build_round(dag, committee, round_number, sources=sources)


def make_consensus(
    committee: Committee,
    dynamic: bool = False,
    commits_per_schedule: int = 10,
    seed: int = 0,
) -> BullsharkConsensus:
    """A consensus engine over a fresh DAG with genesis inserted."""
    dag = DagStore(committee)
    for vertex in genesis_vertices(committee):
        dag.add(vertex)
    schedule = initial_schedule(committee, seed=seed, permute=False)
    if dynamic:
        from repro.core.schedule_change import CommitCountPolicy

        manager = HammerHeadScheduleManager(
            committee, schedule, policy=CommitCountPolicy(commits_per_schedule)
        )
    else:
        manager = StaticScheduleManager(committee, schedule)
    return BullsharkConsensus(
        owner=0,
        committee=committee,
        dag=dag,
        schedule_manager=manager,
        record_sequence=True,
    )


def drive_rounds(
    consensus: BullsharkConsensus,
    committee: Committee,
    rounds: int,
    sources: Optional[Sequence[ValidatorId]] = None,
) -> None:
    """Grow the consensus engine's DAG round by round, processing commits."""
    dag = consensus.dag
    for round_number in range(1, rounds + 1):
        for vertex in build_round(dag, committee, round_number, sources=sources):
            consensus.process_vertex(vertex)


def vid(round_number: Round, source: ValidatorId) -> VertexId:
    """Shorthand vertex-id constructor for tests."""
    return VertexId(round=round_number, source=source)
