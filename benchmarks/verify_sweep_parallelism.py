#!/usr/bin/env python3
"""Verify SweepEngine parallelism: identical results, measured speedup.

ROADMAP debt: the sweep engine's multi-core fan-out was written on a
1-CPU dev container, where the parallel path could never be shown to
(a) produce byte-identical results to the serial path on real worker
processes, or (b) actually be faster.  This script settles both on a
multi-core host (the CI ``sweep-parallelism`` job):

1. Run a small sweep serially (``parallelism=1``).
2. Run the identical batch with ``parallelism`` from
   ``REPRO_SWEEP_PARALLELISM`` (default 2) — real worker processes.
3. **Assert** every ordering digest, ordered count, schedule-change
   count, and crashed-validator list matches the serial run exactly
   (exit 1 otherwise).
4. Record the wall-clock ratio in the job log.

The timing ratio is recorded, not gated: shared CI runners make
hard speedup thresholds flaky, and the correctness claim (identical
results) is the part a regression would silently break.  Set
``REPRO_SWEEP_MIN_SPEEDUP`` (e.g. ``1.3``) to opt in to gating on
machines you control.
"""

from __future__ import annotations

import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
_SRC = os.path.abspath(_SRC)
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.sim.experiment import ExperimentConfig  # noqa: E402
from repro.sim.sweep import PARALLELISM_ENV, SweepEngine  # noqa: E402


def build_configs():
    """A small but non-trivial batch: 2 protocols x 2 loads x 2 seeds.

    Heavy enough (~5s serial) that worker-process spawn overhead cannot
    mask a real 2-worker speedup on a multi-core runner.
    """
    configs = []
    for protocol in ("hammerhead", "bullshark"):
        for load in (1500.0, 3000.0):
            for seed in (1, 2):
                configs.append(
                    ExperimentConfig(
                        protocol=protocol,
                        committee_size=10,
                        input_load_tps=load,
                        duration=25.0,
                        warmup=5.0,
                        seed=seed,
                    )
                )
    return configs


def fingerprint(result):
    """Everything a parallelism bug could corrupt, digest first."""
    observer = result.config.observer
    return (
        result.config.label(),
        result.config.seed,
        result.ordering_digests[observer],
        result.report.schedule_changes,
        tuple(result.crashed_validators),
    )


def main() -> int:
    workers = int(os.environ.get(PARALLELISM_ENV, "2"))
    configs = build_configs()
    print(f"sweep batch: {len(configs)} experiments, workers={workers}")

    start = time.perf_counter()
    serial = SweepEngine(parallelism=1).run(configs)
    serial_s = time.perf_counter() - start
    print(f"serial   (parallelism=1): {serial_s:.2f}s")

    start = time.perf_counter()
    parallel = SweepEngine(parallelism=workers).run(configs)
    parallel_s = time.perf_counter() - start
    print(f"parallel (parallelism={workers}): {parallel_s:.2f}s")

    mismatches = 0
    for left, right in zip(serial, parallel):
        lf, rf = fingerprint(left), fingerprint(right)
        if lf != rf:
            mismatches += 1
            print(f"MISMATCH:\n  serial:   {lf}\n  parallel: {rf}")
    if mismatches:
        print(f"FAIL: {mismatches}/{len(configs)} results differ between "
              "serial and parallel execution")
        return 1
    print(f"OK: all {len(configs)} results identical (ordering digests, "
          "counts, schedules, crash lists)")

    ratio = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(f"speedup: {ratio:.2f}x (serial {serial_s:.2f}s / "
          f"parallel {parallel_s:.2f}s, {workers} workers, "
          f"{os.cpu_count()} CPUs visible)")
    floor = os.environ.get("REPRO_SWEEP_MIN_SPEEDUP", "").strip()
    if floor:
        if ratio < float(floor):
            print(f"FAIL: speedup {ratio:.2f}x below the "
                  f"REPRO_SWEEP_MIN_SPEEDUP={floor} floor")
            return 1
        print(f"speedup floor {floor}x satisfied")
    return 0


if __name__ == "__main__":
    sys.exit(main())
