#!/usr/bin/env python3
"""Recovery gate: certificate piggybacking must actually heal faster.

Two modes, one set of assertions:

* ``--bench BENCH.json`` checks the ``lossy_recovery`` stage of a bench
  document (``benchmarks/bench_hotpaths.py`` writes it): the
  piggyback-on variant must issue strictly fewer fetch round-trips than
  the off variant, must heal at least one certificate from the
  piggyback stash, must not stall parked vertices longer on average,
  and the two variants' committed prefixes must be consistent.
* ``--artifacts OFF.json ON.json`` checks a pair of scenario artifacts
  (the CI ``lossy-recovery-smoke`` job runs the ``lossy-recovery`` and
  ``lossy-recovery-piggyback`` scenarios and hands their artifacts
  here).  The same fetch/heal assertions read the artifacts' always-on
  counters; prefix consistency comes from the artifacts' checkpoint
  chains.  With ``--trace-off``/``--trace-on`` (the runs' JSONL trace
  files) the stall comparison is mined from the traces too.

Both modes print every check (pass and fail) and exit non-zero on any
failure, so CI output always shows the measured recovery numbers.

Usage::

    python benchmarks/check_recovery.py --bench BENCH_PR10.json
    python benchmarks/check_recovery.py --artifacts lr-off.json lr-on.json \\
        --trace-off lr-off.trace.jsonl --trace-on lr-on.trace.jsonl
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

# Allow running as a plain script from a source checkout.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.obs.consistency import checkpoint_chain, compare_prefixes


class Check:
    """One assertion outcome (printed pass or fail, CI-greppable)."""

    def __init__(self, name: str, ok: bool, detail: str) -> None:
        self.name = name
        self.ok = ok
        self.detail = detail


def _check_recovery_numbers(
    label: str,
    off: Dict[str, float],
    on: Dict[str, float],
) -> List[Check]:
    """The shared fetch/heal/stall assertions for one off/on pair.

    ``off``/``on`` are flat metric dicts: ``fetch_requests``,
    ``certificates_healed``, and optionally ``stall_avg``/``stall_count``
    (absent when no trace was supplied).
    """
    checks: List[Check] = []
    off_fetches = float(off.get("fetch_requests", 0.0))
    on_fetches = float(on.get("fetch_requests", 0.0))
    checks.append(
        Check(
            f"{label}: fewer fetch round-trips",
            on_fetches < off_fetches,
            f"piggyback on {on_fetches:.0f} vs off {off_fetches:.0f}",
        )
    )
    healed = float(on.get("certificates_healed", 0.0))
    checks.append(
        Check(
            f"{label}: certificates healed from the stash",
            healed > 0.0,
            f"{healed:.0f} healed (piggyback off healed "
            f"{float(off.get('certificates_healed', 0.0)):.0f}, as expected 0)",
        )
    )
    if "stall_avg" in off and "stall_avg" in on:
        off_avg = float(off["stall_avg"])
        on_avg = float(on["stall_avg"])
        checks.append(
            Check(
                f"{label}: park-to-promote stall no worse on average",
                on_avg <= off_avg,
                f"piggyback on {on_avg:.4f}s vs off {off_avg:.4f}s "
                f"({float(on.get('stall_count', 0.0)):.0f} / "
                f"{float(off.get('stall_count', 0.0)):.0f} parked vertices)",
            )
        )
    return checks


def check_bench_stage(stage: Dict[str, Any]) -> List[Check]:
    """All assertions over a bench document's ``lossy_recovery`` stage."""
    off = stage.get("piggyback_off") or {}
    on = stage.get("piggyback_on") or {}
    if not off or not on:
        return [Check("lossy_recovery stage present", False, "stage missing or incomplete")]

    def flat(variant: Dict[str, Any]) -> Dict[str, float]:
        recovery = variant.get("recovery") or {}
        return {
            "fetch_requests": float(variant.get("fetch_requests", 0.0)),
            "certificates_healed": float(variant.get("certificates_healed", 0.0)),
            "stall_avg": float(recovery.get("avg", 0.0)),
            "stall_count": float(recovery.get("count", 0.0)),
        }

    checks = _check_recovery_numbers("bench", flat(off), flat(on))
    checks.append(
        Check(
            "bench: committed prefixes consistent",
            bool(stage.get("prefix_consistent")),
            f"common committed prefix {stage.get('common_prefix')}",
        )
    )
    return checks


def _artifact_point(artifact: Dict[str, Any]) -> Dict[str, Any]:
    points = artifact.get("points") or []
    if len(points) != 1:
        raise SystemExit(
            f"error: expected a single-point artifact, got {len(points)} points "
            "(run the lossy-recovery scenarios without extra seeds)"
        )
    return points[0]


def _point_counters(point: Dict[str, Any]) -> Dict[str, float]:
    counters = (point.get("counters") or {}).get("always") or {}
    return {
        "fetch_requests": float(counters.get("node.fetch_requests", 0.0)),
        "certificates_healed": float(counters.get("node.certificates_healed", 0.0)),
    }


def _point_chain(point: Dict[str, Any]) -> List[Tuple[int, str]]:
    checkpoints = [
        (int(count), digest)
        for count, digest in (point.get("ordering_checkpoints") or ())
    ]
    final = (point.get("ordered_count") or 0, point.get("ordering_digest") or "")
    return checkpoint_chain(checkpoints, final)


def _mine_trace(path: str) -> Dict[str, float]:
    from repro.obs.recovery import mine_recovery

    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    report = mine_recovery(events)
    summary = report.summary()
    return {"stall_avg": summary["avg"], "stall_count": summary["count"]}


def check_artifacts(
    off_path: str,
    on_path: str,
    trace_off: Optional[str] = None,
    trace_on: Optional[str] = None,
) -> List[Check]:
    """All assertions over a scenario-artifact pair (CI smoke mode)."""
    with open(off_path, "r", encoding="utf-8") as handle:
        off_artifact = json.load(handle)
    with open(on_path, "r", encoding="utf-8") as handle:
        on_artifact = json.load(handle)
    checks: List[Check] = []
    off_flag = bool((off_artifact.get("scenario") or {}).get("certificate_piggyback"))
    on_flag = bool((on_artifact.get("scenario") or {}).get("certificate_piggyback"))
    checks.append(
        Check(
            "artifacts: piggyback off/on pair",
            not off_flag and on_flag,
            f"left certificate_piggyback={off_flag}, right={on_flag}",
        )
    )
    off_point = _artifact_point(off_artifact)
    on_point = _artifact_point(on_artifact)
    off = _point_counters(off_point)
    on = _point_counters(on_point)
    if trace_off and trace_on:
        off.update(_mine_trace(trace_off))
        on.update(_mine_trace(trace_on))
    checks.extend(_check_recovery_numbers("artifacts", off, on))
    comparison = compare_prefixes(_point_chain(off_point), _point_chain(on_point))
    checks.append(
        Check(
            "artifacts: committed prefixes consistent",
            comparison.consistent,
            comparison.describe(),
        )
    )
    return checks


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--bench", help="bench JSON with a lossy_recovery stage")
    mode.add_argument(
        "--artifacts",
        nargs=2,
        metavar=("OFF", "ON"),
        help="scenario artifact pair: piggyback-off then piggyback-on",
    )
    parser.add_argument("--trace-off", help="JSONL trace of the piggyback-off run")
    parser.add_argument("--trace-on", help="JSONL trace of the piggyback-on run")
    args = parser.parse_args(argv)
    if args.bench:
        try:
            with open(args.bench, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        checks = check_bench_stage(document.get("lossy_recovery") or {})
    else:
        off_path, on_path = args.artifacts
        try:
            checks = check_artifacts(off_path, on_path, args.trace_off, args.trace_on)
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    failures = 0
    for check in checks:
        marker = "PASS" if check.ok else "FAIL"
        print(f"[{marker}] {check.name}: {check.detail}")
        failures += 0 if check.ok else 1
    if failures:
        print(f"{failures} recovery check(s) failed", file=sys.stderr)
        return 1
    print("recovery gate passed: piggybacking heals faster than fetching")
    return 0


if __name__ == "__main__":
    sys.exit(main())
