"""Scenario-engine smoke benchmark (tier 2).

Runs one adversarial scenario from the registry at smoke scale (tiny
committee, short horizon) through the full scenario pipeline — spec →
compile → sweep → artifact — so the perf trajectory covers the scenario
layer and at least one adversarial run.  Asserts the artifact carries the
reproducibility fields (spec echo, scenario digest, ordering digests)
and that the system made progress under adversity.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_common import save_and_print
from repro.metrics.report import PerformanceReport
from repro.scenarios import get_scenario, run_scenario

SMOKE_SCENARIO = "mixed-adversary"


def _run_smoke():
    spec = get_scenario(SMOKE_SCENARIO).smoke()
    return spec, run_scenario(spec, parallelism=1)


@pytest.mark.benchmark(group="scenarios")
def test_scenario_smoke_mixed_adversary(benchmark):
    spec, artifact = benchmark.pedantic(_run_smoke, rounds=1, iterations=1)
    assert artifact["scenario"]["name"] == SMOKE_SCENARIO
    assert artifact["scenario_digest"] == spec.scenario_digest()
    assert artifact["points"], "the smoke scenario compiled to no points"
    reports = []
    for point in artifact["points"]:
        assert point["ordering_digest"], "every point must carry an ordering digest"
        data = point["report"]
        kwargs = {
            key: value
            for key, value in data.items()
            if key in PerformanceReport.__dataclass_fields__ and key != "extra"
        }
        reports.append(PerformanceReport(**kwargs))
    save_and_print(
        "scenario_smoke",
        f"Scenario smoke - {SMOKE_SCENARIO} at smoke scale",
        reports,
    )
    # Adversity notwithstanding, the run must commit transactions.
    assert all(point["report"]["committed_transactions"] > 0 for point in artifact["points"])
    # Determinism: identical seeds and spec yield identical ordering digests
    # across the protocol axis only when protocols agree; instead check the
    # digest is reproducible by re-running one point.
    spec2, artifact2 = _run_smoke()
    assert artifact2["scenario_digest"] == artifact["scenario_digest"]
    assert [p["ordering_digest"] for p in artifact2["points"]] == [
        p["ordering_digest"] for p in artifact["points"]
    ]
