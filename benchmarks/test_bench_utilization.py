"""UTIL — Leader Utilization (Definition 3, Lemma 6).

Lemma 6 bounds the number of rounds for which no honest validator commits
a vertex by O(T)·f in crash-only executions: a crashed validator stops
voting, lands in the bottom of the reputation ranking within O(T) rounds,
and never re-enters the schedule while it is down.  This benchmark runs a
crash-only execution and compares the number of skipped anchor rounds per
crashed leader against the bound, for HammerHead and for the static
baseline (which has no such bound and keeps skipping forever).
"""

from __future__ import annotations

import pytest

from benchmarks.bench_common import base_config, current_scale, run_point, save_and_print


def _run_utilization():
    scale = current_scale()
    committee_size = scale.committee_sizes[0]
    faults = scale.fault_counts[committee_size]
    load = scale.faulty_loads[0]
    results = {}
    for protocol in ("hammerhead", "bullshark"):
        config = base_config(scale, committee_size, faults=faults).with_overrides(
            protocol=protocol, input_load_tps=load
        )
        results[protocol] = run_point(config)
    return results


@pytest.mark.benchmark(group="utilization")
def test_leader_utilization_bound(benchmark):
    results = benchmark.pedantic(_run_utilization, rounds=1, iterations=1)
    scale = current_scale()
    committee_size = scale.committee_sizes[0]
    faults = scale.fault_counts[committee_size]
    reports = [results["hammerhead"].report, results["bullshark"].report]
    save_and_print(
        "leader_utilization",
        "Leader Utilization - skipped anchor rounds in crash-only runs",
        reports,
    )
    commits_per_schedule = 10
    # Lemma 6: skipped rounds bounded by O(T) * f.  The constant accounts
    # for the crashed validators holding multiple slots per epoch before
    # the first schedule change takes effect.
    bound = 3 * commits_per_schedule * faults
    hammerhead_skips = results["hammerhead"].report.skipped_anchor_rounds
    assert hammerhead_skips <= bound
    # The static baseline keeps skipping the crashed leaders' rounds for the
    # whole run, so it accumulates strictly more skips.
    assert results["bullshark"].report.skipped_anchor_rounds > hammerhead_skips
