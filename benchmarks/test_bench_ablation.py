"""ABL — ablations over HammerHead's design parameters.

The paper fixes three design choices whose values differ between the
evaluation and the Sui mainnet deployment (footnote 15), and leaves the
scoring rule as an explicit degree of freedom (Sections 3 and 7):

* ABL-T      — schedule-change frequency (10 commits in the evaluation,
               300 on mainnet).
* ABL-EX     — fraction of excluded validators (33% vs 20%).
* ABL-SCORE  — scoring rule (HammerHead votes vs Shoal-style committed/
               skipped leaders vs Carousel-style activity).

Each ablation runs the crash-fault scenario on the smallest committee of
the current scale and reports throughput, latency, and skipped rounds.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_common import base_config, current_scale, run_point, save_and_print


def _fault_setup():
    scale = current_scale()
    committee_size = scale.committee_sizes[0]
    faults = scale.fault_counts[committee_size]
    load = scale.faulty_loads[0]
    return scale, committee_size, faults, load


def _run_schedule_frequency_ablation():
    scale, committee_size, faults, load = _fault_setup()
    results = {}
    for commits in (5, 10, 50, 300):
        config = base_config(scale, committee_size, faults=faults).with_overrides(
            protocol="hammerhead", input_load_tps=load, commits_per_schedule=commits
        )
        results[commits] = run_point(config)
    return results


@pytest.mark.benchmark(group="ablation")
def test_schedule_frequency_ablation(benchmark):
    results = benchmark.pedantic(_run_schedule_frequency_ablation, rounds=1, iterations=1)
    reports = []
    for commits, result in sorted(results.items()):
        report = result.report
        report.extra["commits_per_schedule"] = float(commits)
        reports.append(report)
    save_and_print(
        "ablation_schedule_frequency",
        "ABL-T - schedule recomputation frequency under crash faults",
        reports,
    )
    # Recomputing the schedule rarely (mainnet's 300 commits) means the
    # crashed validators stay in the schedule for (almost) the whole run,
    # so more anchor rounds are skipped than with the evaluation's 10.
    assert (
        results[300].report.skipped_anchor_rounds
        >= results[10].report.skipped_anchor_rounds
    )
    # Frequent recomputation also keeps latency at least as low.
    assert results[10].avg_latency <= results[300].avg_latency + 0.25


def _run_exclusion_fraction_ablation():
    scale, committee_size, faults, load = _fault_setup()
    results = {}
    for fraction in (0.10, 0.20, 1.0 / 3.0):
        config = base_config(scale, committee_size, faults=faults).with_overrides(
            protocol="hammerhead", input_load_tps=load, exclude_fraction=fraction
        )
        results[fraction] = run_point(config)
    return results


@pytest.mark.benchmark(group="ablation")
def test_exclusion_fraction_ablation(benchmark):
    results = benchmark.pedantic(_run_exclusion_fraction_ablation, rounds=1, iterations=1)
    reports = []
    for fraction, result in sorted(results.items()):
        report = result.report
        report.extra["exclude_fraction"] = round(fraction, 3)
        reports.append(report)
    save_and_print(
        "ablation_exclusion_fraction",
        "ABL-EX - excluded stake fraction under crash faults",
        reports,
    )
    full_exclusion = results[1.0 / 3.0]
    small_exclusion = results[0.10]
    # Excluding a full third (enough to cover every crashed validator)
    # skips no more rounds than excluding only 10% of the stake.
    assert (
        full_exclusion.report.skipped_anchor_rounds
        <= small_exclusion.report.skipped_anchor_rounds
    )
    assert full_exclusion.avg_latency <= small_exclusion.avg_latency + 0.25


def _run_scoring_rule_ablation():
    scale, committee_size, faults, load = _fault_setup()
    results = {}
    for scoring in ("hammerhead", "shoal", "carousel", "completeness"):
        config = base_config(scale, committee_size, faults=faults).with_overrides(
            protocol="hammerhead", input_load_tps=load, scoring=scoring
        )
        results[scoring] = run_point(config)
    return results


@pytest.mark.benchmark(group="ablation")
def test_scoring_rule_ablation(benchmark):
    results = benchmark.pedantic(_run_scoring_rule_ablation, rounds=1, iterations=1)
    reports = []
    for scoring, result in sorted(results.items()):
        report = result.report
        report.extra["scoring_rule"] = scoring
        reports.append(report)
    save_and_print(
        "ablation_scoring_rule",
        "ABL-SCORE - scoring rule comparison under crash faults",
        reports,
    )
    # All four deterministic rules identify crash-faulted validators, so
    # all of them keep the system live and within a similar latency band.
    latencies = [result.avg_latency for result in results.values()]
    assert max(latencies) <= 2.5 * min(latencies)
    for result in results.values():
        assert result.report.commits > 0
        assert result.report.schedule_changes >= 1
