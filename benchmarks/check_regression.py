#!/usr/bin/env python3
"""Bench regression gate: diff a fresh bench JSON against the baseline.

Compares the ``events_per_sec`` of every stage a freshly generated bench
document shares with the committed baseline (``BENCH_PR10.json`` at the
repository root, i.e. the trajectory recorded when the current
optimization PR landed) and exits non-zero when any stage regressed by
more than the threshold (default 10%).

Stages that carry ``memory_per_validator`` (the committee-scaling
stages, from PR9 onward) are additionally gated on memory: growth beyond
the memory threshold (default 25%, ``--memory-threshold`` /
``REPRO_BENCH_MEMORY_THRESHOLD``) is fatal.  Memory is never
cpu-normalized — the tracemalloc peak is a property of the workload, not
the host's clock speed.  A baseline recorded before the metric existed
simply skips the comparison with an info line.

When both documents carry a CPU-calibration stage (``calibration`` —
see ``run_bench.run_cpu_calibration``), every events/sec ratio is
divided by the hosts' calibration ratio first: a hosted runner that is
uniformly 2x slower than the reference container then compares clean
against a reference-recorded baseline, so the gate can run at its tight
threshold instead of the 0.35-wide compensation it needed before.
Disable with ``--no-calibration`` (or ``REPRO_BENCH_NO_CALIBRATION=1``)
to compare raw numbers.

Stages are matched by identity, never by position:

* figure-1 points match on ``(committee_size, input_load_tps)`` —
  documents from before PR9 lack ``committee_size`` on fig-1 points, so
  a missing value is backfilled with the historical preset (committee
  10) instead of parsing stage names;
* committee-scaling points match on
  ``(committee_size, input_load_tps, duration_s)``.

Stages present in only one document are reported and skipped — a smoke
run (``run_bench.py --smoke``) produces a subset of the baseline's
stages, and that must not fail the gate.  When a committee-scaling stage
carries an ``ordering_digest`` in both documents, a digest mismatch is
an error as well: a perf win that changes simulation outputs is not a
perf win.

Usage::

    python benchmarks/run_bench.py --smoke --output /tmp/bench.json
    python benchmarks/check_regression.py /tmp/bench.json              # vs BENCH_PR10.json
    python benchmarks/check_regression.py /tmp/bench.json --baseline BENCH_PR10.json
    python benchmarks/check_regression.py fresh.json --threshold 0.25  # override knob
    python benchmarks/check_regression.py fresh.json --no-calibration  # raw ratios

The threshold can also be overridden with the
``REPRO_BENCH_REGRESSION_THRESHOLD`` environment variable (CI sets it to
loosen the gate on noisy shared runners without editing the workflow).
Promotion: when a PR intentionally shifts the trajectory, regenerate the
document with ``python benchmarks/run_bench.py`` and commit it as the
new ``BENCH_PR<n>.json`` baseline (see ROADMAP, "CI & benchmarking").
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Iterable, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_PR10.json")
DEFAULT_THRESHOLD = 0.10
# Tolerated fractional growth of memory_per_validator per stage.  The
# tracemalloc peak is far less noisy than wall-clock (the simulation is
# deterministic; only allocator bookkeeping varies), but interning and
# cache caps leave some headroom legitimately version-dependent.
DEFAULT_MEMORY_THRESHOLD = 0.25

# Fig-1 points recorded before PR9 carry no committee_size field; the
# preset was always committee 10, so identity matching backfills that
# instead of parsing stage names.
FIG1_DEFAULT_COMMITTEE = 10

# Calibration ratios outside this band mean the hosts differ by more
# than single-core speed (different memory pressure, thermal state, or a
# broken calibration stage); the gate then refuses to extrapolate and
# falls back to raw comparison, reporting why.
CALIBRATION_RATIO_BOUNDS = (0.2, 5.0)


class Mismatch:
    """One comparison outcome (regression, digest break, or skip)."""

    def __init__(self, stage: str, message: str, fatal: bool) -> None:
        self.stage = stage
        self.message = message
        self.fatal = fatal

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Mismatch({self.stage!r}, fatal={self.fatal})"


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _index_points(points: Iterable[dict], keys: Tuple[str, ...]) -> Dict[tuple, dict]:
    indexed: Dict[tuple, dict] = {}
    for point in points or ():
        indexed[tuple(point.get(key) for key in keys)] = point
    return indexed


def _fig1_points(document: dict) -> List[dict]:
    """The document's fig-1 points, ``committee_size`` backfilled.

    Keeps pre-PR9 baselines (no ``committee_size`` on fig-1 records)
    matchable against fresh documents purely by field identity.
    """
    points: List[dict] = []
    for point in document.get("points", ()) or ():
        if point.get("committee_size") is None:
            point = dict(point, committee_size=FIG1_DEFAULT_COMMITTEE)
        points.append(point)
    return points


def calibration_ratio(fresh: dict, baseline: dict) -> Optional[float]:
    """fresh_cpu_score / baseline_cpu_score, or ``None`` when unusable.

    ``None`` (no calibration in either document, non-positive scores, or
    a ratio outside :data:`CALIBRATION_RATIO_BOUNDS`) means the caller
    must compare raw events/sec.
    """
    fresh_score = float((fresh.get("calibration") or {}).get("cpu_score") or 0.0)
    base_score = float((baseline.get("calibration") or {}).get("cpu_score") or 0.0)
    if fresh_score <= 0.0 or base_score <= 0.0:
        return None
    ratio = fresh_score / base_score
    low, high = CALIBRATION_RATIO_BOUNDS
    if not low <= ratio <= high:
        return None
    return ratio


def compare_stage(
    stage: str,
    fresh: Optional[dict],
    baseline: Optional[dict],
    threshold: float,
    cpu_ratio: Optional[float] = None,
    memory_threshold: float = DEFAULT_MEMORY_THRESHOLD,
) -> List[Mismatch]:
    """Compare one matched stage; returns the findings (possibly empty)."""
    findings: List[Mismatch] = []
    if baseline is None:
        findings.append(Mismatch(stage, "not in baseline, skipped", fatal=False))
        return findings
    if fresh is None:
        findings.append(Mismatch(stage, "not in fresh document, skipped", fatal=False))
        return findings
    base_eps = float(baseline.get("events_per_sec") or 0.0)
    fresh_eps = float(fresh.get("events_per_sec") or 0.0)
    if base_eps <= 0.0:
        findings.append(Mismatch(stage, "baseline has no events/sec, skipped", fatal=False))
    else:
        ratio = fresh_eps / base_eps
        note = ""
        if cpu_ratio is not None:
            # Normalize out the hosts' single-core speed difference.
            ratio = ratio / cpu_ratio
            note = f", cpu-normalized by {cpu_ratio:.3f}"
        if ratio < 1.0 - threshold:
            findings.append(
                Mismatch(
                    stage,
                    f"events/sec regressed {100 * (1 - ratio):.1f}%: "
                    f"{fresh_eps:,.0f} vs baseline {base_eps:,.0f} "
                    f"(threshold {100 * threshold:.0f}%{note})",
                    fatal=True,
                )
            )
    fresh_memory = float(fresh.get("memory_per_validator") or 0.0)
    base_memory = float(baseline.get("memory_per_validator") or 0.0)
    if fresh_memory > 0.0:
        if base_memory <= 0.0:
            # Pre-PR9 baselines never recorded memory; skip cleanly
            # instead of treating the absence as a zero-byte baseline.
            findings.append(
                Mismatch(stage, "baseline lacks memory_per_validator, skipped", fatal=False)
            )
        else:
            memory_ratio = fresh_memory / base_memory
            if memory_ratio > 1.0 + memory_threshold:
                findings.append(
                    Mismatch(
                        stage,
                        f"memory/validator grew {100 * (memory_ratio - 1):.1f}%: "
                        f"{fresh_memory / 1024:,.0f} KiB vs baseline "
                        f"{base_memory / 1024:,.0f} KiB "
                        f"(threshold {100 * memory_threshold:.0f}%)",
                        fatal=True,
                    )
                )
    base_digest = baseline.get("ordering_digest")
    fresh_digest = fresh.get("ordering_digest")
    if base_digest and fresh_digest and base_digest != fresh_digest:
        findings.append(
            Mismatch(
                stage,
                f"ordering digest changed: {fresh_digest[:16]}... vs "
                f"baseline {base_digest[:16]}...",
                fatal=True,
            )
        )
    return findings


def compare_scenario_stage(stage: str, fresh: dict, baseline: dict) -> List[Mismatch]:
    """Digest-compare one scenario stage (``scenario_smoke``/``scenario_adversary``).

    Scenario stages carry no events/sec, so the gate checks their
    *outputs*: when both documents ran the same scenario (equal
    ``scenario_digest``), every shared point must reproduce the
    baseline's ordering digest — this is what pins the adversary
    engine's behavior (honest and Byzantine alike) across PRs.  A
    skipped/failed stage or a changed scenario definition is reported
    and skipped, mirroring how absent perf stages are treated.
    """
    findings: List[Mismatch] = []
    fresh_stage = fresh.get(stage) or {}
    base_stage = baseline.get(stage) or {}
    if not fresh_stage.get("points"):
        findings.append(Mismatch(stage, "not run in fresh document, skipped", fatal=False))
        return findings
    if not base_stage.get("points"):
        findings.append(Mismatch(stage, "not in baseline, skipped", fatal=False))
        return findings
    if fresh_stage.get("scenario_digest") != base_stage.get("scenario_digest"):
        findings.append(
            Mismatch(stage, "scenario definition changed, digest comparison skipped", fatal=False)
        )
        return findings
    fresh_points = {point.get("label"): point for point in fresh_stage["points"]}
    for point in base_stage["points"]:
        label = point.get("label")
        counterpart = fresh_points.get(label)
        if counterpart is None:
            findings.append(
                Mismatch(stage, f"point {label!r} missing from fresh document", fatal=False)
            )
            continue
        base_digest = point.get("ordering_digest")
        fresh_digest = counterpart.get("ordering_digest")
        if base_digest and fresh_digest and base_digest != fresh_digest:
            findings.append(
                Mismatch(
                    f"{stage}:{label}",
                    f"ordering digest changed: {fresh_digest[:16]}... vs "
                    f"baseline {base_digest[:16]}...",
                    fatal=True,
                )
            )
    return findings


def compare_matrix_stage(fresh: dict, baseline: dict) -> List[Mismatch]:
    """Digest-compare the ``scenario_matrix`` stage cell by cell.

    Cells are matched on (attack, rule, label); a cell whose per-attack
    scenario digest is unchanged must reproduce the baseline's ordering
    digest — the pin that keeps the coalition adversaries and the
    scoring-rule sweep axis deterministic across PRs.
    """
    stage = "scenario_matrix"
    findings: List[Mismatch] = []
    fresh_stage = fresh.get(stage) or {}
    base_stage = baseline.get(stage) or {}
    if not fresh_stage.get("cells"):
        findings.append(Mismatch(stage, "not run in fresh document, skipped", fatal=False))
        return findings
    if not base_stage.get("cells"):
        findings.append(Mismatch(stage, "not in baseline, skipped", fatal=False))
        return findings
    keys = ("attack", "rule", "label")
    fresh_cells = {tuple(cell.get(k) for k in keys): cell for cell in fresh_stage["cells"]}
    for cell in base_stage["cells"]:
        key = tuple(cell.get(k) for k in keys)
        counterpart = fresh_cells.get(key)
        label = f"{stage}:{cell.get('attack')}/{cell.get('rule')}"
        if counterpart is None:
            findings.append(
                Mismatch(stage, f"cell {key!r} missing from fresh document", fatal=False)
            )
            continue
        if cell.get("scenario_digest") != counterpart.get("scenario_digest"):
            findings.append(
                Mismatch(label, "attack definition changed, digest comparison skipped", fatal=False)
            )
            continue
        base_digest = cell.get("ordering_digest")
        fresh_digest = counterpart.get("ordering_digest")
        if base_digest and fresh_digest and base_digest != fresh_digest:
            findings.append(
                Mismatch(
                    label,
                    f"ordering digest changed: {fresh_digest[:16]}... vs "
                    f"baseline {base_digest[:16]}...",
                    fatal=True,
                )
            )
    return findings


def compare_lossy_stage(
    fresh: dict,
    baseline: dict,
    threshold: float,
    cpu_ratio: Optional[float] = None,
) -> List[Mismatch]:
    """Gate the ``lossy_recovery`` stage (bench_hotpaths, PR10 onward).

    Each piggyback variant gets the standard events/sec + ordering-digest
    comparison against its baseline counterpart (the variants are
    deterministic runs, so their digests are pins like any committee
    stage's).  On top of that, the *fresh* document must itself satisfy
    the recovery invariants — strictly fewer fetch round-trips, at least
    one stash heal, no-worse average park-to-promote stall, consistent
    committed prefixes (see ``benchmarks/check_recovery.py``, which owns
    the assertions) — so a change that silently breaks the recovery win
    fails the gate even when raw events/sec stay healthy.
    """
    findings: List[Mismatch] = []
    fresh_stage = fresh.get("lossy_recovery") or {}
    base_stage = baseline.get("lossy_recovery") or {}
    if not fresh_stage:
        findings.append(
            Mismatch("lossy_recovery", "not run in fresh document, skipped", fatal=False)
        )
        return findings
    if base_stage:
        for variant in ("piggyback_off", "piggyback_on"):
            findings.extend(
                compare_stage(
                    f"lossy_recovery:{variant}",
                    fresh_stage.get(variant),
                    base_stage.get(variant),
                    threshold,
                    cpu_ratio,
                )
            )
    else:
        findings.append(
            Mismatch("lossy_recovery", "not in baseline, digest comparison skipped", fatal=False)
        )
    from check_recovery import check_bench_stage

    for check in check_bench_stage(fresh_stage):
        if not check.ok:
            findings.append(
                Mismatch(f"lossy_recovery:{check.name}", check.detail, fatal=True)
            )
    return findings


def stage_deltas(
    fresh: dict,
    baseline: dict,
    cpu_ratio: Optional[float] = None,
) -> List[Tuple[str, float, float, Optional[float]]]:
    """Per-stage events/sec delta rows for every matched perf stage.

    Returns ``(stage, baseline_eps, fresh_eps, normalized_ratio)`` rows —
    ratio ``None`` when the baseline carries no events/sec.  Printed on
    every gate run (pass or fail), so CI logs always show the perf
    trajectory instead of only surfacing it once a threshold trips.
    """
    rows: List[Tuple[str, float, float, Optional[float]]] = []

    def add(stage: str, fresh_point: Optional[dict], base_point: Optional[dict]) -> None:
        if fresh_point is None or base_point is None:
            return
        base_eps = float(base_point.get("events_per_sec") or 0.0)
        fresh_eps = float(fresh_point.get("events_per_sec") or 0.0)
        ratio: Optional[float] = None
        if base_eps > 0.0:
            ratio = fresh_eps / base_eps
            if cpu_ratio is not None:
                ratio /= cpu_ratio
        rows.append((stage, base_eps, fresh_eps, ratio))

    fig1_keys = ("committee_size", "input_load_tps")
    fresh_fig1 = _index_points(_fig1_points(fresh), fig1_keys)
    base_fig1 = _index_points(_fig1_points(baseline), fig1_keys)
    for key in sorted(set(fresh_fig1) & set(base_fig1), key=str):
        add(f"fig1@{key[1]:.0f}tps", fresh_fig1.get(key), base_fig1.get(key))
    committee_keys = ("committee_size", "input_load_tps", "duration_s")
    fresh_committee = _index_points(fresh.get("committee_scaling", ()), committee_keys)
    base_committee = _index_points(baseline.get("committee_scaling", ()), committee_keys)
    for key in sorted(set(fresh_committee) & set(base_committee), key=str):
        add(
            f"committee{key[0]}@{key[1]:.0f}tps",
            fresh_committee.get(key),
            base_committee.get(key),
        )
    fresh_lossy = fresh.get("lossy_recovery") or {}
    base_lossy = baseline.get("lossy_recovery") or {}
    for variant in ("piggyback_off", "piggyback_on"):
        add(
            f"lossy_recovery:{variant}",
            fresh_lossy.get(variant),
            base_lossy.get(variant),
        )
    return rows


def render_delta_table(rows: List[Tuple[str, float, float, Optional[float]]]) -> List[str]:
    """Aligned text table for :func:`stage_deltas` rows."""
    if not rows:
        return ["no matched perf stages between the two documents"]
    width = max(len(row[0]) for row in rows)
    lines = [f"{'stage'.ljust(width)}  {'baseline':>12}  {'fresh':>12}  {'delta':>8}"]
    for stage, base_eps, fresh_eps, ratio in rows:
        delta = "n/a" if ratio is None else f"{100.0 * (ratio - 1.0):+.1f}%"
        lines.append(
            f"{stage.ljust(width)}  {base_eps:>12,.0f}  {fresh_eps:>12,.0f}  {delta:>8}"
        )
    return lines


def compare_documents(
    fresh: dict,
    baseline: dict,
    threshold: float,
    calibrate: bool = True,
    memory_threshold: float = DEFAULT_MEMORY_THRESHOLD,
) -> List[Mismatch]:
    """Compare every shared stage of two bench documents."""
    findings: List[Mismatch] = []
    cpu_ratio = calibration_ratio(fresh, baseline) if calibrate else None
    if calibrate and cpu_ratio is None:
        findings.append(
            Mismatch(
                "calibration",
                "no usable CPU calibration in both documents; comparing raw events/sec",
                fatal=False,
            )
        )
    elif cpu_ratio is not None and abs(cpu_ratio - 1.0) > 0.02:
        findings.append(
            Mismatch(
                "calibration",
                f"hosts differ by {cpu_ratio:.3f}x single-core speed; "
                "events/sec ratios are cpu-normalized",
                fatal=False,
            )
        )
    fig1_keys = ("committee_size", "input_load_tps")
    fresh_fig1 = _index_points(_fig1_points(fresh), fig1_keys)
    base_fig1 = _index_points(_fig1_points(baseline), fig1_keys)
    for key in sorted(set(fresh_fig1) | set(base_fig1), key=str):
        stage = f"fig1@{key[1]:.0f}tps"
        findings.extend(
            compare_stage(
                stage,
                fresh_fig1.get(key),
                base_fig1.get(key),
                threshold,
                cpu_ratio,
                memory_threshold,
            )
        )
    # Duration participates in the identity: a stage whose virtual
    # duration changed is a different measurement (and a different
    # ordering digest), not a regression.
    committee_keys = ("committee_size", "input_load_tps", "duration_s")
    fresh_committee = _index_points(fresh.get("committee_scaling", ()), committee_keys)
    base_committee = _index_points(baseline.get("committee_scaling", ()), committee_keys)
    for key in sorted(set(fresh_committee) | set(base_committee), key=str):
        stage = f"committee{key[0]}@{key[1]:.0f}tps"
        findings.extend(
            compare_stage(
                stage,
                fresh_committee.get(key),
                base_committee.get(key),
                threshold,
                cpu_ratio,
                memory_threshold,
            )
        )
    findings.extend(compare_lossy_stage(fresh, baseline, threshold, cpu_ratio))
    for stage in ("scenario_smoke", "scenario_adversary"):
        findings.extend(compare_scenario_stage(stage, fresh, baseline))
    findings.extend(compare_matrix_stage(fresh, baseline))
    if not (fresh_fig1 or fresh_committee):
        findings.append(
            Mismatch("document", "fresh document has no comparable stages", fatal=True)
        )
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("fresh", help="freshly generated bench JSON to check")
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="committed baseline document (default: BENCH_PR10.json)",
    )
    parser.add_argument(
        "--no-calibration",
        action="store_true",
        default=os.environ.get("REPRO_BENCH_NO_CALIBRATION", "").strip().lower()
        not in ("", "0", "false", "no"),
        help="compare raw events/sec without CPU-calibration normalization",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(
            os.environ.get("REPRO_BENCH_REGRESSION_THRESHOLD", DEFAULT_THRESHOLD)
        ),
        help="fractional events/sec regression tolerated per stage (default 0.10)",
    )
    parser.add_argument(
        "--memory-threshold",
        type=float,
        default=float(
            os.environ.get("REPRO_BENCH_MEMORY_THRESHOLD", DEFAULT_MEMORY_THRESHOLD)
        ),
        help="fractional memory_per_validator growth tolerated per stage (default 0.25)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.threshold < 1.0:
        print("error: threshold must lie in [0, 1)", file=sys.stderr)
        return 2
    if args.memory_threshold < 0.0:
        print("error: memory threshold must be non-negative", file=sys.stderr)
        return 2
    try:
        fresh = _load(args.fresh)
        baseline = _load(args.baseline)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    cpu_ratio = calibration_ratio(fresh, baseline) if not args.no_calibration else None
    label = " (cpu-normalized)" if cpu_ratio is not None else ""
    print(f"per-stage events/sec{label}:")
    for line in render_delta_table(stage_deltas(fresh, baseline, cpu_ratio)):
        print(f"  {line}")
    findings = compare_documents(
        fresh,
        baseline,
        args.threshold,
        calibrate=not args.no_calibration,
        memory_threshold=args.memory_threshold,
    )
    fatal = [finding for finding in findings if finding.fatal]
    for finding in findings:
        marker = "FAIL" if finding.fatal else "info"
        print(f"[{marker}] {finding.stage}: {finding.message}")
    if fatal:
        print(
            f"{len(fatal)} stage(s) regressed beyond "
            f"{100 * args.threshold:.0f}% (baseline {args.baseline})",
            file=sys.stderr,
        )
        return 1
    print(
        f"bench regression gate passed "
        f"(threshold {100 * args.threshold:.0f}%, baseline {os.path.basename(args.baseline)})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
