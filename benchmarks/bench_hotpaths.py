#!/usr/bin/env python3
"""Hot-path microbenchmark: events/sec per figure-1 point, sweep speedup.

Measures the three things this repo's performance work optimizes:

* **Single-run speed** — wall-clock and simulator events/sec for each
  figure-1 faultless point (committee of 10, increasing load up to the
  saturation peak).  This exercises the event loop, the broadcast layer,
  the incremental commit scan, and the reachability cache together.
* **Committee scaling** — committee-25/50 stages at peak load plus a
  committee-100 stage and a smoke-scale committee-200 stage (the
  large-committee fast path: quorum bitsets, digest interning, arena
  vertex storage).  Each point is the best of its ``best_of``
  repetitions so the recorded events/sec is robust to scheduler noise;
  the per-stage ``ordering_digest`` pins the run's output so a perf
  change that alters behaviour is caught here before the regression
  gate even runs.  Every committee stage additionally records
  ``memory_per_validator`` from one *untimed* tracemalloc run (see
  :func:`measure_memory`) so the gate can catch memory regressions,
  not just speed regressions.
* **Sweep speed** — wall-clock for a 4-point latency/throughput curve run
  serially versus through the parallel :class:`SweepEngine`.

* **Lossy recovery** — a committee-25 run through a mid-run loss window,
  measured twice: certificate piggybacking off (lost certificates wait
  out the fetch timeout + round-trip) and on (they heal from the propose
  fan-out's piggyback stash).  Each variant is a best-of-N timing run
  plus one *untimed* traced run mined with :mod:`repro.obs.recovery`
  for the park-to-promote recovery latency; the stage records fetch
  round-trips, healed certificates, the stall percentiles, and the
  committed-prefix consistency of the two variants
  (:mod:`repro.obs.consistency`).  ``benchmarks/check_recovery.py``
  asserts the recovery win; the regression gate pins both variants'
  ordering digests.

Results are written to ``BENCH_PR10.json`` at the repository root so
that future PRs can diff the perf trajectory (``benchmarks/run_bench.py``
wraps this together with a scenario smoke run and the tier-2 qualitative
suite; ``BENCH_PR1.json``–``BENCH_PR5.json`` hold earlier trajectories).
``benchmarks/check_regression.py`` compares a freshly generated document
against the committed baseline and fails CI on a >10% events/sec drop or
an out-of-tolerance ``memory_per_validator`` growth.

Run with::

    python benchmarks/bench_hotpaths.py
    python benchmarks/bench_hotpaths.py --duration 30 --output my_bench.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
import tracemalloc
from typing import Dict, List, Optional

# Allow running as a plain script from a source checkout.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.sim.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.sim.sweep import SweepEngine, default_parallelism

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_PR10.json")

# The figure-1 faultless preset: the paper's smallest committee under
# increasing load, with the peak (4,000 tx/s) as the last point.
FIG1_COMMITTEE = 10
FIG1_LOADS = (1000.0, 2000.0, 3000.0, 4000.0)

# Committee-scaling stages (the large-committee fast path target).  Each
# stage is one peak-load point; ``duration`` scales down with committee
# size so every stage stays inside the bench budget (simulated work per
# virtual second grows roughly quadratically with the committee).  The
# committee-200 stage is deliberately smoke-scale — it exists to pin the
# memory trajectory and the ordering digest at the largest committee,
# not to produce a low-noise events/sec number, hence the reduced
# ``best_of``.
COMMITTEE_STAGES = (
    {"committee": 25, "load": 4000.0, "duration": 20.0, "warmup": 5.0},
    {"committee": 50, "load": 4000.0, "duration": 10.0, "warmup": 2.5},
    {"committee": 100, "load": 4000.0, "duration": 5.0, "warmup": 1.0, "best_of": 3},
    {"committee": 200, "load": 4000.0, "duration": 2.0, "warmup": 0.5, "best_of": 2},
)

# The lossy-recovery stage: one committee-25 point run through a
# mid-run loss window, once with certificate piggybacking off and once
# with it on.  The window opens after warmup so the drops hit steady
# state, and closes well before the horizon so post-window recovery is
# fully observable.  Timing runs are untraced (best-of); the recovery
# mining comes from one separate traced run per variant, the same
# timed-vs-instrumented split the memory measurement uses.
LOSSY_RECOVERY_STAGE = {
    "committee": 25,
    "load": 2000.0,
    "duration": 20.0,
    "warmup": 5.0,
    "seed": 11,
    "jitter": 0.02,
    "loss_rate": 0.12,
    "loss_start": 8.0,
    "loss_end": 14.0,
    "best_of": 3,
}

# Repetitions per committee-stage point; the best run is recorded (the
# container's scheduler noise is 10-20%, so the minimum over several
# repetitions is the stable estimate).  A stage dict may carry its own
# ``best_of`` override (the committee-100/200 stages do).
BEST_OF = 5

# Committee-stage events/sec measured at the PR2 HEAD (commit d93a102)
# on the reference container — interleaved same-session A/B against the
# PR3 tree (alternating subprocess runs, best-of per tree) so host load
# drift cancels out of the ratio.  Recorded here so BENCH_PR3.json
# carries the before/after comparison the large-committee fast path
# targets (>= 2x at committee 25; measured 2.18x / 2.51x).
COMMITTEE_BASELINE_PR2 = {
    25: {"wall_s": 1.570, "events_per_sec": 101414.0, "interleaved_ab_speedup": 2.18},
    50: {"wall_s": 3.012, "events_per_sec": 64394.0, "interleaved_ab_speedup": 2.51},
}


def fig1_config(load: float, duration: float, warmup: float) -> ExperimentConfig:
    return ExperimentConfig(
        committee_size=FIG1_COMMITTEE,
        faults=0,
        input_load_tps=load,
        duration=duration,
        warmup=warmup,
        seed=2,
        commits_per_schedule=10,
        latency_model="geo",
    )


def _timed_runs(config: ExperimentConfig, best_of: int):
    """Run one config ``best_of`` times; returns (walls, last result).

    The simulation is deterministic, so repetitions differ only in
    wall-clock; the minimum is the noise-robust estimate the regression
    gate compares.  This is the single timing loop both the figure-1 and
    the committee stages use, so the methodology cannot diverge.
    """
    walls = []
    result: Optional[ExperimentResult] = None
    for _ in range(max(1, best_of)):
        start = time.perf_counter()
        result = run_experiment(config)
        walls.append(time.perf_counter() - start)
    assert result is not None
    return walls, result


def measure_point(config: ExperimentConfig, best_of: int = BEST_OF) -> Dict[str, float]:
    """Run one experiment (best of ``best_of``) and report events/sec."""
    walls, result = _timed_runs(config, best_of)
    wall = min(walls)
    events = result.report.extra.get("events_fired", 0.0)
    return {
        # Committee size rides on every stage record so the regression
        # gate matches stages by identity without parsing stage names.
        "committee_size": config.committee_size,
        "input_load_tps": config.input_load_tps,
        "best_of": len(walls),
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
        "throughput_tps": round(result.throughput, 2),
        "avg_latency_s": round(result.avg_latency, 4),
        "commits": float(result.report.commits),
    }


def committee_stage_config(stage: Dict[str, float]) -> ExperimentConfig:
    return ExperimentConfig(
        committee_size=int(stage["committee"]),
        faults=0,
        input_load_tps=stage["load"],
        duration=stage["duration"],
        warmup=stage["warmup"],
        seed=2,
        commits_per_schedule=10,
        latency_model="geo",
    )


def measure_memory(config: ExperimentConfig) -> Dict[str, float]:
    """Peak heap of one run, measured with :mod:`tracemalloc`.

    tracemalloc slows the interpreter several-fold, so this is a
    *separate, untimed* run after the best-of timing loop — the timing
    numbers never carry instrumentation overhead, and the memory numbers
    never race the wall clock.  The peak divided by the committee size
    (``memory_per_validator``) is the scaling metric the regression gate
    tracks: arena storage and interning should keep it near-flat as the
    committee grows, and a leaky change shows up here long before it
    OOMs a large-committee run.
    """
    tracemalloc.start()
    try:
        run_experiment(config)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return {
        "memory_peak_bytes": float(peak),
        "memory_per_validator": round(peak / config.committee_size, 1),
    }


def measure_committee_stage(stage: Dict[str, float], best_of: Optional[int] = None) -> Dict[str, object]:
    """Best-of-N measurement of one committee-scaling point.

    Events and the ordering digest are identical across repetitions (the
    simulation is a deterministic function of its config); only the
    wall-clock varies, so the minimum is the least noisy estimate.  The
    repetition count comes from the stage's own ``best_of`` when set
    (the large stages reduce it), else :data:`BEST_OF`.
    """
    config = committee_stage_config(stage)
    if best_of is None:
        best_of = int(stage.get("best_of", BEST_OF))
    walls, result = _timed_runs(config, best_of)
    wall = min(walls)
    events = result.report.extra.get("events_fired", 0.0)
    ordered_count, ordering_digest = result.ordering_digests[config.observer]
    events_per_sec = round(events / wall, 1) if wall > 0 else 0.0
    point: Dict[str, object] = {
        "committee_size": config.committee_size,
        "input_load_tps": config.input_load_tps,
        "duration_s": config.duration,
        "best_of": len(walls),
        "wall_s": round(wall, 4),
        "wall_all_s": [round(w, 4) for w in walls],
        "events": events,
        "events_per_sec": events_per_sec,
        "throughput_tps": round(result.throughput, 2),
        "avg_latency_s": round(result.avg_latency, 4),
        "ordering_digest": ordering_digest,
        "ordered_count": ordered_count,
    }
    point.update(measure_memory(config))
    baseline = COMMITTEE_BASELINE_PR2.get(config.committee_size)
    if baseline is not None:
        point["baseline_pr2_events_per_sec"] = baseline["events_per_sec"]
        point["speedup_vs_pr2"] = (
            round(events_per_sec / baseline["events_per_sec"], 3)
            if baseline["events_per_sec"]
            else 0.0
        )
        # The drift-controlled number: PR2 and PR3 trees alternated in
        # one session, best-of per tree (see COMMITTEE_BASELINE_PR2).
        point["interleaved_ab_speedup_vs_pr2"] = baseline["interleaved_ab_speedup"]
    return point


def lossy_recovery_config(piggyback: bool, trace: bool = False) -> ExperimentConfig:
    from repro.faults.partition import NetworkDisturbanceFault

    stage = LOSSY_RECOVERY_STAGE
    return ExperimentConfig(
        committee_size=int(stage["committee"]),
        faults=0,
        input_load_tps=stage["load"],
        duration=stage["duration"],
        warmup=stage["warmup"],
        seed=int(stage["seed"]),
        commits_per_schedule=10,
        latency_model="geo",
        certificate_piggyback=piggyback,
        trace=trace,
        extra_faults=(
            NetworkDisturbanceFault(
                jitter=stage["jitter"],
                loss_rate=stage["loss_rate"],
                start=stage["loss_start"],
                end=stage["loss_end"],
            ),
        ),
    )


def measure_lossy_recovery() -> Dict[str, object]:
    """Measure loss recovery with certificate piggybacking off and on.

    Both variants run the same committee-25 point through the same loss
    window.  Per variant: a best-of-N untraced timing run (wall-clock,
    events/sec, ordering digest, fetch/heal counters) plus one untimed
    traced run mined for the park-to-promote recovery latency.  The
    stage also records the committed-prefix comparison of the two
    variants — their final digests legitimately differ (healing changes
    post-window DAG timing), but their committed prefixes must never
    contradict each other.
    """
    from repro.obs.consistency import checkpoint_chain, compare_prefixes
    from repro.obs.recovery import recovery_summary

    stage = LOSSY_RECOVERY_STAGE
    variants: Dict[str, Dict[str, object]] = {}
    chains: Dict[str, object] = {}
    for key, piggyback in (("piggyback_off", False), ("piggyback_on", True)):
        config = lossy_recovery_config(piggyback)
        walls, result = _timed_runs(config, int(stage["best_of"]))
        wall = min(walls)
        events = result.report.extra.get("events_fired", 0.0)
        counters = result.counters.get("always", {})
        ordered_count, ordering_digest = result.ordering_digests[config.observer]
        chains[key] = checkpoint_chain(
            [tuple(checkpoint) for checkpoint in result.ordering_checkpoints[config.observer]],
            (ordered_count, ordering_digest),
        )
        # The traced run is untimed: tracing allocates per event, so the
        # wall-clock above never carries instrumentation overhead.
        traced = run_experiment(lossy_recovery_config(piggyback, trace=True))
        variants[key] = {
            "committee_size": config.committee_size,
            "input_load_tps": config.input_load_tps,
            "duration_s": config.duration,
            "certificate_piggyback": piggyback,
            "best_of": len(walls),
            "wall_s": round(wall, 4),
            "wall_all_s": [round(w, 4) for w in walls],
            "events": events,
            "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
            "throughput_tps": round(result.throughput, 2),
            "avg_latency_s": round(result.avg_latency, 4),
            "ordering_digest": ordering_digest,
            "ordered_count": ordered_count,
            "messages_dropped": counters.get("net.messages_dropped", 0.0),
            "fetch_requests": counters.get("node.fetch_requests", 0.0),
            "certificates_piggybacked": counters.get("node.certificates_piggybacked", 0.0),
            "certificates_healed": counters.get("node.certificates_healed", 0.0),
            "recovery": recovery_summary(traced.trace),
        }
    comparison = compare_prefixes(chains["piggyback_off"], chains["piggyback_on"])
    off = variants["piggyback_off"]
    on = variants["piggyback_on"]
    off_recovery: Dict[str, float] = off["recovery"]  # type: ignore[assignment]
    on_recovery: Dict[str, float] = on["recovery"]  # type: ignore[assignment]
    return {
        "stage": dict(stage),
        "piggyback_off": off,
        "piggyback_on": on,
        "prefix_consistent": comparison.consistent,
        "common_prefix": comparison.common_prefix,
        "fetch_requests_saved": float(off["fetch_requests"]) - float(on["fetch_requests"]),
        "stall_avg_improvement_s": round(
            off_recovery.get("avg", 0.0) - on_recovery.get("avg", 0.0), 4
        ),
        "stall_p95_improvement_s": round(
            off_recovery.get("p95", 0.0) - on_recovery.get("p95", 0.0), 4
        ),
    }


def measure_sweep(duration: float, warmup: float, parallelism: int) -> Dict[str, float]:
    """Wall-clock of a 4-point curve, serial vs parallel engine."""
    configs = [fig1_config(load, duration, warmup) for load in FIG1_LOADS]
    start = time.perf_counter()
    serial = SweepEngine(parallelism=1).run(configs)
    serial_wall = time.perf_counter() - start
    start = time.perf_counter()
    parallel = SweepEngine(parallelism=parallelism).run(configs)
    parallel_wall = time.perf_counter() - start
    # Sanity: parallel execution must not change any result.
    for serial_result, parallel_result in zip(serial, parallel):
        if serial_result.ordering_digests != parallel_result.ordering_digests:
            raise AssertionError("parallel sweep diverged from serial results")
    return {
        "points": len(configs),
        "parallelism": parallelism,
        "serial_wall_s": round(serial_wall, 4),
        "parallel_wall_s": round(parallel_wall, 4),
        "speedup": round(serial_wall / parallel_wall, 3) if parallel_wall > 0 else 0.0,
    }


def run_benchmarks(
    duration: float = 20.0,
    warmup: float = 5.0,
    parallelism: Optional[int] = None,
    include_sweep: bool = True,
    loads: Optional[tuple] = None,
) -> Dict[str, object]:
    """Run the microbenchmark suite and return the results document.

    ``loads`` restricts the figure-1 load points (the CI smoke run keeps
    only the saturation peak); the committee-scaling stages always run —
    they are the fast-path target the regression gate protects.
    """
    workers = default_parallelism() if parallelism is None else max(1, parallelism)
    points: List[Dict[str, float]] = []
    for load in (loads if loads is not None else FIG1_LOADS):
        point = measure_point(fig1_config(load, duration, warmup))
        points.append(point)
        print(
            f"  load {load:7.0f} tx/s: {point['wall_s']:7.3f}s wall, "
            f"{point['events_per_sec']:11.0f} events/s, "
            f"{point['throughput_tps']:8.1f} tx/s committed"
        )
    committee_points: List[Dict[str, object]] = []
    for stage in COMMITTEE_STAGES:
        point = measure_committee_stage(stage)
        committee_points.append(point)
        print(
            f"  committee {point['committee_size']:3d} @ {point['input_load_tps']:5.0f} tx/s: "
            f"{point['wall_s']:7.3f}s wall (best of {point['best_of']}), "
            f"{point['events_per_sec']:11.0f} events/s, "
            f"{point['memory_per_validator'] / 1024:8.1f} KiB/validator peak"
        )
    print("  lossy-recovery stage (committee 25, loss window, piggyback off/on) ...")
    lossy_recovery = measure_lossy_recovery()
    for key in ("piggyback_off", "piggyback_on"):
        variant = lossy_recovery[key]
        recovery = variant["recovery"]
        print(
            f"    {key:14s}: {variant['wall_s']:7.3f}s wall, "
            f"{variant['fetch_requests']:4.0f} fetches, "
            f"{variant['certificates_healed']:3.0f} healed, "
            f"stall avg {recovery['avg']:.3f}s (p95 {recovery['p95']:.3f}s, "
            f"{recovery['count']:.0f} parked)"
        )
    document: Dict[str, object] = {
        "benchmark": "bench_hotpaths",
        "preset": f"figure-1 faultless, committee {FIG1_COMMITTEE}",
        # Every point is a best-of-N wall-clock minimum from PR3 onward.
        # NOTE: the PR2 fig-1 trajectory (BENCH_PR2.json) was single-run,
        # so cross-PR fig-1 comparisons mix methodologies; the committee
        # stages carry a same-methodology PR2 baseline in-band.
        "methodology": (
            f"best-of-{BEST_OF} wall-clock minimum per point (per-stage "
            "best_of overrides at committee 100+); memory_per_validator "
            "from one untimed tracemalloc run per committee stage"
        ),
        "duration_s": duration,
        "warmup_s": warmup,
        "points": points,
        "committee_scaling": committee_points,
        "lossy_recovery": lossy_recovery,
        "environment": {
            "cpu_count": os.cpu_count() or 1,
            "python": platform.python_version(),
        },
    }
    if include_sweep:
        print(f"  sweeping {len(FIG1_LOADS)} points, parallelism {workers} ...")
        document["sweep"] = measure_sweep(duration, warmup, workers)
    return document


def write_results(document: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=20.0)
    parser.add_argument("--warmup", type=float, default=5.0)
    parser.add_argument("--parallelism", type=int, default=None)
    parser.add_argument("--no-sweep", action="store_true", help="skip the sweep comparison")
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    print(f"bench_hotpaths: figure-1 faultless preset, committee {FIG1_COMMITTEE}")
    document = run_benchmarks(
        duration=args.duration,
        warmup=args.warmup,
        parallelism=args.parallelism,
        include_sweep=not args.no_sweep,
    )
    write_results(document, args.output)


if __name__ == "__main__":
    main()
