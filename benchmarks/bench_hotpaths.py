#!/usr/bin/env python3
"""Hot-path microbenchmark: events/sec per figure-1 point, sweep speedup.

Measures the two things this repo's performance work optimizes:

* **Single-run speed** — wall-clock and simulator events/sec for each
  figure-1 faultless point (committee of 10, increasing load up to the
  saturation peak).  This exercises the event loop, the broadcast layer,
  the incremental commit scan, and the reachability cache together.
* **Sweep speed** — wall-clock for a 4-point latency/throughput curve run
  serially versus through the parallel :class:`SweepEngine`.

Results are written to ``BENCH_PR2.json`` at the repository root so that
future PRs can diff the perf trajectory (``benchmarks/run_bench.py``
wraps this together with a scenario smoke run and the tier-2 qualitative
suite; ``BENCH_PR1.json`` holds the previous PR's trajectory).

Run with::

    python benchmarks/bench_hotpaths.py
    python benchmarks/bench_hotpaths.py --duration 30 --output my_bench.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional

# Allow running as a plain script from a source checkout.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.sim.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.sim.sweep import SweepEngine, default_parallelism

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_PR2.json")

# The figure-1 faultless preset: the paper's smallest committee under
# increasing load, with the peak (4,000 tx/s) as the last point.
FIG1_COMMITTEE = 10
FIG1_LOADS = (1000.0, 2000.0, 3000.0, 4000.0)


def fig1_config(load: float, duration: float, warmup: float) -> ExperimentConfig:
    return ExperimentConfig(
        committee_size=FIG1_COMMITTEE,
        faults=0,
        input_load_tps=load,
        duration=duration,
        warmup=warmup,
        seed=2,
        commits_per_schedule=10,
        latency_model="geo",
    )


def measure_point(config: ExperimentConfig) -> Dict[str, float]:
    """Run one experiment and report wall-clock and events/sec."""
    start = time.perf_counter()
    result: ExperimentResult = run_experiment(config)
    wall = time.perf_counter() - start
    events = result.report.extra.get("events_fired", 0.0)
    return {
        "input_load_tps": config.input_load_tps,
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
        "throughput_tps": round(result.throughput, 2),
        "avg_latency_s": round(result.avg_latency, 4),
        "commits": float(result.report.commits),
    }


def measure_sweep(duration: float, warmup: float, parallelism: int) -> Dict[str, float]:
    """Wall-clock of a 4-point curve, serial vs parallel engine."""
    configs = [fig1_config(load, duration, warmup) for load in FIG1_LOADS]
    start = time.perf_counter()
    serial = SweepEngine(parallelism=1).run(configs)
    serial_wall = time.perf_counter() - start
    start = time.perf_counter()
    parallel = SweepEngine(parallelism=parallelism).run(configs)
    parallel_wall = time.perf_counter() - start
    # Sanity: parallel execution must not change any result.
    for serial_result, parallel_result in zip(serial, parallel):
        if serial_result.ordering_digests != parallel_result.ordering_digests:
            raise AssertionError("parallel sweep diverged from serial results")
    return {
        "points": len(configs),
        "parallelism": parallelism,
        "serial_wall_s": round(serial_wall, 4),
        "parallel_wall_s": round(parallel_wall, 4),
        "speedup": round(serial_wall / parallel_wall, 3) if parallel_wall > 0 else 0.0,
    }


def run_benchmarks(
    duration: float = 20.0,
    warmup: float = 5.0,
    parallelism: Optional[int] = None,
    include_sweep: bool = True,
) -> Dict[str, object]:
    """Run the microbenchmark suite and return the results document."""
    workers = default_parallelism() if parallelism is None else max(1, parallelism)
    points: List[Dict[str, float]] = []
    for load in FIG1_LOADS:
        point = measure_point(fig1_config(load, duration, warmup))
        points.append(point)
        print(
            f"  load {load:7.0f} tx/s: {point['wall_s']:7.3f}s wall, "
            f"{point['events_per_sec']:11.0f} events/s, "
            f"{point['throughput_tps']:8.1f} tx/s committed"
        )
    document: Dict[str, object] = {
        "benchmark": "bench_hotpaths",
        "preset": f"figure-1 faultless, committee {FIG1_COMMITTEE}",
        "duration_s": duration,
        "warmup_s": warmup,
        "points": points,
        "environment": {
            "cpu_count": os.cpu_count() or 1,
            "python": platform.python_version(),
        },
    }
    if include_sweep:
        print(f"  sweeping {len(FIG1_LOADS)} points, parallelism {workers} ...")
        document["sweep"] = measure_sweep(duration, warmup, workers)
    return document


def write_results(document: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=20.0)
    parser.add_argument("--warmup", type=float, default=5.0)
    parser.add_argument("--parallelism", type=int, default=None)
    parser.add_argument("--no-sweep", action="store_true", help="skip the sweep comparison")
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    print(f"bench_hotpaths: figure-1 faultless preset, committee {FIG1_COMMITTEE}")
    document = run_benchmarks(
        duration=args.duration,
        warmup=args.warmup,
        parallelism=args.parallelism,
        include_sweep=not args.no_sweep,
    )
    write_results(document, args.output)


if __name__ == "__main__":
    main()
