"""FIG1 — Figure 1: latency/throughput in ideal conditions (no faults).

The paper compares HammerHead and baseline Bullshark with 10, 50, and 100
honest validators and reports (i) essentially identical throughput for
both systems, with a peak around 4,000 tx/s (3,500 for 100 validators),
and (ii) a small latency advantage for HammerHead.  This benchmark
regenerates the same series: one (throughput, latency) point per input
load, per system, per committee size.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_common import base_config, current_scale, run_points, save_and_print


def _run_figure1():
    scale = current_scale()
    # One flat batch for the sweep engine; results come back in order.
    keys = [
        (protocol, committee_size)
        for committee_size in scale.committee_sizes
        for protocol in ("hammerhead", "bullshark")
    ]
    configs = [
        base_config(scale, committee_size).with_overrides(
            protocol=protocol, input_load_tps=load
        )
        for protocol, committee_size in keys
        for load in scale.faultless_loads
    ]
    results = run_points(configs)
    reports = [result.report for result in results]
    loads_per_curve = len(scale.faultless_loads)
    curves = {
        key: results[index * loads_per_curve : (index + 1) * loads_per_curve]
        for index, key in enumerate(keys)
    }
    return reports, curves


@pytest.mark.benchmark(group="figure1")
def test_fig1_latency_throughput_no_faults(benchmark):
    reports, curves = benchmark.pedantic(_run_figure1, rounds=1, iterations=1)
    save_and_print(
        "figure1_faultless",
        "Figure 1 - latency/throughput, no faults (HammerHead vs Bullshark)",
        reports,
    )
    scale = current_scale()
    for committee_size in scale.committee_sizes:
        hammerhead = curves[("hammerhead", committee_size)]
        bullshark = curves[("bullshark", committee_size)]
        # C1: no throughput loss for HammerHead in ideal conditions.
        peak_hammerhead = max(result.throughput for result in hammerhead)
        peak_bullshark = max(result.throughput for result in bullshark)
        assert peak_hammerhead >= 0.9 * peak_bullshark
        # C1: HammerHead's latency is no worse than the baseline's (the
        # paper reports a small gain; the simulator reproduces parity).
        for hammerhead_point, bullshark_point in zip(hammerhead, bullshark):
            assert (
                hammerhead_point.avg_latency <= bullshark_point.avg_latency + 0.25
            )
        # Both systems actually sustain the offered load away from
        # saturation (the lowest load point commits essentially everything).
        assert hammerhead[0].throughput >= 0.85 * scale.faultless_loads[0]
        assert bullshark[0].throughput >= 0.85 * scale.faultless_loads[0]
