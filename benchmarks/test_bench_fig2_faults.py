"""FIG2 — Figure 2: latency/throughput with the maximum tolerable faults.

The paper crashes f = 3/16/33 validators in committees of 10/50/100 and
reports that baseline Bullshark loses 25-40% throughput and suffers a
2-3x latency increase, while HammerHead keeps its fault-free throughput
and only adds a slight latency overhead.  This benchmark regenerates the
same series at the selected scale and checks the qualitative claims.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_common import base_config, current_scale, run_points, save_and_print


def _run_figure2():
    scale = current_scale()
    # One flat batch for the sweep engine; results come back in order.
    keys = [
        (protocol, committee_size)
        for committee_size in scale.committee_sizes
        for protocol in ("hammerhead", "bullshark")
    ]
    configs = [
        base_config(
            scale, committee_size, faults=scale.fault_counts[committee_size]
        ).with_overrides(protocol=protocol, input_load_tps=load)
        for protocol, committee_size in keys
        for load in scale.faulty_loads
    ]
    results = run_points(configs)
    reports = [result.report for result in results]
    loads_per_curve = len(scale.faulty_loads)
    curves = {
        key: results[index * loads_per_curve : (index + 1) * loads_per_curve]
        for index, key in enumerate(keys)
    }
    return reports, curves


@pytest.mark.benchmark(group="figure2")
def test_fig2_latency_throughput_max_faults(benchmark):
    reports, curves = benchmark.pedantic(_run_figure2, rounds=1, iterations=1)
    save_and_print(
        "figure2_faults",
        "Figure 2 - latency/throughput under maximum crash faults",
        reports,
    )
    scale = current_scale()
    for committee_size in scale.committee_sizes:
        hammerhead = curves[("hammerhead", committee_size)]
        bullshark = curves[("bullshark", committee_size)]
        # HammerHead commits more anchors than the static schedule, which
        # keeps electing crashed leaders.
        assert hammerhead[-1].report.commits > bullshark[-1].report.commits
        # Latency: Bullshark degrades substantially more than HammerHead
        # away from saturation (the paper reports roughly a 2x gap).  At the
        # highest load both systems queue in the execution pipeline, so only
        # a weak ordering is required there.
        for hammerhead_point, bullshark_point in zip(hammerhead[:-1], bullshark[:-1]):
            assert bullshark_point.avg_latency > 1.3 * hammerhead_point.avg_latency
        assert bullshark[-1].avg_latency >= hammerhead[-1].avg_latency - 0.5
        # Throughput: HammerHead sustains at least as much as the baseline.
        peak_hammerhead = max(result.throughput for result in hammerhead)
        peak_bullshark = max(result.throughput for result in bullshark)
        assert peak_hammerhead >= peak_bullshark * 0.95
