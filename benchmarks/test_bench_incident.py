"""INTRO — the Sui mainnet incident of August 29 (Section 1).

Roughly 10% of validators became less responsive for two hours; p95
latency rose from 3.0 s to 4.6 s and p50 from 1.9 s to 2.2 s even though
the system was under low load (about 130 tx/s).  This benchmark
reproduces the scenario: a low-load run in which 10% of the validators are
degraded, comparing the static schedule (which keeps electing them) with
HammerHead (which removes them from the schedule until they recover).
"""

from __future__ import annotations

import pytest

from benchmarks.bench_common import base_config, current_scale, run_point, save_and_print
from repro.committee import Committee
from repro.faults.slow import degrade_fraction

INCIDENT_LOAD_TPS = 130.0
DEGRADED_FRACTION = 0.10
EXTRA_DELAY_S = 0.6


def _run_incident():
    scale = current_scale()
    committee_size = max(scale.committee_sizes)
    committee = Committee.build(committee_size)
    duration = scale.faulty_duration
    warmup = scale.faulty_warmup
    results = {}
    for protocol in ("bullshark", "hammerhead"):
        for degraded in (False, True):
            extra_faults = ()
            if degraded:
                extra_faults = (
                    degrade_fraction(
                        committee, fraction=DEGRADED_FRACTION, extra_delay=EXTRA_DELAY_S
                    ),
                )
            config = base_config(scale, committee_size).with_overrides(
                protocol=protocol,
                input_load_tps=INCIDENT_LOAD_TPS,
                duration=duration,
                warmup=warmup,
                extra_faults=extra_faults,
            )
            results[(protocol, degraded)] = run_point(config)
    return results


@pytest.mark.benchmark(group="incident")
def test_incident_degraded_validators_low_load(benchmark):
    results = benchmark.pedantic(_run_incident, rounds=1, iterations=1)
    reports = []
    for (_protocol, degraded), result in sorted(results.items()):
        report = result.report
        report.extra["degraded_validators"] = 1.0 if degraded else 0.0
        reports.append(report)
    save_and_print(
        "incident_degraded",
        "Sui incident scenario - 10% degraded validators at low load",
        reports,
    )
    bullshark_healthy = results[("bullshark", False)]
    bullshark_degraded = results[("bullshark", True)]
    hammerhead_degraded = results[("hammerhead", True)]
    # Under the static schedule the degraded validators raise tail latency.
    assert bullshark_degraded.p95_latency > bullshark_healthy.p95_latency
    # HammerHead removes them from the schedule and keeps latency close to
    # the healthy baseline.
    assert hammerhead_degraded.p95_latency <= bullshark_degraded.p95_latency
    assert hammerhead_degraded.avg_latency <= bullshark_degraded.avg_latency
