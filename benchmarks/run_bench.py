#!/usr/bin/env python3
"""Run the benchmark suite under a time budget and emit ``BENCH_PR9.json``.

Stages, all optional and all budgeted:

0. A **fixed CPU-calibration microbenchmark** (pure-Python hash/dict/
   sort work, no simulation) whose ops/sec fingerprint the host.  The
   regression gate divides fresh/baseline events-per-sec ratios by the
   calibration ratio, so a slower hosted runner no longer needs a
   0.35-wide tolerance to pass a gate recorded on the reference
   container.
1. The hot-path microbenchmark (``benchmarks/bench_hotpaths.py``):
   events/sec and wall-clock per figure-1 point, the committee-25/50
   scaling stages plus the committee-100 and smoke-scale committee-200
   stages (best-of-N wall-clock minimum, ``memory_per_validator`` from
   one untimed tracemalloc run per stage), plus the parallel-sweep
   speedup.
2. Two **scenario smoke runs** at smoke scale through the full scenario
   pipeline (spec → compile → sweep → artifact): ``mixed-adversary``
   (crash/slow/disturbance faults) and ``reputation-gamer`` (the
   ``scenario_adversary`` stage — a behavior-policy adversary, recorded
   with its reputation-reaction metrics), plus the ``scenario_matrix``
   stage: a smoke subset of the attack x scoring-rule ablation matrix
   (``python -m repro.scenarios matrix``), so the perf trajectory always
   covers the scenario layer, the adversary engine (coalitions
   included), and the scoring-rule registry.
3. The tier-2 qualitative suite (``benchmarks/test_bench_*.py`` under
   pytest), run at ``REPRO_BENCH_SCALE=quick`` so it fits the budget;
   only the pass/fail outcome and wall-clock are recorded.

The merged document is written to ``BENCH_PR9.json`` at the repository
root so future PRs can diff the performance trajectory;
``benchmarks/check_regression.py`` gates CI against it (>10% events/sec
regression at any stage fails, after CPU-calibration normalization;
``memory_per_validator`` growth beyond its own tolerance fails too).

Run with::

    python benchmarks/run_bench.py                  # all stages
    python benchmarks/run_bench.py --skip-suite     # no tier-2 pytest
    python benchmarks/run_bench.py --smoke          # CI: fig-1 peak + committee stages
    python benchmarks/run_bench.py --budget 120     # tighter budget (s)
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time

# Allow running as a plain script from a source checkout.
_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for _path in (_SRC, _HERE):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from bench_hotpaths import DEFAULT_OUTPUT, REPO_ROOT, run_benchmarks, write_results

# Default wall-clock budget for the whole invocation, overridable with
# ``--budget`` or the ``REPRO_BENCH_BUDGET_S`` environment variable.
DEFAULT_BUDGET_S = 600.0


def run_cpu_calibration(repetitions: int = 3) -> dict:
    """A fixed, dependency-free CPU microbenchmark fingerprinting the host.

    The workload mirrors the simulator's hot-path mix — SHA-256 over
    small buffers, dict churn, tuple sorting, and integer arithmetic —
    without touching the simulation code, so its score moves with the
    host's single-core speed but never with this repository's changes.
    ``cpu_score`` is operations per second, best of ``repetitions``
    (minimum wall-clock), the same noise discipline as the committee
    stages.
    """
    import hashlib

    def one_pass() -> float:
        start = time.perf_counter()
        payload = b"repro-calibration" * 16
        accumulator = 0
        table = {}
        for index in range(20_000):
            digest = hashlib.sha256(payload + index.to_bytes(4, "big")).digest()
            accumulator ^= digest[0] | (digest[1] << 8)
            table[index & 1023] = digest
        items = sorted((value[0], key) for key, value in table.items())
        accumulator += sum(entry[0] for entry in items)
        del table, items, accumulator
        return time.perf_counter() - start

    walls = [one_pass() for _ in range(repetitions)]
    best = min(walls)
    return {
        "repetitions": repetitions,
        "wall_s_best": round(best, 4),
        "wall_s_all": [round(wall, 4) for wall in walls],
        "cpu_score": round(20_000 / best, 1),
    }


def run_scenario_matrix_smoke() -> dict:
    """Smoke-run a small attack x rule matrix through the full pipeline.

    Two attacks (the canonical gamer and the adaptive DoS coalition) by
    two rules (the paper's vote rule and the completeness rule) keep the
    stage inside the CI budget while still exercising the coalition
    coordinator, the scoring-rule sweep axis, and the matrix assembly;
    the regression gate compares the per-cell ordering digests.
    """
    from repro.scenarios import run_matrix

    start = time.perf_counter()
    document = run_matrix(
        attacks=("reputation-gamer", "adaptive-dos"),
        rules=("hammerhead", "completeness"),
        smoke=True,
        parallelism=1,
    )
    wall = time.perf_counter() - start
    return {
        "wall_s": round(wall, 3),
        "attacks": document["attacks"],
        "rules": document["rules"],
        "row_digests": document["row_digests"],
        "summary": document["summary"],
        "cells": [
            {
                "attack": cell["attack"],
                "rule": cell["rule"],
                "label": cell["label"],
                "scenario_digest": cell["scenario_digest"],
                "ordering_digest": cell["ordering_digest"],
                "ordered_count": cell["ordered_count"],
                "culprits_demoted": cell["culprits_demoted"],
                "culprit_count": cell["culprit_count"],
                "first_demotion_round": cell["first_demotion_round"],
                "throughput_tps": cell["throughput_tps"],
            }
            for cell in document["cells"]
        ],
    }


def run_scenario_smoke(name: str = "mixed-adversary", include_reputation: bool = False) -> dict:
    """Smoke-run one scenario through the full scenario engine pipeline.

    With ``include_reputation`` the stage also records the
    reputation-reaction summary per point — used by the
    ``scenario_adversary`` stage, which covers the behavior-policy
    adversary engine end to end (policy installation through a compiled
    BehaviorFault, the policy-bent decision points, and the metrics) so
    the perf trajectory and the regression gate always exercise the
    policy layer.
    """
    from repro.scenarios import get_scenario, run_scenario

    spec = get_scenario(name).smoke()
    start = time.perf_counter()
    artifact = run_scenario(spec, parallelism=1)
    wall = time.perf_counter() - start
    document = {
        "scenario": name,
        "scenario_digest": artifact["scenario_digest"],
        "wall_s": round(wall, 3),
        "points": [
            {
                "label": point["label"],
                "throughput_tps": round(point["report"]["throughput_tps"], 2),
                "avg_latency_s": round(point["report"]["avg_latency_s"], 4),
                "committed": point["report"]["committed_transactions"],
                "ordering_digest": point["ordering_digest"],
                # Instrumentation snapshot (observability only — the
                # regression gate compares digests, never counters; the
                # memo.* entries are process-wide and non-reproducible).
                "counters": (point.get("counters") or {}).get("always", {}),
            }
            for point in artifact["points"]
        ],
    }
    if include_reputation:
        document["reputation"] = [
            {
                "label": point["label"],
                "faulty_validators": point["reputation"]["faulty_validators"],
                "rounds_until_demotion": point["reputation"]["rounds_until_demotion"],
                "faulty_slot_share_converged": point["reputation"][
                    "faulty_slot_share_converged"
                ],
            }
            for point in artifact["points"]
        ]
    return document


def run_tier2_suite(budget_s: float) -> dict:
    """Run the pytest benchmark suite at quick scale within ``budget_s``."""
    env = dict(os.environ)
    env.setdefault("REPRO_BENCH_SCALE", "quick")
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    command = [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider", "benchmarks"]
    start = time.perf_counter()
    try:
        completed = subprocess.run(
            command,
            cwd=REPO_ROOT,
            env=env,
            timeout=max(1.0, budget_s),
            capture_output=True,
            text=True,
        )
        outcome = "passed" if completed.returncode == 0 else "failed"
        tail = (completed.stdout or "").strip().splitlines()[-1:]
    except subprocess.TimeoutExpired:
        outcome = "timeout"
        tail = []
    wall = time.perf_counter() - start
    return {
        "scale": env["REPRO_BENCH_SCALE"],
        "outcome": outcome,
        "wall_s": round(wall, 2),
        "summary": tail[0] if tail else "",
    }


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--budget",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_BUDGET_S", DEFAULT_BUDGET_S)),
        help="total wall-clock budget in seconds",
    )
    parser.add_argument("--duration", type=float, default=20.0, help="virtual seconds per point")
    parser.add_argument("--parallelism", type=int, default=None)
    parser.add_argument("--skip-suite", action="store_true", help="skip the tier-2 pytest suite")
    parser.add_argument(
        "--skip-scenario", action="store_true", help="skip the scenario smoke stage"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "CI mode: figure-1 peak point + committee-scaling stages + "
            "scenario smoke only (no sweep comparison, no tier-2 suite)"
        ),
    )
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    return parser.parse_args()


def main() -> int:
    args = parse_args()
    start = time.perf_counter()
    if args.smoke:
        args.skip_suite = True
    print(f"run_bench: budget {args.budget:.0f}s{' (smoke)' if args.smoke else ''}")
    calibration = run_cpu_calibration()
    print(f"cpu calibration: {calibration['cpu_score']:,.0f} ops/s")
    document = run_benchmarks(
        duration=args.duration,
        parallelism=args.parallelism,
        include_sweep=not args.smoke,
        loads=(4000.0,) if args.smoke else None,
    )
    document["budget_s"] = args.budget
    document["smoke"] = bool(args.smoke)
    document["calibration"] = calibration
    scenario_stages = (
        ("scenario_smoke", "mixed-adversary", False),
        # The behavior-policy adversary engine: a BehaviorFault-compiled
        # scenario with reputation-reaction metrics in the stage record.
        ("scenario_adversary", "reputation-gamer", True),
    )
    for stage, scenario_name, include_reputation in scenario_stages:
        if args.skip_scenario:
            document[stage] = {"outcome": "skipped", "reason": "--skip-scenario"}
        elif args.budget - (time.perf_counter() - start) < 10.0:
            print(f"budget exhausted, skipping {stage}")
            document[stage] = {"outcome": "skipped", "reason": "budget exhausted"}
        else:
            print(f"running {stage} ({scenario_name}, smoke scale) ...")
            try:
                document[stage] = run_scenario_smoke(
                    scenario_name, include_reputation=include_reputation
                )
            except Exception as error:  # the bench document must still be written
                print(f"{stage} failed: {error!r}")
                document[stage] = {"outcome": "failed", "error": repr(error)}
    # The attack x scoring-rule matrix smoke stage (coalition adversaries
    # + the scoring-rule sweep axis through the full pipeline).
    if args.skip_scenario:
        document["scenario_matrix"] = {"outcome": "skipped", "reason": "--skip-scenario"}
    elif args.budget - (time.perf_counter() - start) < 10.0:
        print("budget exhausted, skipping scenario_matrix")
        document["scenario_matrix"] = {"outcome": "skipped", "reason": "budget exhausted"}
    else:
        print("running scenario_matrix (2 attacks x 2 rules, smoke scale) ...")
        try:
            document["scenario_matrix"] = run_scenario_matrix_smoke()
        except Exception as error:  # the bench document must still be written
            print(f"scenario_matrix failed: {error!r}")
            document["scenario_matrix"] = {"outcome": "failed", "error": repr(error)}
    if not args.skip_suite:
        remaining = args.budget - (time.perf_counter() - start)
        if remaining > 30.0:
            print(f"running tier-2 suite (quick scale, {remaining:.0f}s left) ...")
            document["tier2_suite"] = run_tier2_suite(remaining)
        else:
            print("budget exhausted, skipping the tier-2 suite")
            document["tier2_suite"] = {"outcome": "skipped", "reason": "budget exhausted"}
    document["total_wall_s"] = round(time.perf_counter() - start, 2)
    write_results(document, args.output)
    failed = any(
        document.get(stage, {}).get("outcome") == "failed"
        for stage in (
            "tier2_suite",
            "scenario_smoke",
            "scenario_adversary",
            "scenario_matrix",
        )
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
