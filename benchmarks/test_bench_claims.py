"""TAB-C1/C2/C3 — the three headline claims of Section 5.

* C1: no throughput loss and a small latency gain in ideal conditions.
* C2: drastic latency and throughput improvement under crash faults, with
  the benefit growing with the number of faults.
* C3: no visible throughput degradation for HammerHead despite crash
  faults.

Each claim is evaluated on the smallest committee of the current scale so
the whole table stays cheap; Figure 1/2 benchmarks cover the full sweep.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_common import base_config, current_scale, run_point, save_and_print


def _committee_and_faults():
    scale = current_scale()
    committee_size = scale.committee_sizes[0]
    return scale, committee_size, scale.fault_counts[committee_size]


def _run_claim_c1():
    scale, committee_size, _ = _committee_and_faults()
    load = scale.faultless_loads[-1]
    results = {}
    for protocol in ("hammerhead", "bullshark"):
        config = base_config(scale, committee_size).with_overrides(
            protocol=protocol, input_load_tps=load
        )
        results[protocol] = run_point(config)
    return results


@pytest.mark.benchmark(group="claims")
def test_claim_c1_faultless_parity(benchmark):
    results = benchmark.pedantic(_run_claim_c1, rounds=1, iterations=1)
    save_and_print(
        "claim_c1",
        "Claim C1 - ideal conditions: HammerHead vs Bullshark at the same load",
        [results["hammerhead"].report, results["bullshark"].report],
    )
    hammerhead, bullshark = results["hammerhead"], results["bullshark"]
    assert hammerhead.throughput >= 0.9 * bullshark.throughput
    assert hammerhead.avg_latency <= bullshark.avg_latency + 0.25


def _run_claim_c2():
    scale, committee_size, max_faults = _committee_and_faults()
    load = scale.faulty_loads[0]
    fault_levels = sorted({max(1, max_faults // 2), max_faults})
    results = {}
    for faults in fault_levels:
        for protocol in ("hammerhead", "bullshark"):
            config = base_config(scale, committee_size, faults=faults).with_overrides(
                protocol=protocol, input_load_tps=load
            )
            results[(protocol, faults)] = run_point(config)
    return fault_levels, results


@pytest.mark.benchmark(group="claims")
def test_claim_c2_improvement_grows_with_faults(benchmark):
    fault_levels, results = benchmark.pedantic(_run_claim_c2, rounds=1, iterations=1)
    save_and_print(
        "claim_c2",
        "Claim C2 - benefit of HammerHead under increasing crash faults",
        [results[key].report for key in sorted(results.keys())],
    )
    gaps = []
    for faults in fault_levels:
        hammerhead = results[("hammerhead", faults)]
        bullshark = results[("bullshark", faults)]
        # HammerHead improves latency at every fault level.
        assert hammerhead.avg_latency < bullshark.avg_latency
        gaps.append(bullshark.avg_latency - hammerhead.avg_latency)
    # The benefit increases with the number of faults.
    assert gaps[-1] >= gaps[0]


def _run_claim_c3():
    scale, committee_size, max_faults = _committee_and_faults()
    # Compare at a load comfortably below the execution ceiling so that the
    # comparison isolates the effect of the faults rather than queueing.
    loads = scale.faulty_loads
    load = loads[len(loads) // 2]
    results = {}
    for faults in (0, max_faults):
        config = base_config(scale, committee_size, faults=faults).with_overrides(
            protocol="hammerhead",
            input_load_tps=load,
            duration=scale.faulty_duration,
            warmup=scale.faulty_warmup,
        )
        results[faults] = run_point(config)
    return results


@pytest.mark.benchmark(group="claims")
def test_claim_c3_no_throughput_degradation(benchmark):
    results = benchmark.pedantic(_run_claim_c3, rounds=1, iterations=1)
    save_and_print(
        "claim_c3",
        "Claim C3 - HammerHead throughput with and without crash faults",
        [results[faults].report for faults in sorted(results)],
    )
    faultless = results[0]
    faulty = results[max(results)]
    # No visible throughput degradation despite the crash faults.
    assert faulty.throughput >= 0.9 * faultless.throughput
    # Only a slight latency increase (the paper reports at most ~0.5 s).
    assert faulty.avg_latency <= faultless.avg_latency + 1.0
