"""Shared helpers for the benchmark harness.

The benchmarks regenerate every figure of the paper's evaluation
(Section 5).  Absolute numbers differ from the AWS testbed — the substrate
here is a discrete-event simulator — but each benchmark prints the same
series the paper plots and checks that the qualitative claims (who wins,
by roughly what factor) hold.

Scale is controlled with the ``REPRO_BENCH_SCALE`` environment variable:

* ``quick``   — tiny committees and very short runs (smoke test, ~1 min).
* ``default`` — reduced committee sizes and durations; preserves every
  trend (the default, ~10-20 min for the full suite).
* ``paper``   — the paper's committee sizes (10/50/100) and longer runs
  (hours of wall-clock time; intended for unattended runs).
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Sequence

from repro.metrics.report import PerformanceReport, format_table
from repro.sim.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.sim.presets import bench_scale
from repro.sim.sweep import run_sweep

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@dataclasses.dataclass(frozen=True)
class BenchScale:
    """Concrete parameters for one benchmark scale."""

    name: str
    committee_sizes: Sequence[int]
    fault_counts: Dict[int, int]
    faultless_loads: Sequence[float]
    faulty_loads: Sequence[float]
    faultless_duration: float
    faultless_warmup: float
    faulty_duration: float
    faulty_warmup: float


_SCALES = {
    "quick": BenchScale(
        name="quick",
        committee_sizes=(7,),
        fault_counts={7: 2},
        faultless_loads=(500.0, 1500.0),
        faulty_loads=(500.0, 1500.0),
        faultless_duration=20.0,
        faultless_warmup=5.0,
        faulty_duration=40.0,
        faulty_warmup=20.0,
    ),
    "default": BenchScale(
        name="default",
        committee_sizes=(10, 25),
        fault_counts={10: 3, 25: 8},
        faultless_loads=(1000.0, 2500.0, 4000.0),
        faulty_loads=(1000.0, 2500.0, 4000.0),
        faultless_duration=40.0,
        faultless_warmup=10.0,
        faulty_duration=80.0,
        faulty_warmup=40.0,
    ),
    "paper": BenchScale(
        name="paper",
        committee_sizes=(10, 50, 100),
        fault_counts={10: 3, 50: 16, 100: 33},
        faultless_loads=(500.0, 1000.0, 2000.0, 3000.0, 4000.0, 5000.0),
        faulty_loads=(500.0, 1000.0, 2000.0, 3000.0, 4000.0),
        faultless_duration=120.0,
        faultless_warmup=20.0,
        faulty_duration=180.0,
        faulty_warmup=80.0,
    ),
}


def current_scale() -> BenchScale:
    return _SCALES[bench_scale()]


def run_point(config: ExperimentConfig) -> ExperimentResult:
    """Run a single experiment point."""
    return run_experiment(config)


def run_points(configs: Sequence[ExperimentConfig]) -> List[ExperimentResult]:
    """Run a batch of experiment points through the parallel sweep engine.

    Results come back in input order and are identical to running each
    point serially (every experiment is deterministic in its config);
    ``REPRO_SWEEP_PARALLELISM`` caps the worker count.
    """
    return run_sweep(configs)


def save_and_print(name: str, title: str, reports: List[PerformanceReport]) -> str:
    """Render a results table, persist it under ``benchmarks/results``, and
    print it (visible with ``pytest -s``)."""
    table = format_table(reports, title=title)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(table + "\n")
    print()
    print(table)
    return table


def base_config(scale: BenchScale, committee_size: int, faults: int = 0) -> ExperimentConfig:
    """The experiment configuration shared by the figure benchmarks."""
    if faults:
        duration, warmup = scale.faulty_duration, scale.faulty_warmup
    else:
        duration, warmup = scale.faultless_duration, scale.faultless_warmup
    return ExperimentConfig(
        committee_size=committee_size,
        faults=faults,
        duration=duration,
        warmup=warmup,
        seed=2,
        commits_per_schedule=10,       # the paper's evaluation parameter
        exclude_fraction=1.0 / 3.0,    # "excludes the 33% less performant"
        latency_model="geo",
    )
