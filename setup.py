"""Setuptools entry point.

The pyproject.toml file carries all package metadata; this file exists so
that ``pip install -e .`` works in offline environments whose setuptools
lacks the ``wheel`` package required by the PEP 660 editable-install path
(``pip install -e . --no-build-isolation --no-use-pep517`` and
``python setup.py develop`` both work with this file present).
"""

from setuptools import setup

setup()
