"""Core value types shared across the HammerHead reproduction.

The whole code base manipulates a small number of primitive concepts:
validators, rounds, stake, and simulated time.  They are given explicit
types here so that signatures throughout the library read naturally
(``leader_for_round(round_number) -> ValidatorId``) and so that unit
tests can use :mod:`hypothesis` strategies over well-defined domains.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, NamedTuple, Tuple

# A validator is identified by a small non-negative integer index.  The
# committee object (see :mod:`repro.committee`) maps indices to richer
# metadata (name, stake, region).
ValidatorId = int

# DAG rounds are non-negative integers.  Round 0 holds the genesis
# vertices; anchors (leaders) live on even rounds and votes on odd rounds,
# following the Bullshark wave structure used in the paper (Algorithm 2).
Round = int

# Stake is measured in arbitrary integer units.
Stake = int

# Simulated time, in seconds, as used by the discrete-event simulator.
SimTime = float


def is_anchor_round(round_number: Round) -> bool:
    """Return ``True`` when ``round_number`` carries an anchor (a leader).

    In the paper's formulation (Algorithm 2), anchors are elected on even
    rounds greater than zero and votes for an anchor live on the following
    odd round.
    """
    return round_number > 0 and round_number % 2 == 0


def is_vote_round(round_number: Round) -> bool:
    """Return ``True`` when vertices of ``round_number`` vote for an anchor."""
    return round_number % 2 == 1


def next_anchor_round(round_number: Round) -> Round:
    """The first anchor round at or after ``round_number`` (at least 2).

    The single definition of "which anchor is coming up" shared by the
    schedule lookup helpers and the schedule-adaptive adversaries.
    """
    anchor = round_number if round_number % 2 == 0 else round_number + 1
    return max(anchor, 2)


def anchor_rounds_between(start: Round, end: Round) -> Iterator[Round]:
    """Yield every anchor round in the half-open interval ``(start, end]``.

    Both callers of this helper walk the anchor sequence in increasing
    order, so the iterator is ascending.
    """
    first = start + 1
    if first % 2 == 1:
        first += 1
    if first <= 0:
        first = 2
    for round_number in range(first, end + 1, 2):
        yield round_number


class VertexId(NamedTuple):
    """Unique identity of a DAG vertex.

    Honest validators issue at most one vertex per round and the reliable
    broadcast layer guarantees non-equivocation, so the pair
    ``(round, source)`` identifies a vertex uniquely.  A digest of the
    vertex contents is carried alongside for integrity checks; it does not
    participate in ordering or hashing so that identity remains stable
    across serialization round-trips.

    A ``NamedTuple`` rather than a dataclass: vertex ids are hashed and
    compared millions of times per run (DAG dicts, edge sets, reachability
    walks), and tuples do both in C.  Ordering stays lexicographic on
    ``(round, source)``, exactly as the ordered dataclass provided.
    """

    round: Round
    source: ValidatorId

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f"V(r={self.round}, p={self.source})"


@dataclasses.dataclass(frozen=True)
class Region:
    """A geographic region used by the latency model.

    The paper's testbed spreads validators over thirteen AWS regions; the
    simulator reproduces that topology with representative inter-region
    round-trip times (see :mod:`repro.network.latency`).
    """

    name: str

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return self.name


def total_stake(stakes: Iterable[Stake]) -> Stake:
    """Sum an iterable of stake amounts."""
    return sum(stakes)


def quorum_threshold(total: Stake) -> Stake:
    """Return the 2f+1 stake threshold for a system tolerating f < n/3.

    Expressed over stake, the byzantine quorum threshold is the smallest
    integer strictly greater than two thirds of the total stake.
    """
    return (2 * total) // 3 + 1


def validity_threshold(total: Stake) -> Stake:
    """Return the f+1 stake threshold (at least one honest party)."""
    return total // 3 + 1


def split_evenly(amount: int, parts: int) -> Tuple[int, ...]:
    """Split ``amount`` into ``parts`` integers that differ by at most one.

    Used to spread validators over regions "as equally as possible", the
    same policy the paper uses to spread validators over AWS regions.
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    base = amount // parts
    remainder = amount % parts
    return tuple(base + (1 if index < remainder else 0) for index in range(parts))
