"""The Bullshark commit rule and anchor ordering (Algorithm 2).

One :class:`BullsharkConsensus` instance runs inside every validator.  It
is driven by vertex insertions into the validator's local DAG and produces
a totally ordered sequence of vertices.  The leader of each anchor round
is obtained from a :class:`~repro.core.manager.ScheduleManager`; plugging
in the static manager yields baseline Bullshark, plugging in the
HammerHead manager yields the paper's protocol.

Differences from the pseudocode that matter for the reproduction:

* Commit attempts are evaluated against *all* vertices currently known for
  the voting round rather than only the edges of the vertex that triggered
  the attempt.  Both formulations commit exactly when ``f+1`` (by stake)
  voting vertices link to the anchor, and the aggregate form lets the
  engine re-evaluate cheaply after a schedule change.
* When a schedule change triggers while ordering a stack of anchors
  (``orderHistory``, line 32), the remaining stack is discarded and the
  commit attempt restarts under the new schedule.  This is the retroactive
  schedule application described in Section 3.1: rounds after the change
  must be interpreted under the new schedule, so anchors selected for
  those rounds under the old schedule are recomputed.
* Commit attempts are incremental: instead of rescanning every candidate
  anchor round between ``lastOrderedRound`` and the DAG frontier on every
  insertion (quadratic over a run), the engine drains the set of anchor
  rounds dirtied by insertions from the DAG store and re-evaluates only
  those.  Schedule changes and state sync invalidate affected candidates
  (see ``_invalidate_candidates_from`` / ``reset_candidates``).  The
  original rescan survives behind ``incremental=False`` and the property
  suite checks both produce byte-identical ordering digests.
"""

from __future__ import annotations

import hashlib
from typing import Callable, List, Optional, Set, Tuple

from repro.committee import Committee
from repro.consensus.committed import CommittedSubDag, OrderedVertex
from repro.core.manager import ScheduleManager
from repro.crypto.hashing import evict_oldest_half
from repro.dag.store import DagStore
from repro.dag.vertex import Vertex
from repro.errors import ConsensusError
from repro.obs.trace import NULL_TRACER, Tracer
from repro.types import Round, SimTime, ValidatorId, VertexId, is_anchor_round

# Callbacks the embedding node can register.
OrderedCallback = Callable[[OrderedVertex], None]
CommitCallback = Callable[[CommittedSubDag], None]

# Process-wide memo of the ordering-digest token per (round, source):
# every one of the n validators folds the same token into its rolling
# digest when it orders the same vertex, so the f-string formatting is
# shared.  Bounded and flushed wholesale; entries are pure functions of
# the key.
_ORDERING_TOKENS: dict = {}

# Every this many ordered vertices, the engine snapshots its rolling
# ordering digest into ``ordering_checkpoints``.  The snapshots let two
# runs whose final digests differ (e.g. lossy piggyback-on vs -off) be
# compared by their longest common committed prefix, and let validators
# with different ordered counts be checked for prefix consistency.  A
# power of two so the hot-path test is one AND; hexdigest on the rolling
# hasher is a cheap state copy, paid once per 64 ordered vertices.
ORDERING_CHECKPOINT_INTERVAL = 64


class BullsharkConsensus:
    """Per-validator consensus engine interpreting the local DAG."""

    # Observability (repro.obs): null by default; the digest fold and
    # the commit rule itself never consult these — only the already-rare
    # commit/skip sites test the boolean.
    _tracer: Tracer = NULL_TRACER
    _tracing = False

    def __init__(
        self,
        owner: ValidatorId,
        committee: Committee,
        dag: DagStore,
        schedule_manager: ScheduleManager,
        record_sequence: bool = True,
        incremental: bool = True,
    ) -> None:
        self.owner = owner
        self.committee = committee
        self._stakes = committee.stake_vector.stakes
        # Non-zero only for uniform committees: lets the direct-vote scan
        # collapse the stake sum to popcount * stake (see
        # ``_direct_vote_stake``).
        self._uniform_stake = committee.stake_vector.uniform_stake
        self.dag = dag
        self.schedule_manager = schedule_manager
        self.record_sequence = record_sequence
        # When set (the default), commit attempts only re-evaluate anchor
        # rounds dirtied by insertions since the previous attempt; when
        # cleared, every attempt rescans all candidate rounds like the
        # original implementation (kept as the differential-testing
        # oracle).  Both paths order identically.
        self.incremental = incremental
        # Candidate tracking for the incremental scan: anchor rounds that
        # currently satisfy the f+1 direct-vote rule, and anchor rounds
        # that need (re-)evaluation.  Entries at or below the last ordered
        # anchor round are purged lazily.
        self._committable_rounds: Set[Round] = set()
        self._dirty_anchor_rounds: Set[Round] = set()

        # ``lastOrderedRound`` from Algorithm 2 (tracks anchor rounds).
        self.last_ordered_anchor_round: Round = 0
        # Vertices already output in the total order.
        self.ordered_vertices: Set[VertexId] = set()
        # Ordered output, kept when ``record_sequence`` is set (tests use it
        # to check Total Order; large simulations disable it to save memory).
        self.ordered_sequence: List[OrderedVertex] = []
        self.committed_subdags: List[CommittedSubDag] = []
        # (from_round, to_round) intervals skipped by state sync.
        self.state_sync_gaps: List[tuple] = []
        self.ordered_count = 0
        self.commit_count = 0
        # Rolling digest of the ordered (round, source) sequence; two
        # validators with the same count and digest ordered the same prefix.
        self._ordering_digest = hashlib.sha256()
        # Periodic (ordered_count, hexdigest) snapshots of the rolling
        # digest (see ORDERING_CHECKPOINT_INTERVAL); consumed by
        # :mod:`repro.obs.consistency` for committed-prefix comparison.
        self.ordering_checkpoints: List[Tuple[int, str]] = []

        self._ordered_callbacks: List[OrderedCallback] = []
        self._commit_callbacks: List[CommitCallback] = []
        # Clock source; the node wires this to the simulator.  Defaults to
        # a constant so the engine can run outside a simulation (tests).
        self.clock: Callable[[], SimTime] = lambda: 0.0

    def install_tracer(self, tracer: Tracer) -> None:
        """Attach a tracer; digest-neutral by construction (no site reads
        or perturbs protocol state)."""
        self._tracer = tracer
        self._tracing = tracer.enabled

    # -- callback registration ----------------------------------------------------

    def on_ordered(self, callback: OrderedCallback) -> None:
        self._ordered_callbacks.append(callback)

    def on_commit(self, callback: CommitCallback) -> None:
        self._commit_callbacks.append(callback)

    # -- public driving interface ----------------------------------------------------

    def process_vertex(self, vertex: Vertex) -> List[CommittedSubDag]:
        """React to a vertex having been inserted into the local DAG.

        Vote-round vertices may complete the ``f+1`` quorum of an anchor,
        and anchor-round vertices may be anchors themselves, so any
        insertion can unlock commits.  Returns the sub-DAGs committed as a
        consequence of this insertion (possibly empty).
        """
        if vertex.round < 1:
            return []
        return self.try_commit()

    def try_commit(self) -> List[CommittedSubDag]:
        """Attempt to commit anchors given the current DAG contents."""
        committed: List[CommittedSubDag] = []
        # A schedule change mid-ordering restarts the scan (see module
        # docstring); the loop runs until no further anchor can be
        # committed under the then-active schedule.
        while True:
            anchor = self._find_directly_committable_anchor()
            if anchor is None:
                break
            newly = self._order_anchor_chain(anchor)
            committed.extend(newly)
            if not newly:
                break
        return committed

    # -- commit rule -------------------------------------------------------------------

    def _get_anchor(self, round_number: Round) -> Optional[Vertex]:
        """``getAnchor(r)`` from Algorithm 1."""
        if not is_anchor_round(round_number):
            return None
        leader = self.schedule_manager.leader_for_round(round_number)
        return self.dag.vertex_of(round_number, leader)

    def _direct_vote_stake(self, anchor: Vertex) -> int:
        """Stake of voting-round vertices that link directly to ``anchor``.

        Scans the store's round slab testing each vote's parent bitmask
        against the anchor's bit (all edges of a voting-round vertex point
        to the anchor's round, so source identity is the whole test).  The
        voter set accumulates as a bitmask; uniform committees reduce the
        stake sum to a single popcount-multiply, heterogeneous ones
        iterate the set bits of the mask.
        """
        anchor_bit = 1 << anchor.source
        voters = 0
        for vertex in self.dag.round_map(anchor.round + 1):
            if vertex is not None and vertex.edge_mask & anchor_bit:
                voters |= 1 << vertex.source
        uniform = self._uniform_stake
        if uniform:
            return voters.bit_count() * uniform
        stakes = self._stakes
        total = 0
        while voters:
            low_bit = voters & -voters
            total += stakes[low_bit.bit_length() - 1]
            voters ^= low_bit
        return total

    def _find_directly_committable_anchor(self) -> Optional[Vertex]:
        """The highest uncommitted anchor with an ``f+1`` stake of votes."""
        if self.incremental:
            return self._find_committable_incremental()
        return self._find_committable_rescan()

    def _find_committable_rescan(self) -> Optional[Vertex]:
        """The seed implementation: rescan every candidate anchor round.

        O(rounds) per call; kept as the reference oracle for the
        incremental scan (the property suite checks both produce identical
        orderings) and selectable via ``incremental=False``.
        """
        # Keep the store-side dirty set drained so it cannot grow without
        # bound while the rescan oracle is selected.
        self.dag.drain_dirty_anchor_rounds()
        highest_round = self.dag.highest_round()
        best: Optional[Vertex] = None
        round_number = self.last_ordered_anchor_round + 2
        if round_number % 2 != 0:
            round_number += 1
        if round_number < 2:
            round_number = 2
        while round_number + 1 <= highest_round:
            anchor = self._get_anchor(round_number)
            if anchor is not None:
                if self._direct_vote_stake(anchor) >= self.committee.validity_threshold:
                    best = anchor
            round_number += 2
        return best

    def _find_committable_incremental(self) -> Optional[Vertex]:
        """Dirty-set variant: amortized O(1) per insertion.

        An anchor round's direct-vote stake only changes when a vertex is
        inserted at that round (the anchor itself) or the round above (a
        vote), and its leader only changes on a schedule switch or state
        sync; those events dirty the round (see
        :meth:`DagStore.drain_dirty_anchor_rounds`,
        :meth:`_invalidate_candidates_from` and :meth:`reset_candidates`).
        Once a round satisfies the f+1 rule it stays satisfied — votes are
        never removed above the GC horizon — so it parks in
        ``_committable_rounds`` until ordered or invalidated.
        """
        last_ordered = self.last_ordered_anchor_round
        drained = self.dag.drain_dirty_anchor_rounds()
        if drained:
            self._dirty_anchor_rounds |= drained
        if self._dirty_anchor_rounds:
            threshold = self.committee.validity_threshold
            dag = self.dag
            for round_number in self._dirty_anchor_rounds:
                if round_number <= last_ordered:
                    continue
                if dag.stake_at(round_number + 1) < threshold:
                    # Not enough voting-round stake present yet for any
                    # anchor of this round to reach f+1 direct votes: skip
                    # the leader lookup and edge scan.  The next insertion
                    # at the round (or its voting round) re-dirties it,
                    # exactly like a failed evaluation used to be retried.
                    continue
                anchor = self._get_anchor(round_number)
                if anchor is not None and self._direct_vote_stake(anchor) >= threshold:
                    self._committable_rounds.add(round_number)
            self._dirty_anchor_rounds.clear()
        while self._committable_rounds:
            best_round = max(self._committable_rounds)
            if best_round <= last_ordered:
                self._committable_rounds = {
                    r for r in self._committable_rounds if r > last_ordered
                }
                continue
            anchor = self._get_anchor(best_round)
            if anchor is None:
                # Only possible after an external schedule mutation that
                # bypassed the invalidation hooks; drop and re-derive.
                self._committable_rounds.discard(best_round)
                continue
            return anchor
        return None

    def _invalidate_candidates_from(self, from_round: Round) -> None:
        """Re-evaluate candidates at or after ``from_round``.

        Called when a schedule change takes effect: rounds covered by the
        new schedule may have a different leader, so both their committable
        status and their prior negative evaluations are void.
        """
        if not self.incremental:
            # The rescan oracle re-derives everything per call; tracking
            # dirty rounds here would only accumulate without a consumer.
            return
        self._committable_rounds = {
            r for r in self._committable_rounds if r < from_round
        }
        start = max(from_round, self.last_ordered_anchor_round + 2)
        if start % 2 != 0:
            start += 1
        for round_number in range(max(start, 2), self.dag.highest_round() + 1, 2):
            self._dirty_anchor_rounds.add(round_number)

    def reset_candidates(self) -> None:
        """Drop all candidate state and re-derive it from the DAG.

        Needed after state sync (``adopt_state`` replaces the schedule
        history wholesale, so any round's leader may have changed).
        """
        self._committable_rounds.clear()
        self._dirty_anchor_rounds.clear()
        self.dag.drain_dirty_anchor_rounds()
        self._invalidate_candidates_from(self.last_ordered_anchor_round + 2)

    # -- ordering (``orderAnchors`` / ``orderHistory``) -----------------------------------

    def _order_anchor_chain(self, anchor: Vertex) -> List[CommittedSubDag]:
        """Order ``anchor`` and every earlier anchor it reaches (Algorithm 2)."""
        stack: List[Vertex] = [anchor]
        current = anchor
        round_number = anchor.round - 2
        while round_number > self.last_ordered_anchor_round and round_number >= 2:
            previous_anchor = self._get_anchor(round_number)
            if previous_anchor is not None and self.dag.path(current.id, previous_anchor.id):
                stack.append(previous_anchor)
                current = previous_anchor
            round_number -= 2
        return self._order_history(stack, directly_committed=anchor)

    def _order_history(
        self, stack: List[Vertex], directly_committed: Vertex
    ) -> List[CommittedSubDag]:
        committed: List[CommittedSubDag] = []
        while stack:
            next_anchor = stack.pop()
            if next_anchor.round <= self.last_ordered_anchor_round:
                raise ConsensusError(
                    f"validator {self.owner} attempted to re-order anchor round "
                    f"{next_anchor.round} (already ordered up to "
                    f"{self.last_ordered_anchor_round})"
                )
            subdag = self._commit_anchor(
                next_anchor, direct=next_anchor.id == directly_committed.id
            )
            committed.append(subdag)
            new_schedule = self.schedule_manager.on_anchor_committed(next_anchor)
            if new_schedule is not None:
                # Leaders of rounds covered by the new schedule may differ,
                # so candidate evaluations for those rounds are void.
                self._invalidate_candidates_from(new_schedule.initial_round)
                if stack:
                    # The schedule now active starts after
                    # ``next_anchor.round``; the anchors still on the stack
                    # belong to later rounds and were chosen under the
                    # superseded schedule, so they must be re-derived.
                    # ``try_commit`` restarts the scan.
                    break
        return committed

    def _commit_anchor(self, anchor: Vertex, direct: bool) -> CommittedSubDag:
        now = self.clock()
        vertices = self.dag.causal_history(anchor.id, exclude=self.ordered_vertices)
        ordered: List[Vertex] = []
        for vertex in vertices:
            if vertex.id in self.ordered_vertices:
                continue
            self.ordered_vertices.add(vertex.id)
            ordered.append(vertex)
            self._emit_ordered(vertex, anchor.round, now)
        # Skipped anchors between the previously ordered anchor round and
        # this one are reported to the schedule manager (used by the
        # Shoal-style scoring ablation).
        skipped_round = self.last_ordered_anchor_round + 2
        if skipped_round < 2:
            skipped_round = 2
        while skipped_round < anchor.round:
            self.schedule_manager.on_anchor_skipped(skipped_round)
            if self._tracing:
                self._trace_skip(skipped_round, now)
            skipped_round += 2
        self.last_ordered_anchor_round = anchor.round
        self.commit_count += 1
        if self._tracing:
            self._tracer.emit(
                "anchor_committed",
                node=self.owner,
                round=anchor.round,
                leader=anchor.source,
                direct=direct,
                vertices=len(ordered),
            )
        subdag = CommittedSubDag(
            anchor=anchor,
            vertices=tuple(ordered),
            committed_at=now,
            direct=direct,
        )
        if self.record_sequence:
            self.committed_subdags.append(subdag)
        for callback in self._commit_callbacks:
            callback(subdag)
        return subdag

    def _trace_skip(self, skipped_round: Round, now: SimTime) -> None:
        """Emit the ``anchor_skipped`` event (tracing-only slow path).

        The leader/anchor lookups here are pure reads; they warm the
        schedule manager's leader cache but touch no ordering state.
        """
        leader = self.schedule_manager.leader_for_round(skipped_round)
        anchor_vertex = self.dag.vertex_of(skipped_round, leader)
        self._tracer.emit(
            "anchor_skipped",
            node=self.owner,
            round=skipped_round,
            leader=leader,
            anchor_present=anchor_vertex is not None,
            direct_stake=(
                self._direct_vote_stake(anchor_vertex) if anchor_vertex is not None else 0
            ),
            threshold=self.committee.validity_threshold,
        )

    def _emit_ordered(self, vertex: Vertex, anchor_round: Round, now: SimTime) -> None:
        position = self.ordered_count
        self.ordered_count = position + 1
        key = vertex.id
        token = _ORDERING_TOKENS.get(key)
        if token is None:
            evict_oldest_half(_ORDERING_TOKENS, 1 << 16)
            token = _ORDERING_TOKENS[key] = f"{vertex.round}:{vertex.source};".encode("ascii")
        self._ordering_digest.update(token)
        count = position + 1
        if not count & (ORDERING_CHECKPOINT_INTERVAL - 1):
            self.ordering_checkpoints.append((count, self._ordering_digest.hexdigest()))
        if self._tracing:
            # Commit latency per vertex: creation (sim time) to ordering.
            self._tracer.emit(
                "vertex_ordered",
                node=self.owner,
                round=vertex.round,
                source=vertex.source,
                anchor_round=anchor_round,
                position=position,
                latency=now - vertex.created_at,
            )
        callbacks = self._ordered_callbacks
        if self.record_sequence or callbacks:
            record = OrderedVertex(
                vertex=vertex,
                ordered_at=now,
                anchor_round=anchor_round,
                position=position,
            )
            if self.record_sequence:
                self.ordered_sequence.append(record)
            self.schedule_manager.on_vertex_ordered(vertex)
            for callback in callbacks:
                callback(record)
        else:
            # No observer and no recorded sequence: skip materializing the
            # OrderedVertex (n-1 of n validators in a benchmark run).
            self.schedule_manager.on_vertex_ordered(vertex)

    # -- state sync -------------------------------------------------------------------------

    def fast_forward(self, horizon_round: Round) -> Optional[Round]:
        """Skip ordering of history below ``horizon_round`` (state sync).

        A validator that falls behind its peers' garbage-collection horizon
        can no longer retrieve the full DAG for the rounds it missed; the
        production system resolves this with checkpoint-based state sync.
        The simulation models it by advancing ``lastOrderedRound`` to the
        horizon: ordering resumes from the first anchor round at or after
        it, and the skipped interval is recorded in ``state_sync_gaps``.

        Anchor rounds strictly inside the jumped interval are reported
        through ``schedule_manager.on_anchor_skipped``, mirroring what
        ``_commit_anchor`` does for gaps below a committed anchor: from
        this validator's commit rule's perspective those anchors were
        passed without a local commit.  The target round itself is *not*
        reported — it is the serving peer's last committed anchor round,
        so its leader performed.  In the full state-sync path the node
        adopts the serving peer's authoritative scores right after this
        call (``adopt_state``), which overwrites the local estimate;
        reporting here keeps Shoal-style scoring consistent for callers
        that fast-forward *without* adopting remote scores, instead of
        silently leaving the gap unscored.

        Returns the new last-ordered round, or ``None`` when no jump was
        needed.
        """
        target = horizon_round if horizon_round % 2 == 0 else horizon_round + 1
        if target <= self.last_ordered_anchor_round:
            return None
        skipped_round = self.last_ordered_anchor_round + 2
        if skipped_round < 2:
            skipped_round = 2
        while skipped_round < target:
            self.schedule_manager.on_anchor_skipped(skipped_round)
            skipped_round += 2
        if self._tracing:
            self._tracer.emit(
                "state_sync",
                node=self.owner,
                from_round=self.last_ordered_anchor_round,
                to_round=target,
            )
        self.state_sync_gaps.append((self.last_ordered_anchor_round, target))
        self.last_ordered_anchor_round = target
        return target

    # -- introspection ---------------------------------------------------------------------

    @property
    def ordering_digest(self) -> str:
        """Hex digest summarizing the ordered prefix (for safety checks)."""
        return self._ordering_digest.hexdigest()

    def ordered_ids(self) -> List[VertexId]:
        """The ordered sequence as vertex ids (requires ``record_sequence``)."""
        return [record.vertex.id for record in self.ordered_sequence]

    def garbage_collect(self, keep_rounds: int = 20) -> int:
        """Prune DAG rounds far below the last ordered anchor round."""
        horizon = self.last_ordered_anchor_round - keep_rounds
        if horizon <= 0:
            return 0
        return self.dag.garbage_collect(horizon)
