"""Output records of the consensus engine."""

from __future__ import annotations

import dataclasses
from typing import Tuple

from repro.dag.vertex import Vertex
from repro.types import Round, SimTime, ValidatorId


@dataclasses.dataclass(frozen=True)
class OrderedVertex:
    """One vertex in the total order, with its delivery metadata.

    ``a_deliver(v.block, v.round, v.source)`` from Algorithm 2 corresponds
    to one :class:`OrderedVertex` being handed to the application layer.
    """

    vertex: Vertex
    ordered_at: SimTime
    anchor_round: Round
    position: int

    @property
    def round(self) -> Round:
        return self.vertex.round

    @property
    def source(self) -> ValidatorId:
        return self.vertex.source


@dataclasses.dataclass(frozen=True)
class CommittedSubDag:
    """The result of committing one anchor: the anchor plus the newly
    ordered portion of its causal history."""

    anchor: Vertex
    vertices: Tuple[Vertex, ...]
    committed_at: SimTime
    direct: bool

    @property
    def anchor_round(self) -> Round:
        return self.anchor.round

    @property
    def leader(self) -> ValidatorId:
        return self.anchor.source

    def __len__(self) -> int:
        return len(self.vertices)
