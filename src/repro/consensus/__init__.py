"""Bullshark consensus over the DAG (Algorithm 2 of the paper).

The engine interprets a validator's local DAG: it elects an anchor on
every even round according to the leader schedule, commits an anchor once
``f+1`` (by stake) vertices of the following round vote for it, and then
orders the anchor's causal history deterministically.  Skipped anchors are
ordered retroactively when a later committed anchor has a path to them.
The engine is parameterized by a schedule manager, which is how the same
code runs both baseline Bullshark (static schedule) and HammerHead
(dynamic schedule).
"""

from repro.consensus.bullshark import BullsharkConsensus
from repro.consensus.committed import CommittedSubDag, OrderedVertex

__all__ = ["BullsharkConsensus", "CommittedSubDag", "OrderedVertex"]
