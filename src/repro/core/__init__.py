"""HammerHead core: reputation-based dynamic leader scheduling.

This package holds the paper's primary contribution:

* :class:`ReputationScores` — per-validator scores accumulated during a
  schedule epoch (Section 3).
* Scoring rules — the HammerHead voting rule plus the Shoal-style and
  Carousel-style alternatives used in the ablation benchmarks.
* Schedule-change policies — when to recompute the schedule (every ``N``
  commits as in the evaluation, or every ``T`` rounds as in Algorithm 2).
* :func:`compute_next_schedule` — the bottom-``f`` / top-``f`` slot swap.
* :class:`HammerHeadScheduleManager` — the per-validator component that
  tracks the active schedule, applies schedule changes on committed
  anchors, and answers ``getLeader`` queries, including retroactively for
  rounds committed late.
* :class:`StaticScheduleManager` — the Bullshark baseline (no changes).
"""

from repro.core.scores import ReputationScores
from repro.core.scoring import (
    CarouselScoring,
    CompletenessScoring,
    HammerHeadScoring,
    ScoringContext,
    ScoringRule,
    ScoringView,
    ShoalScoring,
    make_scoring_rule,
    register_scoring_rule,
    scoring_rule_names,
)
from repro.core.schedule_change import (
    CommitCountPolicy,
    RoundBasedPolicy,
    ScheduleChangePolicy,
    compute_next_schedule,
    select_swap_sets,
    swap_summary,
)
from repro.core.manager import (
    HammerHeadScheduleManager,
    ScheduleManager,
    StaticScheduleManager,
)

__all__ = [
    "ReputationScores",
    "ScoringRule",
    "ScoringContext",
    "ScoringView",
    "HammerHeadScoring",
    "ShoalScoring",
    "CarouselScoring",
    "CompletenessScoring",
    "register_scoring_rule",
    "scoring_rule_names",
    "make_scoring_rule",
    "ScheduleChangePolicy",
    "CommitCountPolicy",
    "RoundBasedPolicy",
    "compute_next_schedule",
    "select_swap_sets",
    "swap_summary",
    "ScheduleManager",
    "HammerHeadScheduleManager",
    "StaticScheduleManager",
]
