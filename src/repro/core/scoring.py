"""Scoring rules: how committed information turns into reputation.

The paper proposes one deterministic rule (each validator earns a point
whenever its vertex votes for the leader of the previous round) but notes
the mechanism works "with any deterministic schedule-change rule".  The
ablation benchmarks compare four rules:

* :class:`HammerHeadScoring` — the paper's rule: +1 per vote for a leader.
* :class:`ShoalScoring` — the rule used by the concurrent Shoal framework:
  committed leaders gain points, skipped leaders lose points.
* :class:`CarouselScoring` — an activity-based rule in the spirit of
  Carousel: validators present in committed sub-DAGs gain points.
* :class:`CompletenessScoring` — the hardening the reputation-gaming
  measurements motivated: votes *cast* divided by votes *expected* per
  epoch, so an adversary that banks raw votes around its own slots still
  reads as incomplete.

All rules receive only information derived from committed sub-DAGs
(through a :class:`ScoringView`), so they keep the determinism Schedule
Agreement requires.  Rules are registered by name in a process-wide
registry (:func:`register_scoring_rule`) and selected by name from
``ExperimentConfig.scoring`` / ``ScenarioSpec.scoring`` /
``NodeConfig.scoring_rule``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.committee import Committee
from repro.core.scores import ReputationScores
from repro.errors import ConfigurationError
from repro.types import Round, ValidatorId


class ScoringView:
    """Everything a scoring rule is allowed to observe.

    The view is the widened successor of the old two-field
    ``ScoringContext``: on top of the committee and the epoch's mutable
    scores it exposes the active :class:`~repro.schedule.base.LeaderSchedule`,
    leader lookups against the full schedule history, per-round
    expected-voter sets, and committed-prefix round accounting.  All of
    it derives from the committed prefix, so every honest validator sees
    an identical view at the same prefix position — the property every
    rule's determinism rests on.

    Vote accounting (``votes_cast`` / ``votes_expected`` and the
    per-round expected-voter sets) is maintained by the schedule manager
    only when the active rule sets ``needs_vote_accounting``; the three
    count-based rules leave it off, keeping their hot path identical to
    the pre-view code.
    """

    __slots__ = (
        "committee",
        "scores",
        "manager",
        "track_votes",
        "votes_cast",
        "votes_expected",
        "committed_anchor_rounds",
        "last_committed_anchor_round",
        "_expected_voters",
        "_ordered_leaders",
        "_pending_votes",
    )

    def __init__(
        self,
        committee: Committee,
        scores: ReputationScores,
        manager=None,
    ) -> None:
        self.committee = committee
        self.scores = scores
        self.manager = manager
        self.track_votes = False
        # Current-epoch vote accounting (populated when track_votes).
        self.votes_cast: Dict[ValidatorId, int] = {}
        self.votes_expected: Dict[ValidatorId, int] = {}
        # Committed-prefix round accounting for the current epoch.
        self.committed_anchor_rounds: List[Round] = []
        self.last_committed_anchor_round: Optional[Round] = None
        # Anchor round -> validators whose ordered round+1 vertex could
        # have voted for that round's leader (current epoch only).
        self._expected_voters: Dict[Round, Set[ValidatorId]] = {}
        # Anchor rounds whose leader vertex appeared in the committed
        # prefix (spans epochs; pruned against the GC horizon).
        self._ordered_leaders: Set[Round] = set()
        # Non-voting round r+1 vertices ordered *before* the leader vertex
        # of round r: anchor round -> voters.  If the leader vertex is
        # ordered later, these become retroactive missed opportunities; if
        # it never is, they are pruned uncounted (nobody could vote for a
        # vertex that never entered the prefix).  Spans epochs, like the
        # leader markers.
        self._pending_votes: Dict[Round, Set[ValidatorId]] = {}

    # -- schedule access ------------------------------------------------------

    @property
    def active_schedule(self):
        """The manager's active :class:`LeaderSchedule` (``None`` unbound)."""
        return self.manager.active_schedule if self.manager is not None else None

    def leader_for_round(self, round_number: Round) -> ValidatorId:
        if self.manager is None:
            raise ConfigurationError("this scoring view is not bound to a schedule manager")
        return self.manager.leader_for_round(round_number)

    def schedule_for_round(self, round_number: Round):
        if self.manager is None:
            raise ConfigurationError("this scoring view is not bound to a schedule manager")
        return self.manager.schedule_for_round(round_number)

    # -- committed-prefix accounting -----------------------------------------

    @property
    def commits_in_epoch(self) -> int:
        # The manager's counter is authoritative (it survives state sync,
        # where the per-round list cannot be reconstructed).
        if self.manager is not None and hasattr(self.manager, "commits_in_epoch"):
            return self.manager.commits_in_epoch
        return len(self.committed_anchor_rounds)

    def note_anchor_committed(self, anchor_round: Round) -> None:
        self.committed_anchor_rounds.append(anchor_round)
        self.last_committed_anchor_round = anchor_round

    # -- vote accounting ------------------------------------------------------

    def note_leader_ordered(self, anchor_round: Round) -> Tuple[ValidatorId, ...]:
        """Mark the leader vertex of ``anchor_round`` as part of the prefix.

        Returns the voters whose non-voting round ``anchor_round + 1``
        vertices were ordered *before* the leader vertex: their missed
        votes become countable only now, and the caller (the schedule
        manager) records them retroactively.  The retro pass is a pure
        function of the committed prefix, so every honest validator
        performs it at the same position.
        """
        self._ordered_leaders.add(anchor_round)
        pending = self._pending_votes.pop(anchor_round, None)
        if not pending:
            return ()
        return tuple(sorted(pending))

    def leader_was_ordered(self, anchor_round: Round) -> bool:
        return anchor_round in self._ordered_leaders

    def note_vote_before_leader(self, voter: ValidatorId, anchor_round: Round) -> None:
        """A non-voting round ``anchor_round + 1`` vertex of ``voter`` was
        ordered while the leader vertex of ``anchor_round`` was not (yet)
        part of the prefix."""
        self._pending_votes.setdefault(anchor_round, set()).add(voter)

    def note_expected_vote(
        self, voter: ValidatorId, anchor_round: Round, voted: bool
    ) -> None:
        self.votes_expected[voter] = self.votes_expected.get(voter, 0) + 1
        if voted:
            self.votes_cast[voter] = self.votes_cast.get(voter, 0) + 1
        self._expected_voters.setdefault(anchor_round, set()).add(voter)

    def expected_voters(self, anchor_round: Round) -> frozenset:
        """Validators whose ordered vertex could have voted at ``anchor_round``."""
        return frozenset(self._expected_voters.get(anchor_round, ()))

    def ordered_leader_rounds(self) -> Tuple[Round, ...]:
        """Anchor rounds whose leader vertex entered the committed prefix
        (sorted; the state-sync snapshot carries this set)."""
        return tuple(sorted(self._ordered_leaders))

    def completeness_of(self, validator: ValidatorId) -> float:
        """``votes cast / votes expected`` this epoch (0 when never expected)."""
        expected = self.votes_expected.get(validator, 0)
        if not expected:
            return 0.0
        return self.votes_cast.get(validator, 0) / expected

    # -- lifecycle ------------------------------------------------------------

    def reset_epoch(self) -> None:
        """Drop per-epoch accounting (called after a schedule change)."""
        self.votes_cast.clear()
        self.votes_expected.clear()
        self._expected_voters.clear()
        self.committed_anchor_rounds.clear()

    def prune_below(self, round_number: Round) -> None:
        """Forget prefix bookkeeping for rounds below ``round_number``.

        Leader-presence markers span epochs (a straggler vote may name a
        leader ordered long ago), so they are pruned against the commit
        frontier instead of the epoch boundary — this is what keeps the
        view's memory bounded on production-length runs.
        """
        stale = [r for r in self._ordered_leaders if r < round_number]
        for r in stale:
            self._ordered_leaders.discard(r)
        dropped = [r for r in self._pending_votes if r < round_number]
        for r in dropped:
            del self._pending_votes[r]

    def adopt_accounting(
        self,
        votes_cast: Dict[ValidatorId, int],
        votes_expected: Dict[ValidatorId, int],
        ordered_leader_rounds,
        pending_votes=(),
    ) -> None:
        """Take over a peer's vote accounting (state sync)."""
        self.votes_cast = dict(votes_cast)
        self.votes_expected = dict(votes_expected)
        self._expected_voters.clear()
        self._ordered_leaders = set(ordered_leader_rounds)
        self._pending_votes = {
            anchor_round: set(voters) for anchor_round, voters in pending_votes
        }

    def pending_votes_snapshot(self) -> Tuple[Tuple[Round, Tuple[ValidatorId, ...]], ...]:
        """The not-yet-countable missed votes, picklable (state sync)."""
        return tuple(
            (anchor_round, tuple(sorted(voters)))
            for anchor_round, voters in sorted(self._pending_votes.items())
        )


#: Backwards-compatible alias: the old two-field context grew into the
#: view without changing its construction signature.
ScoringContext = ScoringView


class ScoringRule:
    """Interface of deterministic scoring rules.

    The schedule manager invokes these callbacks while it processes the
    committed prefix; implementations mutate ``context.scores``.
    """

    name = "abstract"

    #: ``True`` asks the schedule manager to maintain the view's
    #: per-round expected-voter sets and cast/expected counters.  Off by
    #: default so count-based rules pay nothing for the bookkeeping.
    needs_vote_accounting = False

    def on_vote(self, voter: ValidatorId, anchor_round: Round, context: ScoringView) -> None:
        """An ordered vertex of ``voter`` at round ``anchor_round + 1`` linked
        to the leader vertex of ``anchor_round``."""

    def on_expected_vote(
        self, voter: ValidatorId, anchor_round: Round, voted: bool, context: ScoringView
    ) -> None:
        """``voter``'s ordered vertex at ``anchor_round + 1`` could have voted
        (the leader vertex of ``anchor_round`` was part of the committed
        prefix); ``voted`` says whether it did.  Only invoked when the rule
        sets :attr:`needs_vote_accounting`."""

    def on_anchor_committed(
        self, leader: ValidatorId, anchor_round: Round, context: ScoringView
    ) -> None:
        """The anchor of ``anchor_round`` (led by ``leader``) was committed."""

    def on_anchor_skipped(
        self, leader: ValidatorId, anchor_round: Round, context: ScoringView
    ) -> None:
        """The anchor of ``anchor_round`` was skipped (no commit for it)."""

    def on_vertex_in_committed_subdag(
        self, source: ValidatorId, round_number: Round, context: ScoringView
    ) -> None:
        """A vertex of ``source`` was linearized as part of a committed sub-DAG."""

    def prepare_epoch_scores(self, context: ScoringView) -> None:
        """Last write to ``context.scores`` before the swap sets are selected.

        Invoked exactly once per schedule change, after the change policy
        fired and before :func:`~repro.core.schedule_change.select_swap_sets`
        reads the scores.  Ratio-style rules (completeness) materialize
        their scores here; count-based rules score incrementally and leave
        this a no-op.
        """


class HammerHeadScoring(ScoringRule):
    """The paper's rule: one point per vote for a leader's proposal.

    "Each validator receives 1 point each time they vote for a leader's
    proposal (i.e., there is a parent link from the block of the validator
    at round r to the leader of round r-1)."  Crashed validators stop
    voting and therefore stop scoring; Byzantine validators are discouraged
    from withholding votes for honest leaders because withholding costs
    them reputation.
    """

    name = "hammerhead"

    def __init__(self, points_per_vote: float = 1.0) -> None:
        self.points_per_vote = points_per_vote

    def on_vote(self, voter: ValidatorId, anchor_round: Round, context: ScoringView) -> None:
        context.scores.add(voter, self.points_per_vote)


class ShoalScoring(ScoringRule):
    """Shoal-style rule: reward committed leaders, punish skipped leaders."""

    name = "shoal"

    def __init__(self, committed_points: float = 1.0, skipped_points: float = -1.0) -> None:
        self.committed_points = committed_points
        self.skipped_points = skipped_points

    def on_anchor_committed(
        self, leader: ValidatorId, anchor_round: Round, context: ScoringView
    ) -> None:
        context.scores.add(leader, self.committed_points)

    def on_anchor_skipped(
        self, leader: ValidatorId, anchor_round: Round, context: ScoringView
    ) -> None:
        context.scores.add(leader, self.skipped_points)


class CarouselScoring(ScoringRule):
    """Activity-based rule: presence in committed sub-DAGs earns points.

    Carousel tracks which validators were active in the latest committed
    block of a chained protocol; the closest DAG analogue is counting the
    vertices of each validator that make it into committed sub-DAGs.
    """

    name = "carousel"

    def __init__(self, points_per_vertex: float = 1.0) -> None:
        self.points_per_vertex = points_per_vertex

    def on_vertex_in_committed_subdag(
        self, source: ValidatorId, round_number: Round, context: ScoringView
    ) -> None:
        context.scores.add(source, self.points_per_vertex)


class CompletenessScoring(ScoringRule):
    """Vote *completeness*: votes cast divided by votes expected per epoch.

    The vote-based rule counts raw votes, which ties an adversary that
    votes "most of the time" with honest validators whose counts wobble
    with epoch boundaries.  Normalizing by opportunity removes the
    wobble: a vote is *expected* from a validator exactly when its own
    round ``r+1`` vertex was linearized and the leader vertex of round
    ``r`` was already part of the committed prefix (so the validator
    demonstrably could have linked to it).  Honest validators therefore
    sit at (or within timeout-noise of) 1.0, and any deliberate
    withholding — however it is scheduled around the adversary's own
    slots — shows up as a strictly lower ratio.

    A validator with no expected votes in the epoch (crashed or fully
    isolated — none of its vertices were linearized) scores 0, matching
    the vote-based rule's treatment of crashed validators.
    """

    name = "completeness"
    needs_vote_accounting = True

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0.0:
            raise ConfigurationError("the completeness scale must be positive")
        self.scale = scale

    def prepare_epoch_scores(self, context: ScoringView) -> None:
        scores = context.scores
        expected = context.votes_expected
        cast = context.votes_cast
        for validator in context.committee.validators:
            opportunities = expected.get(validator, 0)
            if opportunities:
                value = self.scale * cast.get(validator, 0) / opportunities
            else:
                value = 0.0
            scores.set(validator, value)


# -- the scoring-rule registry ----------------------------------------------

#: Name -> no-argument factory.  The registry is the single source of
#: truth for which rules exist: ``ExperimentConfig``/``NodeConfig``
#: validation, the scenario engine's ``scoring_rule`` sweep axis, and the
#: attack x rule matrix all enumerate it.
SCORING_RULE_REGISTRY: Dict[str, Callable[[], ScoringRule]] = {}


def register_scoring_rule(
    name: str, factory: Callable[[], ScoringRule], replace: bool = False
) -> None:
    """Register ``factory`` under ``name`` (a no-argument rule constructor)."""
    if not name:
        raise ConfigurationError("a scoring rule needs a name")
    if name in SCORING_RULE_REGISTRY and not replace:
        raise ConfigurationError(f"scoring rule {name!r} is already registered")
    SCORING_RULE_REGISTRY[name] = factory


def scoring_rule_names() -> Tuple[str, ...]:
    """Registered rule names, in registration order."""
    # det: ordered -- registration order is the documented public order.
    return tuple(SCORING_RULE_REGISTRY)


def make_scoring_rule(name: str) -> ScoringRule:
    """Instantiate the rule registered under ``name``."""
    try:
        factory = SCORING_RULE_REGISTRY[name]
    except KeyError:
        known = ", ".join(scoring_rule_names())
        raise ConfigurationError(
            f"unknown scoring rule {name!r} (known: {known})"
        ) from None
    return factory()


register_scoring_rule("hammerhead", HammerHeadScoring)
register_scoring_rule("shoal", ShoalScoring)
register_scoring_rule("carousel", CarouselScoring)
register_scoring_rule("completeness", CompletenessScoring)
