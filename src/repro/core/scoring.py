"""Scoring rules: how committed information turns into reputation.

The paper proposes one deterministic rule (each validator earns a point
whenever its vertex votes for the leader of the previous round) but notes
the mechanism works "with any deterministic schedule-change rule".  The
ablation benchmarks compare three rules:

* :class:`HammerHeadScoring` — the paper's rule: +1 per vote for a leader.
* :class:`ShoalScoring` — the rule used by the concurrent Shoal framework:
  committed leaders gain points, skipped leaders lose points.
* :class:`CarouselScoring` — an activity-based rule in the spirit of
  Carousel: validators present in committed sub-DAGs gain points.

All rules receive only information derived from committed sub-DAGs, so
they keep the determinism Schedule Agreement requires.
"""

from __future__ import annotations

import dataclasses

from repro.committee import Committee
from repro.core.scores import ReputationScores
from repro.types import Round, ValidatorId


@dataclasses.dataclass
class ScoringContext:
    """State handed to scoring rules on every event."""

    committee: Committee
    scores: ReputationScores


class ScoringRule:
    """Interface of deterministic scoring rules.

    The schedule manager invokes these callbacks while it processes the
    committed prefix; implementations mutate ``context.scores``.
    """

    name = "abstract"

    def on_vote(self, voter: ValidatorId, anchor_round: Round, context: ScoringContext) -> None:
        """An ordered vertex of ``voter`` at round ``anchor_round + 1`` linked
        to the leader vertex of ``anchor_round``."""

    def on_anchor_committed(
        self, leader: ValidatorId, anchor_round: Round, context: ScoringContext
    ) -> None:
        """The anchor of ``anchor_round`` (led by ``leader``) was committed."""

    def on_anchor_skipped(
        self, leader: ValidatorId, anchor_round: Round, context: ScoringContext
    ) -> None:
        """The anchor of ``anchor_round`` was skipped (no commit for it)."""

    def on_vertex_in_committed_subdag(
        self, source: ValidatorId, round_number: Round, context: ScoringContext
    ) -> None:
        """A vertex of ``source`` was linearized as part of a committed sub-DAG."""


class HammerHeadScoring(ScoringRule):
    """The paper's rule: one point per vote for a leader's proposal.

    "Each validator receives 1 point each time they vote for a leader's
    proposal (i.e., there is a parent link from the block of the validator
    at round r to the leader of round r-1)."  Crashed validators stop
    voting and therefore stop scoring; Byzantine validators are discouraged
    from withholding votes for honest leaders because withholding costs
    them reputation.
    """

    name = "hammerhead"

    def __init__(self, points_per_vote: float = 1.0) -> None:
        self.points_per_vote = points_per_vote

    def on_vote(self, voter: ValidatorId, anchor_round: Round, context: ScoringContext) -> None:
        context.scores.add(voter, self.points_per_vote)


class ShoalScoring(ScoringRule):
    """Shoal-style rule: reward committed leaders, punish skipped leaders."""

    name = "shoal"

    def __init__(self, committed_points: float = 1.0, skipped_points: float = -1.0) -> None:
        self.committed_points = committed_points
        self.skipped_points = skipped_points

    def on_anchor_committed(
        self, leader: ValidatorId, anchor_round: Round, context: ScoringContext
    ) -> None:
        context.scores.add(leader, self.committed_points)

    def on_anchor_skipped(
        self, leader: ValidatorId, anchor_round: Round, context: ScoringContext
    ) -> None:
        context.scores.add(leader, self.skipped_points)


class CarouselScoring(ScoringRule):
    """Activity-based rule: presence in committed sub-DAGs earns points.

    Carousel tracks which validators were active in the latest committed
    block of a chained protocol; the closest DAG analogue is counting the
    vertices of each validator that make it into committed sub-DAGs.
    """

    name = "carousel"

    def __init__(self, points_per_vertex: float = 1.0) -> None:
        self.points_per_vertex = points_per_vertex

    def on_vertex_in_committed_subdag(
        self, source: ValidatorId, round_number: Round, context: ScoringContext
    ) -> None:
        context.scores.add(source, self.points_per_vertex)
