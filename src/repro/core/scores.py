"""Reputation scores (the ``scores(.)`` data structure of Section 3).

Every validator starts a schedule epoch with a score of zero.  Scores are
only ever updated from information derived from *committed* sub-DAGs, so
every honest validator computes identical scores for identical committed
prefixes — the property Schedule Agreement (Proposition 1) rests on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.committee import Committee
from repro.errors import ScheduleError
from repro.types import Stake, ValidatorId


class ReputationScores:
    """Per-validator reputation accumulated during one schedule epoch."""

    def __init__(self, committee: Committee) -> None:
        self.committee = committee
        self._scores: Dict[ValidatorId, float] = {
            validator: 0.0 for validator in committee.validators
        }

    # -- updates --------------------------------------------------------------

    def add(self, validator: ValidatorId, points: float = 1.0) -> None:
        """Add ``points`` to a validator's score."""
        if validator not in self._scores:
            raise ScheduleError(f"validator {validator} is not in the committee")
        self._scores[validator] += points

    def set(self, validator: ValidatorId, value: float) -> None:
        """Overwrite a validator's score (ratio-style rules materialize
        their per-epoch scores in one write instead of accumulating)."""
        if validator not in self._scores:
            raise ScheduleError(f"validator {validator} is not in the committee")
        self._scores[validator] = value

    def reset(self) -> None:
        """Zero all scores (called at the start of a new schedule epoch)."""
        for validator in self._scores:
            self._scores[validator] = 0.0

    # -- queries ---------------------------------------------------------------

    def score_of(self, validator: ValidatorId) -> float:
        if validator not in self._scores:
            raise ScheduleError(f"validator {validator} is not in the committee")
        return self._scores[validator]

    def as_dict(self) -> Dict[ValidatorId, float]:
        return dict(self._scores)

    def snapshot(self) -> "ReputationScores":
        """An independent copy (used when archiving an epoch's scores)."""
        copy = ReputationScores(self.committee)
        copy._scores = dict(self._scores)
        return copy

    # -- rankings ---------------------------------------------------------------

    def ranked_ascending(self) -> List[ValidatorId]:
        """Validators from lowest to highest score.

        Ties are broken deterministically by validator id (the paper
        requires deterministic tie resolution so that every validator
        derives the same B and G sets).
        """
        return sorted(self._scores, key=lambda validator: (self._scores[validator], validator))

    def ranked_descending(self) -> List[ValidatorId]:
        """Validators from highest to lowest score, ties by id."""
        return sorted(
            self._scores, key=lambda validator: (-self._scores[validator], validator)
        )

    def lowest_by_stake_budget(self, stake_budget: Stake) -> List[ValidatorId]:
        """Lowest-scoring validators whose cumulative stake fits the budget.

        This implements "a set B that contains at most f validators (by
        stake)": validators are taken in ascending score order while their
        cumulative stake stays within ``stake_budget``.
        """
        selected: List[ValidatorId] = []
        used: Stake = 0
        for validator in self.ranked_ascending():
            stake = self.committee.stake_of(validator)
            if used + stake > stake_budget:
                continue
            selected.append(validator)
            used += stake
        return selected

    def highest(self, count: int, excluding: Iterable[ValidatorId] = ()) -> List[ValidatorId]:
        """The ``count`` highest-scoring validators outside ``excluding``."""
        if count <= 0:
            return []
        banned = set(excluding)
        result = []
        for validator in self.ranked_descending():
            if validator in banned:
                continue
            result.append(validator)
            if len(result) == count:
                break
        return result

    def items(self) -> Tuple[Tuple[ValidatorId, float], ...]:
        return tuple(sorted(self._scores.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ReputationScores({self._scores})"
