"""When and how the leader schedule changes.

Two pieces live here:

* Schedule-change *policies* decide when an epoch ends.  The paper's
  pseudocode triggers after ``T`` rounds of the active schedule
  (Algorithm 2, line 30); the evaluation recomputes the schedule every 10
  committed leaders and the Sui mainnet every 300.  Both are deterministic
  functions of the committed anchor sequence, so either choice preserves
  Schedule Agreement.
* :func:`compute_next_schedule` builds schedule ``S'`` from ``S``: the
  lowest-reputation validators (set ``B``, at most ``f`` by stake) lose
  their slots to the highest-reputation validators (set ``G``), applied
  round-robin over the slots of ``S``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.committee import Committee
from repro.core.scores import ReputationScores
from repro.errors import ScheduleError
from repro.schedule.base import LeaderSchedule
from repro.types import Round, ValidatorId


class ScheduleChangePolicy:
    """Decides whether the epoch ends at a given committed anchor."""

    def should_change(
        self,
        commits_in_epoch: int,
        anchor_round: Round,
        schedule: LeaderSchedule,
    ) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class CommitCountPolicy(ScheduleChangePolicy):
    """Recompute the schedule every ``commits`` committed leaders.

    The paper's evaluation uses 10; the Sui mainnet uses the more
    conservative 300.
    """

    commits: int = 10

    def __post_init__(self) -> None:
        if self.commits <= 0:
            raise ScheduleError("the commit count must be positive")

    def should_change(
        self,
        commits_in_epoch: int,
        anchor_round: Round,
        schedule: LeaderSchedule,
    ) -> bool:
        return commits_in_epoch >= self.commits

    def describe(self) -> str:
        return f"every {self.commits} commits"


@dataclasses.dataclass(frozen=True)
class RoundBasedPolicy(ScheduleChangePolicy):
    """Recompute the schedule once the committed anchor round passes
    ``schedule.initial_round + rounds`` (Algorithm 2, line 30)."""

    rounds: int = 20

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ScheduleError("the round horizon must be positive")

    def should_change(
        self,
        commits_in_epoch: int,
        anchor_round: Round,
        schedule: LeaderSchedule,
    ) -> bool:
        return anchor_round >= schedule.initial_round + self.rounds

    def describe(self) -> str:
        return f"every {self.rounds} rounds"


def select_swap_sets(
    scores: ReputationScores,
    committee: Committee,
    exclude_fraction: float = 1.0 / 3.0,
) -> Tuple[List[ValidatorId], List[ValidatorId]]:
    """Select the sets ``B`` (demoted) and ``G`` (promoted).

    ``B`` holds the lowest-reputation validators whose cumulative stake is
    at most ``exclude_fraction`` of the total (the paper's evaluation uses
    one third, the Sui mainnet one fifth).  ``G`` holds an equal number of
    the highest-reputation validators outside ``B``.  Ties are resolved
    deterministically (by validator id) so every honest validator derives
    the same sets.
    """
    if not 0.0 <= exclude_fraction < 1.0:
        raise ScheduleError("exclude_fraction must lie in [0, 1)")
    stake_budget = int(exclude_fraction * committee.total_stake)
    demoted = scores.lowest_by_stake_budget(stake_budget)
    promoted = scores.highest(len(demoted), excluding=demoted)
    # When the committee is tiny, there may not be enough distinct
    # validators to promote; shrink B so that |G| == |B| always holds.
    if len(promoted) < len(demoted):
        demoted = demoted[: len(promoted)]
    return demoted, promoted


def swap_summary(previous: LeaderSchedule, new: LeaderSchedule) -> int:
    """Number of slots the swap reassigned between two consecutive schedules.

    This is the ``demoted_slots`` bookkeeping of the schedule-change
    records: a slot counts when its holder changed between the schedules.
    """
    return sum(1 for old, new_slot in zip(previous.slots, new.slots) if old != new_slot)


def swap_details(
    previous: LeaderSchedule, new: LeaderSchedule
) -> Tuple[Tuple[ValidatorId, ...], Tuple[ValidatorId, ...]]:
    """Validators demoted/promoted between two consecutive schedules.

    A validator is *demoted* when it holds fewer slots in ``new`` than in
    ``previous`` and *promoted* when it holds more; validators whose slot
    count is unchanged appear in neither.  Sorted tuples, so the result
    is deterministic and embeds directly in trace events.
    """
    balance: Dict[ValidatorId, int] = {}
    for holder in previous.slots:
        balance[holder] = balance.get(holder, 0) - 1
    for holder in new.slots:
        balance[holder] = balance.get(holder, 0) + 1
    demoted = tuple(sorted(v for v, delta in balance.items() if delta < 0))
    promoted = tuple(sorted(v for v, delta in balance.items() if delta > 0))
    return demoted, promoted


def compute_next_schedule(
    previous: LeaderSchedule,
    scores: ReputationScores,
    committee: Committee,
    new_initial_round: Round,
    exclude_fraction: float = 1.0 / 3.0,
    base_slots: Optional[Tuple[ValidatorId, ...]] = None,
) -> LeaderSchedule:
    """Compute schedule ``S'`` from the epoch's reputation scores.

    Every slot held by a ``B`` validator is reassigned to a ``G``
    validator, walking ``G`` round-robin (Section 3's ``pos`` table is the
    slot-count bookkeeping this produces implicitly).  Slots held by
    validators outside ``B`` are untouched, so well-behaved validators keep
    exactly the representation their stake gave them.

    ``base_slots`` selects the slot assignment the swap is applied to.  By
    default it is the previous schedule's slots (the paper's ``pos`` table
    description); the HammerHead schedule manager passes the *unbiased
    initial* slots of the epoch instead, mirroring the production
    implementation's swap table: the swap is always computed against the
    stake-proportional baseline, which is what lets a validator that
    recovers from a crash regain its original slots as soon as it leaves
    the bottom of the reputation ranking ("swiftly reintegrating them when
    they recover", Section 1).
    """
    if new_initial_round % 2 != 0:
        raise ScheduleError("schedules must start on an anchor (even) round")
    if new_initial_round <= previous.initial_round:
        raise ScheduleError(
            "the next schedule must start strictly after the previous one "
            f"(previous starts at {previous.initial_round}, next at {new_initial_round})"
        )
    slots_source = base_slots if base_slots is not None else previous.slots
    demoted, promoted = select_swap_sets(scores, committee, exclude_fraction)
    demoted_set = set(demoted)
    new_slots: List[ValidatorId] = []
    promote_index = 0
    for slot in slots_source:
        if slot in demoted_set and promoted:
            replacement = promoted[promote_index % len(promoted)]
            promote_index += 1
            new_slots.append(replacement)
        else:
            new_slots.append(slot)
    return LeaderSchedule(
        epoch=previous.epoch + 1,
        initial_round=new_initial_round,
        slots=tuple(new_slots),
    )
