"""Schedule managers: the per-validator side of HammerHead.

A schedule manager answers ``getLeader(round)`` queries for the consensus
engine and the round-advancement logic, accumulates reputation scores from
the committed prefix, and switches to the next schedule when the
schedule-change policy fires on a committed anchor.  Because both the
scores and the trigger depend only on the totally ordered committed
prefix, every honest validator walks through exactly the same sequence of
schedules (Proposition 1), possibly at different wall-clock times — a
lagging validator applies them retroactively by looking up older schedules
in its history.

Two managers implement the same interface:

* :class:`StaticScheduleManager` — baseline Bullshark: the initial
  schedule is used forever.
* :class:`HammerHeadScheduleManager` — the paper's mechanism.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Dict, List, Optional

from repro.committee import Committee
from repro.core.schedule_change import (
    CommitCountPolicy,
    ScheduleChangePolicy,
    compute_next_schedule,
    swap_details,
    swap_summary,
)
from repro.core.scores import ReputationScores
from repro.core.scoring import HammerHeadScoring, ScoringRule, ScoringView
from repro.dag.vertex import Vertex
from repro.errors import ScheduleError
from repro.obs.trace import NULL_TRACER, Tracer
from repro.schedule.base import LeaderSchedule
from repro.types import Round, ValidatorId, VertexId, is_anchor_round


# How many rounds of leader-presence markers the scoring view keeps below
# the commit frontier.  Must stay comfortably above the node's GC depth
# (50 rounds): a straggler vote can only name a leader that is still
# above the GC horizon.
_LEADER_MEMORY_ROUNDS = 64


@dataclasses.dataclass(frozen=True)
class ScheduleChangeRecord:
    """Bookkeeping about one schedule switch (exposed for tests/metrics)."""

    epoch: int
    triggered_by_round: Round
    new_initial_round: Round
    scores: Dict[ValidatorId, float]
    demoted_slots: int
    # Name of the scoring rule that produced ``scores`` (the attack x rule
    # matrix labels trajectories with it).
    scoring: str = ""


class ScheduleManager:
    """Common interface of the static and HammerHead schedule managers."""

    # Observability (repro.obs): only the rare schedule-change site
    # consults these; leader lookups and scoring hooks never do.
    _tracer: Tracer = NULL_TRACER
    _tracing = False
    trace_owner: ValidatorId = -1

    def install_tracer(self, tracer: Tracer, owner: ValidatorId) -> None:
        """Attach a tracer; events carry ``owner`` as their node id."""
        self._tracer = tracer
        self._tracing = tracer.enabled
        self.trace_owner = owner

    def __init__(self, committee: Committee, initial: LeaderSchedule) -> None:
        self.committee = committee
        self.history: List[LeaderSchedule] = [initial]
        # ``initial_round`` of every schedule in ``history``, kept sorted so
        # that ``schedule_for_round`` can binary-search instead of scanning
        # the whole history (it is called for every ordered vertex).  The
        # cache is rebuilt lazily whenever it falls out of sync with
        # ``history`` (append on schedule change, wholesale replacement on
        # state sync).
        self._history_keys: List[Round] = [initial.initial_round]
        # Per-round leader memo.  Leaders are pure functions of the
        # schedule history; the tag/length pair detects appends (schedule
        # changes) and wholesale replacement (state sync), matching the
        # staleness checks of ``_history_keys``.  ``leader_for_round`` is
        # called on every commit probe and anchor-timer decision, which
        # made the bisect + modular lookup measurable at committee 25+.
        self._leader_cache: Dict[Round, ValidatorId] = {}
        self._leader_cache_tag: LeaderSchedule = initial
        self._leader_cache_len: int = 1

    # -- leader lookup ---------------------------------------------------------

    @property
    def active_schedule(self) -> LeaderSchedule:
        return self.history[-1]

    def schedule_for_round(self, round_number: Round) -> LeaderSchedule:
        """The schedule covering ``round_number``.

        Rounds older than the active schedule are resolved against the
        schedule history, which is what lets a validator that commits an
        old anchor late interpret it under the schedule that was active
        for that round (retroactive application, Section 3.1).
        """
        if not is_anchor_round(round_number):
            raise ScheduleError(f"round {round_number} is not an anchor round")
        history = self.history
        keys = self._history_keys
        if len(keys) != len(history) or (keys and keys[-1] != history[-1].initial_round):
            keys = self._history_keys = [schedule.initial_round for schedule in history]
        index = bisect.bisect_right(keys, round_number) - 1
        if index < 0:
            # Rounds before the very first schedule fall back to it; this
            # only happens for the first anchor round of the DAG.
            index = 0
        return history[index]

    def leader_for_round(self, round_number: Round) -> ValidatorId:
        """``getLeader(round, activeSchedule)`` from Algorithm 1."""
        history = self.history
        if self._leader_cache_tag is not history[-1] or self._leader_cache_len != len(history):
            self._leader_cache.clear()
            self._leader_cache_tag = history[-1]
            self._leader_cache_len = len(history)
        leader = self._leader_cache.get(round_number)
        if leader is None:
            schedule = self.schedule_for_round(round_number)
            leader = schedule.leader_for_round(max(round_number, schedule.initial_round))
            self._leader_cache[round_number] = leader
        return leader

    # -- consensus feedback -------------------------------------------------------

    def on_vertex_ordered(self, vertex: Vertex) -> None:
        """A vertex was linearized as part of a committed sub-DAG."""

    def on_anchor_committed(self, anchor: Vertex) -> Optional[LeaderSchedule]:
        """An anchor was committed; returns the new schedule if one started."""
        return None

    def on_anchor_skipped(self, round_number: Round) -> None:
        """The anchor of ``round_number`` was skipped by the commit rule."""

    # -- state sync -----------------------------------------------------------------

    def adopt_state(
        self,
        schedules: List[LeaderSchedule],
        scores: Dict[ValidatorId, float],
        commits_in_epoch: int,
        vote_accounting=None,
    ) -> None:
        """Adopt schedule state received through state sync (checkpoints).

        The static manager has no dynamic state beyond its single schedule,
        so the default implementation is a no-op.
        """

    def vote_accounting_snapshot(self):
        """Vote accounting carried by state-sync snapshots (``None`` unless
        the manager runs a rule that tracks votes)."""
        return None

    # -- introspection ---------------------------------------------------------------

    @property
    def epochs(self) -> int:
        return len(self.history)

    def describe(self) -> str:
        raise NotImplementedError


class StaticScheduleManager(ScheduleManager):
    """Baseline Bullshark: the initial (round-robin) schedule never changes."""

    def describe(self) -> str:
        return "static round-robin schedule (Bullshark baseline)"


class HammerHeadScheduleManager(ScheduleManager):
    """The HammerHead dynamic schedule manager."""

    def __init__(
        self,
        committee: Committee,
        initial: LeaderSchedule,
        policy: Optional[ScheduleChangePolicy] = None,
        scoring: Optional[ScoringRule] = None,
        exclude_fraction: float = 1.0 / 3.0,
    ) -> None:
        super().__init__(committee, initial)
        self.policy = policy if policy is not None else CommitCountPolicy(10)
        self.scoring = scoring if scoring is not None else HammerHeadScoring()
        self.exclude_fraction = exclude_fraction
        # The swap that produces each new schedule is always applied to the
        # unbiased initial slot assignment (see compute_next_schedule): a
        # validator that stops under-performing automatically regains its
        # original representation at the next schedule change.
        self._base_slots = initial.slots
        self.scores = ReputationScores(committee)
        # The widened scoring view: committee + scores as before, plus
        # schedule access, expected-voter sets, and committed-prefix round
        # accounting.  ``_context`` survives as an alias for external code
        # that reached for the old name.
        self._view = ScoringView(committee, self.scores, manager=self)
        self._view.track_votes = bool(getattr(self.scoring, "needs_vote_accounting", False))
        self._track_votes = self._view.track_votes
        self._context = self._view
        self.commits_in_epoch = 0
        self.change_records: List[ScheduleChangeRecord] = []

    # -- consensus feedback ---------------------------------------------------------

    def on_vertex_ordered(self, vertex: Vertex) -> None:
        """Update reputation from one newly linearized vertex.

        The vertex is part of a committed sub-DAG, so every honest
        validator processes it (in the same order), which keeps the scores
        identical everywhere.  Scoring looks one round back: if this vertex
        links to the leader vertex of the previous (anchor) round, the
        vertex's source voted for that leader.
        """
        view = self._view
        self.scoring.on_vertex_in_committed_subdag(vertex.source, vertex.round, view)
        previous_round = vertex.round - 1
        if not is_anchor_round(previous_round):
            # ``vertex.round`` is an anchor round (or 0/1): record the
            # leader vertex entering the committed prefix, which is what
            # later marks its round-``r+1`` voters as *expected*.
            if (
                self._track_votes
                and is_anchor_round(vertex.round)
                and vertex.source == self.leader_for_round(vertex.round)
            ):
                # Voters whose non-voting vertex preceded this leader in
                # the linearization missed a vote that only now became
                # countable; record the opportunities retroactively.
                for voter in view.note_leader_ordered(vertex.round):
                    view.note_expected_vote(voter, vertex.round, False)
                    self.scoring.on_expected_vote(voter, vertex.round, False, view)
            return
        leader = self.leader_for_round(previous_round)
        leader_vertex = VertexId(round=previous_round, source=leader)
        voted = leader_vertex in vertex.edges
        if self._track_votes:
            if view.leader_was_ordered(previous_round):
                # The leader vertex precedes this vertex in the
                # linearization (it is a causal ancestor whenever the vote
                # exists), so the vote was *possible*: count the
                # opportunity either way.
                view.note_expected_vote(vertex.source, previous_round, voted)
                self.scoring.on_expected_vote(vertex.source, previous_round, voted, view)
            elif not voted:
                # The leader vertex may still enter the prefix later; park
                # the missed vote until it does (or is pruned).
                view.note_vote_before_leader(vertex.source, previous_round)
        if voted:
            self.scoring.on_vote(vertex.source, previous_round, view)

    def on_anchor_skipped(self, round_number: Round) -> None:
        if not is_anchor_round(round_number):
            return
        leader = self.leader_for_round(round_number)
        self.scoring.on_anchor_skipped(leader, round_number, self._view)

    def on_anchor_committed(self, anchor: Vertex) -> Optional[LeaderSchedule]:
        """Count the commit and switch schedules when the policy fires."""
        view = self._view
        self.scoring.on_anchor_committed(anchor.source, anchor.round, view)
        view.note_anchor_committed(anchor.round)
        self.commits_in_epoch += 1
        if self._track_votes:
            # Leader-presence markers span epochs (a straggler vote may
            # name a long-ordered leader) but never need to outlive the
            # GC horizon; pruning at the commit frontier bounds them.
            view.prune_below(anchor.round - _LEADER_MEMORY_ROUNDS)
        active = self.active_schedule
        if anchor.round < active.initial_round:
            # An anchor committed retroactively under an older schedule
            # never triggers a new change: the change it could have
            # triggered has already happened (it is what created the
            # current active schedule).
            return None
        if not self.policy.should_change(self.commits_in_epoch, anchor.round, active):
            return None
        # Ratio-style rules materialize their epoch scores only now, just
        # before the swap sets read them.
        self.scoring.prepare_epoch_scores(view)
        new_initial_round = anchor.round + 2
        new_schedule = compute_next_schedule(
            previous=active,
            scores=self.scores,
            committee=self.committee,
            new_initial_round=new_initial_round,
            exclude_fraction=self.exclude_fraction,
            base_slots=self._base_slots,
        )
        self.change_records.append(
            ScheduleChangeRecord(
                epoch=new_schedule.epoch,
                triggered_by_round=anchor.round,
                new_initial_round=new_initial_round,
                scores=self.scores.as_dict(),
                demoted_slots=swap_summary(active, new_schedule),
                scoring=self.scoring.name,
            )
        )
        if self._tracing:
            demoted, promoted = swap_details(active, new_schedule)
            self._tracer.emit(
                "schedule_change",
                node=self.trace_owner,
                epoch=new_schedule.epoch,
                triggered_by_round=anchor.round,
                new_initial_round=new_initial_round,
                scoring=self.scoring.name,
                scores=self.scores.as_dict(),
                demoted=list(demoted),
                promoted=list(promoted),
            )
        self.history.append(new_schedule)
        self.scores.reset()
        self.commits_in_epoch = 0
        view.reset_epoch()
        return new_schedule

    # -- state sync -----------------------------------------------------------------------

    def adopt_state(
        self,
        schedules: List[LeaderSchedule],
        scores: Dict[ValidatorId, float],
        commits_in_epoch: int,
        vote_accounting=None,
    ) -> None:
        """Adopt the schedule state carried by a state-sync snapshot.

        A validator that resumes from a checkpoint cannot re-derive the
        schedule history from the (pruned) DAG, so it takes over the serving
        peer's history, current-epoch scores, commit counter, and — when the
        active rule tracks votes — the peer's cast/expected counters and
        leader-presence markers (``vote_accounting``, the triple produced by
        :meth:`vote_accounting_snapshot`); from that point on its own
        deterministic updates keep it in agreement with the rest of the
        committee.
        """
        if schedules:
            self.history = list(schedules)
            self._history_keys = [schedule.initial_round for schedule in self.history]
        self.scores.reset()
        for validator, value in scores.items():
            if value:
                self.scores.add(validator, value)
        self.commits_in_epoch = commits_in_epoch
        view = self._view
        view.reset_epoch()
        view.last_committed_anchor_round = None
        if self._track_votes and vote_accounting is not None:
            cast, expected, leader_rounds, pending = vote_accounting
            view.adopt_accounting(dict(cast), dict(expected), leader_rounds, pending)

    def vote_accounting_snapshot(self):
        """The view's vote accounting as a picklable triple (state sync).

        ``None`` when the active rule does not track votes, so snapshots
        under the count-based rules stay byte-for-byte what they were.
        """
        if not self._track_votes:
            return None
        view = self._view
        return (
            tuple(sorted(view.votes_cast.items())),
            tuple(sorted(view.votes_expected.items())),
            view.ordered_leader_rounds(),
            view.pending_votes_snapshot(),
        )

    # -- introspection -------------------------------------------------------------------

    def describe(self) -> str:
        return (
            f"HammerHead schedule ({self.policy.describe()}, scoring rule "
            f"{self.scoring.name!r}, excluding up to "
            f"{self.exclude_fraction:.0%} of stake)"
        )
