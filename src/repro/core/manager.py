"""Schedule managers: the per-validator side of HammerHead.

A schedule manager answers ``getLeader(round)`` queries for the consensus
engine and the round-advancement logic, accumulates reputation scores from
the committed prefix, and switches to the next schedule when the
schedule-change policy fires on a committed anchor.  Because both the
scores and the trigger depend only on the totally ordered committed
prefix, every honest validator walks through exactly the same sequence of
schedules (Proposition 1), possibly at different wall-clock times — a
lagging validator applies them retroactively by looking up older schedules
in its history.

Two managers implement the same interface:

* :class:`StaticScheduleManager` — baseline Bullshark: the initial
  schedule is used forever.
* :class:`HammerHeadScheduleManager` — the paper's mechanism.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Dict, List, Optional

from repro.committee import Committee
from repro.core.schedule_change import (
    CommitCountPolicy,
    ScheduleChangePolicy,
    compute_next_schedule,
)
from repro.core.scores import ReputationScores
from repro.core.scoring import HammerHeadScoring, ScoringContext, ScoringRule
from repro.dag.vertex import Vertex
from repro.errors import ScheduleError
from repro.schedule.base import LeaderSchedule
from repro.types import Round, ValidatorId, VertexId, is_anchor_round


@dataclasses.dataclass(frozen=True)
class ScheduleChangeRecord:
    """Bookkeeping about one schedule switch (exposed for tests/metrics)."""

    epoch: int
    triggered_by_round: Round
    new_initial_round: Round
    scores: Dict[ValidatorId, float]
    demoted_slots: int


class ScheduleManager:
    """Common interface of the static and HammerHead schedule managers."""

    def __init__(self, committee: Committee, initial: LeaderSchedule) -> None:
        self.committee = committee
        self.history: List[LeaderSchedule] = [initial]
        # ``initial_round`` of every schedule in ``history``, kept sorted so
        # that ``schedule_for_round`` can binary-search instead of scanning
        # the whole history (it is called for every ordered vertex).  The
        # cache is rebuilt lazily whenever it falls out of sync with
        # ``history`` (append on schedule change, wholesale replacement on
        # state sync).
        self._history_keys: List[Round] = [initial.initial_round]
        # Per-round leader memo.  Leaders are pure functions of the
        # schedule history; the tag/length pair detects appends (schedule
        # changes) and wholesale replacement (state sync), matching the
        # staleness checks of ``_history_keys``.  ``leader_for_round`` is
        # called on every commit probe and anchor-timer decision, which
        # made the bisect + modular lookup measurable at committee 25+.
        self._leader_cache: Dict[Round, ValidatorId] = {}
        self._leader_cache_tag: LeaderSchedule = initial
        self._leader_cache_len: int = 1

    # -- leader lookup ---------------------------------------------------------

    @property
    def active_schedule(self) -> LeaderSchedule:
        return self.history[-1]

    def schedule_for_round(self, round_number: Round) -> LeaderSchedule:
        """The schedule covering ``round_number``.

        Rounds older than the active schedule are resolved against the
        schedule history, which is what lets a validator that commits an
        old anchor late interpret it under the schedule that was active
        for that round (retroactive application, Section 3.1).
        """
        if not is_anchor_round(round_number):
            raise ScheduleError(f"round {round_number} is not an anchor round")
        history = self.history
        keys = self._history_keys
        if len(keys) != len(history) or (keys and keys[-1] != history[-1].initial_round):
            keys = self._history_keys = [schedule.initial_round for schedule in history]
        index = bisect.bisect_right(keys, round_number) - 1
        if index < 0:
            # Rounds before the very first schedule fall back to it; this
            # only happens for the first anchor round of the DAG.
            index = 0
        return history[index]

    def leader_for_round(self, round_number: Round) -> ValidatorId:
        """``getLeader(round, activeSchedule)`` from Algorithm 1."""
        history = self.history
        if self._leader_cache_tag is not history[-1] or self._leader_cache_len != len(history):
            self._leader_cache.clear()
            self._leader_cache_tag = history[-1]
            self._leader_cache_len = len(history)
        leader = self._leader_cache.get(round_number)
        if leader is None:
            schedule = self.schedule_for_round(round_number)
            leader = schedule.leader_for_round(max(round_number, schedule.initial_round))
            self._leader_cache[round_number] = leader
        return leader

    # -- consensus feedback -------------------------------------------------------

    def on_vertex_ordered(self, vertex: Vertex) -> None:
        """A vertex was linearized as part of a committed sub-DAG."""

    def on_anchor_committed(self, anchor: Vertex) -> Optional[LeaderSchedule]:
        """An anchor was committed; returns the new schedule if one started."""
        return None

    def on_anchor_skipped(self, round_number: Round) -> None:
        """The anchor of ``round_number`` was skipped by the commit rule."""

    # -- state sync -----------------------------------------------------------------

    def adopt_state(
        self,
        schedules: List[LeaderSchedule],
        scores: Dict[ValidatorId, float],
        commits_in_epoch: int,
    ) -> None:
        """Adopt schedule state received through state sync (checkpoints).

        The static manager has no dynamic state beyond its single schedule,
        so the default implementation is a no-op.
        """

    # -- introspection ---------------------------------------------------------------

    @property
    def epochs(self) -> int:
        return len(self.history)

    def describe(self) -> str:
        raise NotImplementedError


class StaticScheduleManager(ScheduleManager):
    """Baseline Bullshark: the initial (round-robin) schedule never changes."""

    def describe(self) -> str:
        return "static round-robin schedule (Bullshark baseline)"


class HammerHeadScheduleManager(ScheduleManager):
    """The HammerHead dynamic schedule manager."""

    def __init__(
        self,
        committee: Committee,
        initial: LeaderSchedule,
        policy: Optional[ScheduleChangePolicy] = None,
        scoring: Optional[ScoringRule] = None,
        exclude_fraction: float = 1.0 / 3.0,
    ) -> None:
        super().__init__(committee, initial)
        self.policy = policy if policy is not None else CommitCountPolicy(10)
        self.scoring = scoring if scoring is not None else HammerHeadScoring()
        self.exclude_fraction = exclude_fraction
        # The swap that produces each new schedule is always applied to the
        # unbiased initial slot assignment (see compute_next_schedule): a
        # validator that stops under-performing automatically regains its
        # original representation at the next schedule change.
        self._base_slots = initial.slots
        self.scores = ReputationScores(committee)
        self._context = ScoringContext(committee=committee, scores=self.scores)
        self.commits_in_epoch = 0
        self.change_records: List[ScheduleChangeRecord] = []

    # -- consensus feedback ---------------------------------------------------------

    def on_vertex_ordered(self, vertex: Vertex) -> None:
        """Update reputation from one newly linearized vertex.

        The vertex is part of a committed sub-DAG, so every honest
        validator processes it (in the same order), which keeps the scores
        identical everywhere.  Scoring looks one round back: if this vertex
        links to the leader vertex of the previous (anchor) round, the
        vertex's source voted for that leader.
        """
        self.scoring.on_vertex_in_committed_subdag(
            vertex.source, vertex.round, self._context
        )
        previous_round = vertex.round - 1
        if not is_anchor_round(previous_round):
            return
        leader = self.leader_for_round(previous_round)
        leader_vertex = VertexId(round=previous_round, source=leader)
        if leader_vertex in vertex.edges:
            self.scoring.on_vote(vertex.source, previous_round, self._context)

    def on_anchor_skipped(self, round_number: Round) -> None:
        if not is_anchor_round(round_number):
            return
        leader = self.leader_for_round(round_number)
        self.scoring.on_anchor_skipped(leader, round_number, self._context)

    def on_anchor_committed(self, anchor: Vertex) -> Optional[LeaderSchedule]:
        """Count the commit and switch schedules when the policy fires."""
        self.scoring.on_anchor_committed(anchor.source, anchor.round, self._context)
        self.commits_in_epoch += 1
        active = self.active_schedule
        if anchor.round < active.initial_round:
            # An anchor committed retroactively under an older schedule
            # never triggers a new change: the change it could have
            # triggered has already happened (it is what created the
            # current active schedule).
            return None
        if not self.policy.should_change(self.commits_in_epoch, anchor.round, active):
            return None
        new_initial_round = anchor.round + 2
        new_schedule = compute_next_schedule(
            previous=active,
            scores=self.scores,
            committee=self.committee,
            new_initial_round=new_initial_round,
            exclude_fraction=self.exclude_fraction,
            base_slots=self._base_slots,
        )
        demoted_slots = sum(
            1 for old, new in zip(active.slots, new_schedule.slots) if old != new
        )
        self.change_records.append(
            ScheduleChangeRecord(
                epoch=new_schedule.epoch,
                triggered_by_round=anchor.round,
                new_initial_round=new_initial_round,
                scores=self.scores.as_dict(),
                demoted_slots=demoted_slots,
            )
        )
        self.history.append(new_schedule)
        self.scores.reset()
        self.commits_in_epoch = 0
        return new_schedule

    # -- state sync -----------------------------------------------------------------------

    def adopt_state(
        self,
        schedules: List[LeaderSchedule],
        scores: Dict[ValidatorId, float],
        commits_in_epoch: int,
    ) -> None:
        """Adopt the schedule state carried by a state-sync snapshot.

        A validator that resumes from a checkpoint cannot re-derive the
        schedule history from the (pruned) DAG, so it takes over the serving
        peer's history, current-epoch scores, and commit counter; from that
        point on its own deterministic updates keep it in agreement with
        the rest of the committee.
        """
        if schedules:
            self.history = list(schedules)
            self._history_keys = [schedule.initial_round for schedule in self.history]
        self.scores.reset()
        for validator, value in scores.items():
            if value:
                self.scores.add(validator, value)
        self.commits_in_epoch = commits_in_epoch

    # -- introspection -------------------------------------------------------------------

    def describe(self) -> str:
        return (
            f"HammerHead schedule ({self.policy.describe()}, scoring rule "
            f"{self.scoring.name!r}, excluding up to "
            f"{self.exclude_fraction:.0%} of stake)"
        )
