"""The behavior-policy interface: every validator decision an adversary can bend.

A :class:`BehaviorPolicy` collects the validator's behavioral decision
points behind one composable object, replacing the ad-hoc hooks
(``ValidatorNode.parent_filter``) that previously had to be monkey-patched
per attack:

* **parent selection** — which previous-round vertices a proposal links to
  (:meth:`select_parents`; vote withholding lives here);
* **proposal timing** — how long to sit on an own proposal before
  broadcasting it (:meth:`proposal_delay`; the lazy leader lives here);
* **per-recipient fan-out** — whether each peer receives a broadcast, with
  what payload, and after what extra delay (:meth:`plan_fanout`;
  equivocation and selective silence live here);
* **ack/certify participation** — whether to acknowledge (certified
  broadcast) or echo (Bracha) another validator's proposal
  (:meth:`should_ack`);
* **fetch service** — whether to answer a peer's synchronizer request
  (:meth:`should_serve_fetch`).

The honest path is a fast path, not a code path: :class:`HonestPolicy`
sets ``transparent = True`` and every decision point guards itself with a
single attribute check before calling into the policy, so an honest run
executes exactly the pre-policy instruction sequence — same RNG draws,
same event order, byte-identical ordering digests (pinned by
``tests/integration/test_behavior_differential.py``).

Policies are installed per node with :meth:`ValidatorNode.set_behavior`
(usually via :class:`repro.faults.behavior.BehaviorFault`, which puts them
on a timeline).  A policy instance is bound to exactly one node via
:meth:`attach`; hooks may read any node state (schedule manager, DAG,
committee) but must only *decide* — mutating protocol state from a hook is
the one thing the interface rules out.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

from repro.types import Round, SimTime, ValidatorId, VertexId


class FanoutSend:
    """One per-recipient directive of a fan-out plan.

    ``payload`` replaces the broadcast payload for this recipient (the
    broadcast layer re-derives the wire digest, so a substituted payload
    is a well-formed equivocation, not a corruption); ``None`` keeps the
    original message.  ``delay`` holds the message back for that many
    seconds of virtual time before it enters the transport.  Dropping a
    recipient is expressed by omitting it from the plan.
    """

    __slots__ = ("recipient", "payload", "delay")

    def __init__(
        self,
        recipient: ValidatorId,
        payload: Any = None,
        delay: SimTime = 0.0,
    ) -> None:
        self.recipient = recipient
        self.payload = payload
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"FanoutSend({self.recipient}, payload={self.payload!r}, delay={self.delay})"
        )


# A fan-out plan: one directive per recipient that should receive the
# message.  ``None`` (from plan_fanout) means "fan out normally".
FanoutPlan = List[FanoutSend]


class BehaviorPolicy:
    """Base class of validator behavior policies.

    Subclasses override the decision points they bend and leave the rest
    honest.  The default implementation of every hook is the honest
    decision, so an adversarial policy is exactly the set of deviations
    it encodes.
    """

    #: ``True`` marks the policy as behaviorally inert: decision points
    #: skip the hook calls entirely, keeping the honest hot path
    #: instruction-identical to a build without the policy layer.
    transparent = False

    def __init__(self) -> None:
        self.node = None  # type: Optional[Any]

    # -- lifecycle -----------------------------------------------------------

    def attach(self, node: Any) -> None:
        """Bind the policy to the node it now governs."""
        self.node = node

    def detach(self, node: Any) -> None:
        """Unbind from ``node`` (the node is reverting to honesty)."""
        self.node = None

    # -- decision points -----------------------------------------------------

    def select_parents(
        self, round_number: Round, parents: List[VertexId]
    ) -> List[VertexId]:
        """Choose the parent edges of the proposal for ``round_number``."""
        return parents

    def proposal_delay(self, round_number: Round) -> SimTime:
        """Extra virtual time to sit on the own proposal of ``round_number``."""
        return 0.0

    def plan_fanout(
        self,
        message: Any,
        round_number: Round,
        recipients: Sequence[ValidatorId],
    ) -> Optional[FanoutPlan]:
        """Per-recipient plan for an own broadcast, or ``None`` for normal fan-out."""
        return None

    def should_ack(self, origin: ValidatorId, round_number: Round) -> bool:
        """Acknowledge/echo ``origin``'s proposal for ``round_number``?"""
        return True

    def should_serve_fetch(self, requester: ValidatorId) -> bool:
        """Answer ``requester``'s synchronizer fetch request?"""
        return True

    # -- introspection -------------------------------------------------------

    def describe(self) -> str:
        return type(self).__name__


class HonestPolicy(BehaviorPolicy):
    """The protocol-faithful default: every decision is the honest one.

    Marked ``transparent`` so decision points skip the hook calls; an
    honest run is byte-identical to one without the policy layer.
    """

    transparent = True

    def describe(self) -> str:
        return "honest"


#: Shared honest instance installed on every node at construction.  The
#: policy is stateless (``attach`` stores the node only for symmetry), so
#: one instance can serve a whole committee.
HONEST = HonestPolicy()


def full_fanout(
    recipients: Iterable[ValidatorId],
    exclude: Iterable[ValidatorId] = (),
) -> FanoutPlan:
    """A plan sending the original message to everyone except ``exclude``."""
    banned = frozenset(exclude)
    return [
        FanoutSend(recipient)
        for recipient in recipients
        if recipient not in banned
    ]
