"""Coalition adversaries: shared coordination state and coordinated policies.

PR 4's adversaries are strictly per-validator: every policy instance
decides alone, so a group of attackers is just ``k`` independent copies.
Real coalitions do better — they split duties so no single member's
behavioral footprint looks as bad as the joint attack.  This module adds
the coordination channel and the policies that use it:

* :class:`AdversaryCoordinator` — deterministic, per-run shared state.
  One coordinator is created per coalition fault window (by
  :class:`~repro.faults.behavior.BehaviorFault` with ``coordinated=True``)
  and handed to every member policy.  Duty rotation and victim splitting
  are pure functions of (membership, round), so colluders agree on the
  plan without exchanging messages — mirroring how a real coalition would
  pre-agree on a strategy — and the simulation stays deterministic.
* :class:`CoordinatedPolicy` — base class: ``join`` receives the
  coordinator; uncoordinated installs fall back to a solo coalition.
* :class:`ColludingSilencePolicy` — the static victim set is *split*
  round-robin across members: every victim stays starved, but each
  colluder only ever touches ``1/k`` of the victims.
* :class:`AdaptiveSilentFanoutPolicy` — the schedule-aware DoS: each
  round, the duty member re-aims at the leader the *current* schedule is
  about to elect (silence toward it, ack/fetch denial, and — the part
  reputation can see — a withheld vote), so a schedule change does not
  shake the attack off.
* :class:`AdaptiveEquivocationPolicy` — equivocation re-aimed every
  round at the upcoming leaders instead of a fixed victim set.
* :class:`CoalitionGamingPolicy` — the coalition reputation gamer: vote
  withholding is rotated so that, per attacked anchor, exactly one
  member pays the completeness cost while the rest stay spotless.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from repro.behavior.adversarial import EquivocationPolicy, withhold_leader_parent
from repro.behavior.policy import BehaviorPolicy, full_fanout
from repro.types import Round, ValidatorId, is_anchor_round, next_anchor_round


class AdversaryCoordinator:
    """Deterministic shared state of one colluding coalition.

    Membership is sorted at construction so every member derives the same
    duty roster regardless of installation order.  ``stride`` widens the
    rotation: with ``k`` members and stride ``s``, each block of ``k*s``
    anchor rounds assigns the first ``k`` anchors one duty member each and
    leaves the rest unattacked — the throttle that keeps each member's
    per-epoch deviation small enough to hide in honest noise.
    """

    def __init__(self, members: Sequence[ValidatorId], stride: int = 1) -> None:
        if not members:
            raise ValueError("a coalition needs at least one member")
        if stride < 1:
            raise ValueError("the duty stride must be at least 1")
        self.members: Tuple[ValidatorId, ...] = tuple(sorted(set(members)))
        self.stride = stride
        # Shared scratchpad for policies that want to publish what they
        # are doing (introspection/tests); never read by decision logic.
        self.notes: dict = {}

    def duty_member(self, anchor_round: Round) -> Optional[ValidatorId]:
        """The member on duty for ``anchor_round``, or ``None`` (off-beat)."""
        if not is_anchor_round(anchor_round):
            return None
        slot = (anchor_round // 2) % (len(self.members) * self.stride)
        if slot < len(self.members):
            return self.members[slot]
        return None

    def is_duty(self, member: ValidatorId, anchor_round: Round) -> bool:
        return self.duty_member(anchor_round) == member

    def split_victims(
        self, member: ValidatorId, victims: Sequence[ValidatorId]
    ) -> Tuple[ValidatorId, ...]:
        """The slice of ``victims`` assigned to ``member`` (round-robin).

        Every victim is covered by exactly one member, so the joint
        attack equals the unsplit one while each member's observable
        behavior shrinks by a factor of ``k``.
        """
        if member not in self.members:
            return tuple(victims)
        index = self.members.index(member)
        return tuple(victims[index :: len(self.members)])

    def describe(self) -> str:
        stride = f", stride {self.stride}" if self.stride != 1 else ""
        return f"coalition of {list(self.members)}{stride}"


class CoordinatedPolicy(BehaviorPolicy):
    """A behavior policy that may act as part of a coalition.

    :class:`~repro.faults.behavior.BehaviorFault` calls :meth:`join`
    before installing the policy on its node.  A policy installed without
    a coordinator (plain single-validator fault) lazily builds a solo
    coalition of itself, so every subclass can assume ``self.coordinator``
    exists after :meth:`attach`.
    """

    def __init__(self, stride: int = 1) -> None:
        super().__init__()
        self.coordinator: Optional[AdversaryCoordinator] = None
        self.stride = stride

    def join(self, coordinator: AdversaryCoordinator) -> None:
        self.coordinator = coordinator

    def attach(self, node: Any) -> None:
        super().attach(node)
        if self.coordinator is None:
            self.coordinator = AdversaryCoordinator((node.id,), stride=self.stride)


class ColludingSilencePolicy(CoordinatedPolicy):
    """Coalition-split targeted DoS.

    The full victim set is given to every member; the coordinator assigns
    each member its ``1/k`` slice.  Jointly the coalition starves every
    victim of ``k`` validators' traffic, acks, and fetch service, but no
    single colluder ever denies more than its slice — the footprint a
    per-validator anomaly detector would see shrinks accordingly.
    """

    def __init__(self, victims: Sequence[ValidatorId], stride: int = 1) -> None:
        super().__init__(stride=stride)
        self.victims: Tuple[ValidatorId, ...] = tuple(victims)
        self._assigned: Optional[frozenset] = None

    def attach(self, node: Any) -> None:
        super().attach(node)
        assigned = self.coordinator.split_victims(node.id, self.victims)
        self._assigned = frozenset(assigned) - {node.id}

    def detach(self, node: Any) -> None:
        super().detach(node)
        self._assigned = None

    def plan_fanout(self, message, round_number, recipients):
        return full_fanout(recipients, exclude=self._assigned or ())

    def should_ack(self, origin: ValidatorId, round_number: Round) -> bool:
        return origin not in (self._assigned or ())

    def should_serve_fetch(self, requester: ValidatorId) -> bool:
        return requester not in (self._assigned or ())

    def describe(self) -> str:
        return (
            f"colluding silence towards {list(self.victims)} "
            f"({self.coordinator.describe() if self.coordinator else 'unjoined'})"
        )


class AdaptiveSilentFanoutPolicy(CoordinatedPolicy):
    """Schedule-aware targeted DoS with rotated duty (the ``adaptive-dos`` kind).

    Each anchor round the coordinator puts exactly one member on duty;
    that member re-aims at the leader the *current* schedule elects for
    the round — so the attack follows the victim across schedule changes
    instead of fading when the victim set rotates out.  On duty, a member
    starves the upcoming leader (no own traffic, no acks, no fetch
    service) and, when ``withhold_votes`` is on, omits the vote link for
    the attacked anchor — the deviation the completeness rule is designed
    to see and raw vote counts tend to miss.
    """

    def __init__(
        self,
        stride: int = 3,
        lookahead: int = 1,
        withhold_votes: bool = True,
    ) -> None:
        super().__init__(stride=stride)
        if lookahead < 1:
            raise ValueError("the lookahead must be at least 1")
        self.lookahead = lookahead
        self.withhold_votes = withhold_votes

    # -- duty-target computation ----------------------------------------------

    def _duty_anchors(self, round_number: Round) -> Tuple[Round, ...]:
        """Duty anchor rounds within the lookahead window of ``round_number``."""
        node = self.node
        coordinator = self.coordinator
        if node is None or coordinator is None:
            return ()
        first = next_anchor_round(round_number)
        anchors = []
        for index in range(self.lookahead):
            anchor = first + 2 * index
            if coordinator.is_duty(node.id, anchor):
                anchors.append(anchor)
        return tuple(anchors)

    def _duty_targets(self, round_number: Round) -> frozenset:
        node = self.node
        targets = set()
        for anchor in self._duty_anchors(round_number):
            leader = node.schedule_manager.leader_for_round(anchor)
            if leader != node.id:
                targets.add(leader)
        return frozenset(targets)

    # -- decision points -------------------------------------------------------

    def plan_fanout(self, message, round_number, recipients):
        targets = self._duty_targets(round_number)
        if not targets:
            return None
        return full_fanout(recipients, exclude=targets)

    def should_ack(self, origin: ValidatorId, round_number: Round) -> bool:
        return origin not in self._duty_targets(round_number)

    def should_serve_fetch(self, requester: ValidatorId) -> bool:
        node = self.node
        if node is None:
            return True
        return requester not in self._duty_targets(node.current_round)

    def select_parents(self, round_number, parents):
        if not self.withhold_votes:
            return parents
        previous_round = round_number - 1
        if not is_anchor_round(previous_round):
            return parents
        if not self.coordinator.is_duty(self.node.id, previous_round):
            return parents
        return withhold_leader_parent(self.node, round_number, parents)

    def describe(self) -> str:
        parts = f"adaptive leader DoS (stride {self.stride}, lookahead {self.lookahead}"
        if self.withhold_votes:
            parts += ", vote withholding"
        return parts + ")"


class AdaptiveEquivocationPolicy(EquivocationPolicy):
    """Equivocation re-aimed each round at the upcoming leaders.

    The static :class:`EquivocationPolicy` deceives a fixed victim set;
    this variant recomputes the victims per broadcast as the leaders of
    the next ``lookahead`` anchor rounds of the *current* schedule — the
    validators whose view of this attacker's vertices matters most for
    the next commits.
    """

    def __init__(self, lookahead: int = 2) -> None:
        super().__init__(victims=())
        if lookahead < 1:
            raise ValueError("the lookahead must be at least 1")
        self.lookahead = lookahead

    def plan_fanout(self, message, round_number, recipients):
        node = self.node
        if node is None:
            return None
        manager = node.schedule_manager
        first = next_anchor_round(round_number)
        victims = {
            manager.leader_for_round(first + 2 * index)
            for index in range(self.lookahead)
        }
        self.victims = tuple(sorted(victims - {node.id}))
        if not self.victims:
            return None
        return super().plan_fanout(message, round_number, recipients)

    def describe(self) -> str:
        return f"adaptive equivocation (next {self.lookahead} leaders)"


class CoalitionGamingPolicy(CoordinatedPolicy):
    """The coalition reputation gamer (the ``coalition-gaming`` kind).

    Vote withholding is rotated: per attacked anchor round exactly one
    member omits the vote link while every other member votes honestly.
    With ``k`` members and stride ``s``, each member misses only
    ``1/(k*s)`` of its vote opportunities per epoch — the coalition keeps
    every member's completeness high (and its raw vote count higher
    still), spreading the same total damage the lone gamer concentrates
    on itself.  This is the adversary built to probe the completeness
    rule's limits; the attack x rule matrix records how far it gets.
    """

    def select_parents(self, round_number, parents):
        previous_round = round_number - 1
        if not is_anchor_round(previous_round):
            return parents
        if not self.coordinator.is_duty(self.node.id, previous_round):
            return parents
        return withhold_leader_parent(self.node, round_number, parents)

    def describe(self) -> str:
        return (
            f"coalition reputation gaming "
            f"({self.coordinator.describe() if self.coordinator else 'unjoined'})"
        )


def upcoming_duty_roster(
    coordinator: AdversaryCoordinator, from_round: Round, count: int
) -> Tuple[Tuple[Round, Optional[ValidatorId]], ...]:
    """The next ``count`` anchor rounds with their duty members (tests/UI)."""
    first = next_anchor_round(from_round)
    return tuple(
        (first + 2 * index, coordinator.duty_member(first + 2 * index))
        for index in range(count)
    )
