"""The curated adversarial policies.

Each policy bends a small, named subset of the decision points in
:class:`~repro.behavior.policy.BehaviorPolicy` and leaves every other
decision honest, so attacks compose out of primitives instead of
monkey-patches:

* :class:`VoteWithholdingPolicy` — the paper's canonical Byzantine
  strategy: omit the parent link to the previous round's leader (the
  "vote"), costing the leader its commit and the withholder its
  reputation under vote-based scoring.
* :class:`EquivocationPolicy` — propose conflicting vertices to disjoint
  recipient sets.  The certified broadcast's quorum intersection keeps
  the conflicting payload from certifying, but every deceived validator
  has acknowledged the wrong digest and refuses to ack the real one, so
  the equivocator gambles its own certification on the honest majority.
* :class:`SilentFanoutPolicy` — a targeted DoS: drop all own traffic to
  a victim subset, refuse to ack the victims' proposals, and ignore
  their fetch requests.  The victims must assemble the DAG through
  third parties, inflating their latency without any global fault.
* :class:`LazyLeaderPolicy` — equivocation of *timing*: behave perfectly
  except in the rounds where the schedule makes this validator the
  leader, and then sit on the proposal just long enough for honest
  validators to time out.  Leader-based scoring sees skipped anchors;
  vote-based scoring sees nothing wrong.
* :class:`ReputationGamingPolicy` — an attack on the scoring rule
  itself: withhold votes like :class:`VoteWithholdingPolicy`, but turn
  honest inside a window of rounds around the validator's own leader
  slots, harvesting just enough reputation to stay out of (or quickly
  return from) the demoted set while still damaging every leader whose
  slot is far from its own.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.behavior.policy import (
    BehaviorPolicy,
    FanoutPlan,
    FanoutSend,
    full_fanout,
)
from repro.dag.vertex import Vertex, make_vertex
from repro.rbc.messages import ProposeMessage
from repro.types import Round, SimTime, ValidatorId, VertexId, is_anchor_round


def withhold_leader_parent(node: Any, round_number: Round, parents: List[VertexId]) -> List[VertexId]:
    """Drop the previous round's leader from ``parents`` (quorum permitting).

    The single definition of the withholding move, shared by
    :class:`VoteWithholdingPolicy` and :class:`ReputationGamingPolicy`
    (and byte-identical to the pre-policy ``parent_filter`` hook it
    replaced).  The adversary never drops below the 2f+1 quorum the
    vertex structure requires: a structurally invalid vertex would be
    rejected by every honest recipient, which only hurts the adversary.
    """
    previous_round = round_number - 1
    if not is_anchor_round(previous_round):
        return parents
    leader = node.schedule_manager.leader_for_round(previous_round)
    leader_vertex = VertexId(round=previous_round, source=leader)
    filtered = [parent for parent in parents if parent != leader_vertex]
    sources = {parent.source for parent in filtered}
    if node.committee.has_quorum(sources):
        return filtered
    return parents


class VoteWithholdingPolicy(BehaviorPolicy):
    """Withhold the vote (parent link) for every leader."""

    def select_parents(self, round_number: Round, parents: List[VertexId]) -> List[VertexId]:
        return withhold_leader_parent(self.node, round_number, parents)

    def describe(self) -> str:
        return "vote withholding"


class EquivocationPolicy(BehaviorPolicy):
    """Send a conflicting own proposal to ``victims``, the real one to the rest.

    The conflicting vertex differs in content (an emptied block, or one
    dropped parent when the block is already empty) but shares the
    ``(round, source)`` identity — textbook equivocation.  Victims
    acknowledge the conflicting digest first and, by the broadcast
    layer's equivocation guard, never acknowledge the real one; the
    attack succeeds silently while the remaining honest stake covers a
    quorum and starves the equivocator of its own certificates once the
    victim set grows past ``f``.
    """

    def __init__(self, victims: Sequence[ValidatorId]) -> None:
        super().__init__()
        self.victims: Tuple[ValidatorId, ...] = tuple(victims)

    def plan_fanout(
        self,
        message: Any,
        round_number: Round,
        recipients: Sequence[ValidatorId],
    ) -> Optional[FanoutPlan]:
        if not isinstance(message, ProposeMessage) or not isinstance(message.payload, Vertex):
            return None
        twin = self._conflicting_vertex(message.payload)
        if twin is None:
            return None
        node_id = self.node.id
        victims = frozenset(self.victims) - {node_id}
        if not victims:
            return None
        return [
            FanoutSend(recipient, payload=twin if recipient in victims else None)
            for recipient in recipients
        ]

    def _conflicting_vertex(self, vertex: Vertex) -> Optional[Vertex]:
        """A same-identity vertex with a different content digest."""
        if vertex.round == 0:
            return None
        if vertex.block:
            # The content digest binds the block length, so an emptied
            # block is a genuine conflict even with identical edges.
            return make_vertex(
                vertex.round,
                vertex.source,
                edges=vertex.edges,
                block=(),
                created_at=vertex.created_at,
            )
        edges = sorted(vertex.edges)
        for index in range(len(edges) - 1, -1, -1):
            remaining = edges[:index] + edges[index + 1 :]
            if self.node.committee.has_quorum({edge.source for edge in remaining}):
                return make_vertex(
                    vertex.round,
                    vertex.source,
                    edges=remaining,
                    block=(),
                    created_at=vertex.created_at,
                )
        # An empty block over a bare quorum leaves nothing to vary.
        return None

    def describe(self) -> str:
        return f"equivocation against {list(self.victims)}"


class SilentFanoutPolicy(BehaviorPolicy):
    """Starve ``targets``: no own traffic to them, no acks or fetch service for them."""

    def __init__(self, targets: Sequence[ValidatorId]) -> None:
        super().__init__()
        self.targets: Tuple[ValidatorId, ...] = tuple(targets)
        self._target_set = frozenset(targets)

    def plan_fanout(
        self,
        message: Any,
        round_number: Round,
        recipients: Sequence[ValidatorId],
    ) -> Optional[FanoutPlan]:
        return full_fanout(recipients, exclude=self._target_set - {self.node.id})

    def should_ack(self, origin: ValidatorId, round_number: Round) -> bool:
        return origin not in self._target_set

    def should_serve_fetch(self, requester: ValidatorId) -> bool:
        return requester not in self._target_set

    def describe(self) -> str:
        return f"silent fan-out towards {list(self.targets)}"


class LazyLeaderPolicy(BehaviorPolicy):
    """Delay only the own proposals of rounds where this validator leads."""

    def __init__(self, delay: SimTime = 2.5) -> None:
        super().__init__()
        self.delay = delay

    def proposal_delay(self, round_number: Round) -> SimTime:
        node = self.node
        if not is_anchor_round(round_number):
            return 0.0
        if node.schedule_manager.leader_for_round(round_number) != node.id:
            return 0.0
        return self.delay

    def describe(self) -> str:
        return f"lazy leader (+{self.delay:.2f}s on own leader slots)"


class ReputationGamingPolicy(BehaviorPolicy):
    """Withhold votes except within ``window`` rounds of an own leader slot.

    The naive withholder scores zero under vote-based rules and is
    demoted at the first schedule change; this adversary banks honest
    votes exactly when its own slots (and the commits that score them)
    are near, so each scoring rule reads it as merely mediocre and
    reacts more slowly — the qualitative gap the paper's discussion of
    scoring robustness predicts.
    """

    def __init__(self, window: int = 6) -> None:
        super().__init__()
        if window < 0:
            raise ValueError("the honest window must be non-negative")
        self.window = window

    def _near_own_slot(self, round_number: Round) -> bool:
        # The window is anchored on the *initial* (stake-proportional)
        # schedule, not the active one: schedule changes always apply the
        # reputation swap to the base slot assignment, so this is where
        # the adversary's slots return the moment it escapes the demoted
        # set.  Anchoring on the active schedule instead would degenerate
        # into full withholding after the first demotion (no slots -> no
        # honest window -> zero score forever).
        node = self.node
        base = node.schedule_manager.history[0]
        first = max(base.initial_round, 2, round_number - self.window)
        if first % 2:
            first += 1
        for anchor in range(first, round_number + self.window + 1, 2):
            if base.leader_for_round(anchor) == node.id:
                return True
        return False

    def select_parents(self, round_number: Round, parents: List[VertexId]) -> List[VertexId]:
        if self._near_own_slot(round_number):
            return parents
        return withhold_leader_parent(self.node, round_number, parents)

    def describe(self) -> str:
        return f"reputation gaming (honest within {self.window} rounds of own slots)"
