"""Composable validator behavior policies (the adversary engine).

The package splits a validator into "what the protocol requires" (the
node and broadcast state machines) and "what this validator chooses to
do" (a :class:`BehaviorPolicy` governing parent selection, proposal
timing, per-recipient fan-out, ack participation, and fetch service).
:class:`HonestPolicy` is the default and is transparent — honest runs
are byte-identical to a build without the policy layer.  The adversarial
policies in :mod:`repro.behavior.adversarial` implement the curated
attacks the scenario registry exposes.
"""

from repro.behavior.adversarial import (
    EquivocationPolicy,
    LazyLeaderPolicy,
    ReputationGamingPolicy,
    SilentFanoutPolicy,
    VoteWithholdingPolicy,
    withhold_leader_parent,
)
from repro.behavior.coordination import (
    AdaptiveEquivocationPolicy,
    AdaptiveSilentFanoutPolicy,
    AdversaryCoordinator,
    CoalitionGamingPolicy,
    ColludingSilencePolicy,
    CoordinatedPolicy,
    upcoming_duty_roster,
)
from repro.behavior.policy import (
    HONEST,
    BehaviorPolicy,
    FanoutPlan,
    FanoutSend,
    HonestPolicy,
    full_fanout,
)

__all__ = [
    "BehaviorPolicy",
    "HonestPolicy",
    "HONEST",
    "FanoutPlan",
    "FanoutSend",
    "full_fanout",
    "VoteWithholdingPolicy",
    "EquivocationPolicy",
    "SilentFanoutPolicy",
    "LazyLeaderPolicy",
    "ReputationGamingPolicy",
    "withhold_leader_parent",
    "AdversaryCoordinator",
    "CoordinatedPolicy",
    "ColludingSilencePolicy",
    "AdaptiveSilentFanoutPolicy",
    "AdaptiveEquivocationPolicy",
    "CoalitionGamingPolicy",
    "upcoming_duty_roster",
]
