"""Deterministic content digests.

Digests provide content addressing for DAG vertices and transaction
batches.  They are computed over a canonical serialization so that two
structurally equal objects always hash to the same digest, regardless of
the process or the insertion order of dictionaries.
"""

from __future__ import annotations

import hashlib
from typing import Any

# A digest is a 32-byte SHA-256 output.
Digest = bytes


def _canonical_bytes(value: Any) -> bytes:
    """Serialize ``value`` into a canonical byte string.

    Supports the small universe of types used by protocol messages:
    ``None``, booleans, integers, floats, strings, bytes, and (nested)
    lists, tuples, sets, frozensets, and dictionaries thereof.  Sets and
    dictionaries are serialized in sorted order to guarantee determinism.
    """
    if value is None:
        return b"N"
    if isinstance(value, bool):
        return b"B1" if value else b"B0"
    if isinstance(value, int):
        return b"I" + str(value).encode("ascii")
    if isinstance(value, float):
        return b"F" + repr(value).encode("ascii")
    if isinstance(value, str):
        encoded = value.encode("utf-8")
        return b"S" + str(len(encoded)).encode("ascii") + b":" + encoded
    if isinstance(value, (bytes, bytearray)):
        return b"Y" + str(len(value)).encode("ascii") + b":" + bytes(value)
    # Objects declaring canonical fields take precedence over the tuple
    # branch: named tuples like Transaction deliberately exclude fields
    # (e.g. submission time) from their content identity.
    if hasattr(value, "canonical_fields"):
        return _canonical_bytes(value.canonical_fields())
    if isinstance(value, (list, tuple)):
        parts = [_canonical_bytes(item) for item in value]
        return b"L(" + b",".join(parts) + b")"
    if isinstance(value, (set, frozenset)):
        parts = sorted(_canonical_bytes(item) for item in value)
        return b"E(" + b",".join(parts) + b")"
    if isinstance(value, dict):
        parts = sorted(
            _canonical_bytes(key) + b"=" + _canonical_bytes(item)
            for key, item in value.items()
        )
        return b"D(" + b",".join(parts) + b")"
    raise TypeError(f"cannot canonicalize value of type {type(value)!r}")


def digest_of(*values: Any) -> Digest:
    """Return the SHA-256 digest of the canonical serialization of ``values``."""
    hasher = hashlib.sha256()
    for value in values:
        hasher.update(_canonical_bytes(value))
    return hasher.digest()


def digest_hex(*values: Any) -> str:
    """Return the hexadecimal form of :func:`digest_of`."""
    return digest_of(*values).hex()
