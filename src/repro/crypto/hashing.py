"""Deterministic content digests.

Digests provide content addressing for DAG vertices and transaction
batches.  They are computed over a canonical serialization so that two
structurally equal objects always hash to the same digest, regardless of
the process or the insertion order of dictionaries.
"""

from __future__ import annotations

import hashlib
from typing import Any

# A digest is a 32-byte SHA-256 output.
Digest = bytes


def _canonical_bytes(value: Any) -> bytes:
    """Serialize ``value`` into a canonical byte string.

    Supports the small universe of types used by protocol messages:
    ``None``, booleans, integers, floats, strings, bytes, and (nested)
    lists, tuples, sets, frozensets, and dictionaries thereof.  Sets and
    dictionaries are serialized in sorted order to guarantee determinism.
    """
    if value is None:
        return b"N"
    if isinstance(value, bool):
        return b"B1" if value else b"B0"
    if isinstance(value, int):
        return b"I" + str(value).encode("ascii")
    if isinstance(value, float):
        return b"F" + repr(value).encode("ascii")
    if isinstance(value, str):
        encoded = value.encode("utf-8")
        return b"S" + str(len(encoded)).encode("ascii") + b":" + encoded
    if isinstance(value, (bytes, bytearray)):
        return b"Y" + str(len(value)).encode("ascii") + b":" + bytes(value)
    # Objects declaring canonical fields take precedence over the tuple
    # branch: named tuples like Transaction deliberately exclude fields
    # (e.g. submission time) from their content identity.
    if hasattr(value, "canonical_fields"):
        return _canonical_bytes(value.canonical_fields())
    if isinstance(value, (list, tuple)):
        parts = [_canonical_bytes(item) for item in value]
        return b"L(" + b",".join(parts) + b")"
    if isinstance(value, (set, frozenset)):
        parts = sorted(_canonical_bytes(item) for item in value)
        return b"E(" + b",".join(parts) + b")"
    if isinstance(value, dict):
        parts = sorted(
            _canonical_bytes(key) + b"=" + _canonical_bytes(item)
            for key, item in value.items()
        )
        return b"D(" + b",".join(parts) + b")"
    raise TypeError(f"cannot canonicalize value of type {type(value)!r}")


def digest_of(*values: Any) -> Digest:
    """Return the SHA-256 digest of the canonical serialization of ``values``."""
    hasher = hashlib.sha256()
    for value in values:
        hasher.update(_canonical_bytes(value))
    return hasher.digest()


def vertex_digest(
    round_number: int,
    source: int,
    edge_pairs: Any,
    block_length: int,
) -> Digest:
    """Digest of a vertex's canonical fields, encoded without recursion.

    Produces exactly ``digest_of(round_number, source, tuple(edge_pairs),
    block_length)`` — the generic serializer's output for this shape is
    pinned by a unit test — but builds the preimage with direct byte
    formatting.  One digest is computed per proposed vertex, and the
    recursive generic path dominated proposal construction at large
    committees.  ``edge_pairs`` must be the sorted tuple of
    ``(round, source)`` integer pairs.
    """
    edges_encoded = b",".join(b"L(I%d,I%d)" % pair for pair in edge_pairs)
    preimage = b"I%dI%dL(%b)I%d" % (round_number, source, edges_encoded, block_length)
    return hashlib.sha256(preimage).digest()


def evict_oldest_half(entries: dict, limit: int) -> None:
    """Shared eviction policy for the hot-path bounded memos.

    Drops the oldest half (by insertion order, which Python dicts
    preserve) once ``limit`` is reached, so a memo never takes a
    full-rewarm hit mid-run the way a wholesale ``clear()`` would.
    Callers keep plain dicts — lookups stay a raw ``dict.get`` — and
    only the rare eviction path shares code.
    """
    if len(entries) >= limit:
        # det: ordered -- insertion order IS the eviction policy ("oldest
        # half"), and dicts preserve it by language guarantee.
        for stale in list(entries)[: limit // 2]:
            del entries[stale]


class DigestMemo:
    """A bounded process-wide memo for recomputed protocol digests.

    The broadcast layer re-derives the same domain-separated digest for
    one ``(origin, round, payload)`` triple at every one of the ``n``
    recipients of a certificate fan-out (and again for every certificate
    in a batch).  The canonical encoding and the SHA-256 pass are pure
    functions of the key, so the memo is shared across validator
    instances — and across experiments, because the key embeds the
    payload's content fingerprint.

    Eviction wipes the oldest half by insertion order (Python dicts
    preserve it), which keeps the common case a single dict lookup
    instead of the sorted-scan eviction the per-node caches used before.
    """

    __slots__ = ("_entries", "limit", "hits", "misses")

    def __init__(self, limit: int = 131072) -> None:
        self._entries: dict = {}
        self.limit = limit
        # Process-wide hit/miss tallies surfaced by the instrumentation
        # counters.  Because the memo is shared across experiments (and
        # across sweep workers with unrelated lifetimes), these are
        # observability-only: never fold them into digests or diffs.
        self.hits = 0
        self.misses = 0

    def get(self, key: Any) -> Any:
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key: Any, value: Any) -> Any:
        entries = self._entries
        evict_oldest_half(entries, self.limit)
        entries[key] = value
        return value

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()


# Memo for the certified-broadcast digests, keyed by
# (origin, round, payload fingerprint); see
# :meth:`repro.rbc.certified.CertifiedBroadcast._broadcast_digest`.
BROADCAST_DIGEST_MEMO = DigestMemo()


def digest_hex(*values: Any) -> str:
    """Return the hexadecimal form of :func:`digest_of`."""
    return digest_of(*values).hex()
