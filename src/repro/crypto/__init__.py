"""Simulated cryptography substrate.

The production HammerHead implementation relies on ``fastcrypto`` for
elliptic-curve signatures.  Signatures are not on the evaluated path of
the paper (the evaluation measures consensus latency and throughput), so
this reproduction substitutes a deterministic, dependency-free scheme:
keys are derived from validator indices, signatures are keyed SHA-256
digests, and aggregation is modeled as a multiset of individual
signatures.  The scheme is unforgeable *within the simulation* because the
signing key never leaves the owning validator object, which is all the
protocol logic requires.
"""

from repro.crypto.hashing import Digest, digest_of, digest_hex
from repro.crypto.keys import KeyPair, PublicKey, generate_keypair, keypairs_for_committee
from repro.crypto.signatures import (
    AggregateSignature,
    Signature,
    aggregate,
    sign,
    verify,
    verify_aggregate,
)

__all__ = [
    "Digest",
    "digest_of",
    "digest_hex",
    "KeyPair",
    "PublicKey",
    "generate_keypair",
    "keypairs_for_committee",
    "Signature",
    "AggregateSignature",
    "sign",
    "verify",
    "aggregate",
    "verify_aggregate",
]
