"""Simulated key pairs for validators.

A key pair is derived deterministically from a validator index and an
optional seed so that simulations are reproducible.  The private scalar is
simply a keyed digest; the public key is a digest of the private scalar.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.crypto.hashing import digest_of
from repro.types import ValidatorId


@dataclasses.dataclass(frozen=True)
class PublicKey:
    """Public half of a simulated key pair."""

    validator: ValidatorId
    material: bytes

    def short(self) -> str:
        """Return a short printable key fingerprint."""
        return self.material.hex()[:12]


@dataclasses.dataclass(frozen=True)
class KeyPair:
    """A validator's signing key pair.

    The ``secret`` field must never be shared between validator objects;
    the signature scheme's unforgeability within the simulation rests on
    that discipline.
    """

    public: PublicKey
    secret: bytes

    @property
    def validator(self) -> ValidatorId:
        return self.public.validator


def generate_keypair(validator: ValidatorId, seed: int = 0) -> KeyPair:
    """Deterministically derive the key pair of ``validator`` for ``seed``."""
    secret = digest_of("hammerhead-secret", validator, seed)
    public_material = digest_of("hammerhead-public", secret)
    public = PublicKey(validator=validator, material=public_material)
    return KeyPair(public=public, secret=secret)


def keypairs_for_committee(size: int, seed: int = 0) -> Dict[ValidatorId, KeyPair]:
    """Generate one key pair per validator index in ``range(size)``."""
    return {index: generate_keypair(index, seed) for index in range(size)}
