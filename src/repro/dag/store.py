"""A validator's local view of the DAG (``DAGi[]`` in Algorithm 1).

The store enforces two invariants the correctness proofs rely on:

* **Causal completeness** (Claim 1): a vertex only becomes part of the DAG
  once its entire causal history is present.  Vertices whose parents are
  still missing are parked in a pending buffer and promoted automatically.
* **Non-equivocation**: at most one vertex per (round, source) pair is
  ever accepted; conflicting vertices raise :class:`EquivocationError`.

Reachability cache
------------------

``path()`` queries are issued by the commit rule while walking anchor
chains, and a naive BFS repeats the same downward walk for every probe.
The store therefore memoizes, per vertex and per target round, the set of
*sources* whose round-``r`` vertex is reachable (``reachable_sources``).
Identity of a vertex is its ``(round, source)`` pair, so membership of the
ancestor's source in that set is exactly path reachability.

The cache stays correct under the store's mutation pattern:

* The DAG grows at the frontier: a vertex is only inserted once every
  parent at or above the GC horizon is present, so a new insertion can
  never add paths *between* previously inserted vertices — cached entries
  stay valid.  The single exception is a straggler delivered *below* the
  horizon (its parents count as present), which can reconnect previously
  blocked walks; such an insertion invalidates, per subtree, only the
  entries of vertices that can reach the straggler, and only their target
  rounds at or below it (rare: it only happens after state sync), keeping
  warm entries elsewhere alive.
* ``garbage_collect`` drops cache lines keyed by pruned vertices and all
  cached target rounds below the new horizon.  Entries for surviving
  vertices with targets at or above the horizon only ever traversed
  rounds above the pruned region, so they remain valid.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.committee import Committee
from repro.dag.vertex import Vertex, check_edge_quorum
from repro.errors import DagError, EquivocationError
from repro.obs.trace import NULL_TRACER, Tracer
from repro.types import Round, ValidatorId, VertexId


class DagStore:
    """In-memory DAG with pending-parent buffering and reachability queries."""

    # Observability (repro.obs): shared null tracer by default, replaced
    # per instance by install_tracer.  Hot sites test the bare boolean.
    _tracer: Tracer = NULL_TRACER
    _tracing = False
    trace_owner: ValidatorId = -1

    # Recycled round slabs kept after GC (see ``garbage_collect``).
    _SLAB_POOL_LIMIT = 64

    def __init__(
        self,
        committee: Committee,
        require_edge_quorum: bool = True,
        cache_reachability: bool = True,
    ) -> None:
        self.committee = committee
        # Flat per-validator stake lookup for the insertion hot path.
        self._stakes = committee.stake_vector.stakes
        self.require_edge_quorum = require_edge_quorum
        # ``False`` disables the reachability cache; every ``path()`` query
        # then runs the reference BFS (used as the differential oracle by
        # the property tests, and as an escape hatch).
        self.cache_reachability = cache_reachability
        # Arena-style per-round storage: ``_round_slots[r][source]`` is the
        # round-``r`` vertex from ``source`` (``None`` when absent) in a
        # flat slab indexed by validator id, and ``_round_order[r]`` keeps
        # the arrival sequence the old insertion-ordered dicts exposed
        # (digest-relevant: parent selection reads it).  Slabs are
        # recycled through ``_slab_pool`` at GC so a long run allocates a
        # bounded number of per-round containers instead of one dict per
        # round.
        self._size = len(committee.stake_vector.stakes)
        self._round_slots: Dict[Round, List[Optional[Vertex]]] = {}
        self._round_order: Dict[Round, List[Vertex]] = {}
        self._slab_pool: List[List[Optional[Vertex]]] = []
        # Total stake present per round, maintained on insert/GC so the
        # per-insertion quorum checks are O(1) instead of summing stakes.
        self._round_stake: Dict[Round, int] = {}
        self._by_id: Dict[VertexId, Vertex] = {}
        # Vertices waiting for missing parents, keyed by the missing parent.
        self._pending: Dict[VertexId, Vertex] = {}
        self._waiting_on: Dict[VertexId, Set[VertexId]] = {}
        # Callbacks invoked whenever a vertex is actually inserted.
        self._on_insert: List[Callable[[Vertex], None]] = []
        self._lowest_round = 0
        # Cached ``max(self._round_slots)``; queried on every round advance.
        self._highest_round = 0
        # vertex id -> {target round -> sources reachable at that round}.
        self._reach_cache: Dict[VertexId, Dict[Round, FrozenSet[ValidatorId]]] = {}
        # Anchor rounds whose commit-rule status may have changed since the
        # consensus engine last drained this set: an insertion at an even
        # round r is a (potential) anchor for r, an insertion at an odd
        # round r is a (potential) vote for the anchor of r - 1.  Tracking
        # this at the store keeps the incremental commit scan correct no
        # matter how vertices enter the DAG (broadcast, promotion of parked
        # vertices, GC-triggered promotion, recovery replay).
        self._dirty_anchor_rounds: Set[Round] = set()
        # Set when a vertex is inserted below the GC horizon; tells the
        # next garbage_collect that a sweep is needed even if the horizon
        # did not move.
        self._stale_below_horizon = False
        # Always-on cheap counters (snapshotted into ExperimentResult):
        # high-water mark of the pending buffer and total GC reclaim.
        self.pending_peak = 0
        self.gc_reclaimed_total = 0

    # -- observers ------------------------------------------------------------

    def install_tracer(self, tracer: Tracer, owner: ValidatorId) -> None:
        """Attach a tracer; events carry ``owner`` as their node id."""
        self._tracer = tracer
        self._tracing = tracer.enabled
        self.trace_owner = owner

    def on_insert(self, callback: Callable[[Vertex], None]) -> None:
        """Register a callback fired after each successful insertion."""
        self._on_insert.append(callback)

    def replace_insert_callbacks(self, callbacks: Iterable[Callable[[Vertex], None]]) -> None:
        """Replace all insertion callbacks (used when a node recovers)."""
        self._on_insert = list(callbacks)

    # -- insertion --------------------------------------------------------------

    def add(self, vertex: Vertex) -> bool:
        """Add ``vertex`` to the DAG.

        Returns ``True`` when the vertex (and possibly vertices that were
        waiting on it) became part of the DAG, ``False`` when it was parked
        in the pending buffer because parents are missing.
        """
        if self._check_known(vertex):
            return False
        if self.require_edge_quorum and not check_edge_quorum(vertex, self.committee):
            raise DagError(
                f"vertex {vertex.id} does not reference a 2f+1 quorum of parents"
            )
        missing = self.missing_parents(vertex)
        if missing:
            self._park(vertex, missing)
            return False
        self._insert(vertex)
        if self._waiting_on:
            self._promote_pending(vertex.id)
        return True

    def _check_known(self, vertex: Vertex) -> bool:
        """Detect duplicates and equivocation for ``vertex``."""
        existing = self._by_id.get(vertex.id)
        if existing is not None:
            if existing.digest != vertex.digest:
                raise EquivocationError(
                    f"validator {vertex.source} equivocated at round {vertex.round}"
                )
            return True
        pending = self._pending.get(vertex.id)
        if pending is not None:
            if pending.digest != vertex.digest:
                raise EquivocationError(
                    f"validator {vertex.source} equivocated at round {vertex.round}"
                )
            return True
        return False

    # Shared empty result for the common all-parents-present case, so the
    # per-insertion check does not allocate.
    _NO_MISSING: FrozenSet[VertexId] = frozenset()

    def missing_parents(self, vertex: Vertex) -> Set[VertexId]:
        """Parents of ``vertex`` not yet part of the DAG.

        Parents below the garbage-collection horizon are treated as
        present: their sub-DAG has already been ordered and pruned.
        """
        by_id = self._by_id
        lowest = self._lowest_round
        missing: Optional[Set[VertexId]] = None
        for parent in vertex.edges:
            if parent not in by_id and parent.round >= lowest:
                if missing is None:
                    missing = {parent}
                else:
                    missing.add(parent)
        return missing if missing is not None else self._NO_MISSING

    def _park(self, vertex: Vertex, missing: Set[VertexId]) -> None:
        self._pending[vertex.id] = vertex
        for parent in missing:
            self._waiting_on.setdefault(parent, set()).add(vertex.id)
        depth = len(self._pending)
        if depth > self.pending_peak:
            self.pending_peak = depth
        if self._tracing:
            self._tracer.emit(
                "vertex_parked",
                node=self.trace_owner,
                round=vertex.round,
                source=vertex.source,
                missing=len(missing),
            )

    def _insert(self, vertex: Vertex) -> None:
        if vertex.round < self._lowest_round:
            # A straggler below the GC horizon can reconnect walks that
            # previously stopped at its (absent) id.  Only cache entries of
            # vertices that can actually reach the straggler — and only
            # their targets at or below its round — can change, so those
            # are invalidated surgically instead of clearing the whole
            # cache; warm entries elsewhere survive state sync.
            self._invalidate_straggler_reachers(vertex)
            self._stale_below_horizon = True
        round_number = vertex.round
        source = vertex.source
        self._by_id[vertex.id] = vertex
        slots = self._round_slots.get(round_number)
        if slots is None:
            pool = self._slab_pool
            slots = pool.pop() if pool else [None] * self._size
            self._round_slots[round_number] = slots
            order = self._round_order[round_number] = []
        else:
            order = self._round_order[round_number]
        slots[source] = vertex
        order.append(vertex)
        self._round_stake[round_number] = (
            self._round_stake.get(round_number, 0) + self._stakes[source]
        )
        if round_number > self._highest_round:
            self._highest_round = round_number
        anchor_round = round_number if round_number % 2 == 0 else round_number - 1
        if anchor_round >= 2:
            self._dirty_anchor_rounds.add(anchor_round)
        if self._tracing:
            self._tracer.emit(
                "vertex_inserted",
                node=self.trace_owner,
                round=round_number,
                source=source,
            )
        for callback in self._on_insert:
            callback(vertex)

    def _invalidate_straggler_reachers(self, vertex: Vertex) -> None:
        """Invalidate cache entries a below-horizon straggler can affect.

        New paths opened by the straggler all pass *through* it, so the
        only stale entries are those of vertices from which the
        straggler's id is reachable, and only for target rounds at or
        below the straggler's round (sets for higher targets never
        depended on its presence: an edge naming a round-``t`` vertex
        counts for target ``t`` whether or not that vertex is stored).
        The reacher set is found by one upward sweep over the stored
        rounds above the straggler; this runs only on the rare state-sync
        path, never on frontier insertions.
        """
        cache = self._reach_cache
        if not cache:
            return
        reacher_ids: Set[VertexId] = {vertex.id}
        for round_number in sorted(r for r in self._round_slots if r > vertex.round):
            for candidate in self._round_order[round_number]:
                if any(edge in reacher_ids for edge in candidate.edges):
                    reacher_ids.add(candidate.id)
        reacher_ids.discard(vertex.id)
        for reacher_id in reacher_ids:
            entry = cache.get(reacher_id)
            if not entry:
                continue
            for target_round in [t for t in entry if t <= vertex.round]:
                del entry[target_round]
            if not entry:
                del cache[reacher_id]

    def _promote_pending(self, arrived: VertexId) -> None:
        """Promote pending vertices whose last missing parent just arrived."""
        queue = deque([arrived])
        while queue:
            parent = queue.popleft()
            waiters = self._waiting_on.pop(parent, set())
            # Promotion order decides insertion order into the round
            # tables, which downstream lookups expose; sort so it is a
            # function of the vertex ids, not of set iteration order.
            for waiter_id in sorted(waiters):
                waiter = self._pending.get(waiter_id)
                if waiter is None:
                    continue
                if not self.missing_parents(waiter):
                    del self._pending[waiter_id]
                    self._insert(waiter)
                    if self._tracing:
                        self._tracer.emit(
                            "vertex_promoted",
                            node=self.trace_owner,
                            round=waiter.round,
                            source=waiter.source,
                        )
                    queue.append(waiter_id)

    # -- lookups --------------------------------------------------------------------

    def __contains__(self, vertex_id: VertexId) -> bool:
        return vertex_id in self._by_id

    def get(self, vertex_id: VertexId) -> Optional[Vertex]:
        return self._by_id.get(vertex_id)

    def vertex_of(self, round_number: Round, source: ValidatorId) -> Optional[Vertex]:
        slots = self._round_slots.get(round_number)
        if slots is None or not 0 <= source < len(slots):
            return None
        return slots[source]

    def vertices_at(self, round_number: Round) -> Tuple[Vertex, ...]:
        # det: ordered -- arrival order under the single-threaded simulator;
        # the per-round arrival list makes it deterministic, and the
        # differential suite pins the digests that depend on it.
        return tuple(self._round_order.get(round_number, ()))

    def sources_at(self, round_number: Round) -> Set[ValidatorId]:
        return {vertex.source for vertex in self._round_order.get(round_number, ())}

    def stake_at(self, round_number: Round) -> int:
        """Total stake of the sources with a vertex in ``round_number``."""
        return self._round_stake.get(round_number, 0)

    def has_quorum_at(self, round_number: Round) -> bool:
        return self._round_stake.get(round_number, 0) >= self.committee.quorum_threshold

    def highest_round(self) -> Round:
        if not self._round_slots:
            return 0
        return self._highest_round

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Vertex]:
        # det: ordered -- arrival order (insertion-ordered dict); consumers
        # are introspection and tests, never the digest fold.
        return iter(list(self._by_id.values()))

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def pending_missing(self) -> Set[VertexId]:
        """All parents currently blocking pending vertices."""
        missing: Set[VertexId] = set()
        for vertex in self._pending.values():
            missing.update(self.missing_parents(vertex))
        return missing

    def pending_vertices(self) -> Tuple[Vertex, ...]:
        """Vertices parked while waiting for missing parents."""
        # det: ordered -- arrival order (insertion-ordered dict), exposed
        # for introspection and fetch bookkeeping only.
        return tuple(self._pending.values())

    def drain_dirty_anchor_rounds(self) -> Set[Round]:
        """Anchor rounds touched by insertions since the last drain.

        The consensus engine uses this to re-evaluate only the anchor
        rounds whose direct-vote quorum can actually have changed, instead
        of rescanning every candidate round on every insertion.  When the
        set is empty it is returned as-is (the caller consumes it
        immediately), avoiding a set allocation per insertion.
        """
        dirty = self._dirty_anchor_rounds
        if not dirty:
            return dirty
        self._dirty_anchor_rounds = set()
        return dirty

    def round_map(self, round_number: Round) -> Sequence[Optional[Vertex]]:
        """Read-only slab of the vertices at ``round_number`` by source.

        The result is indexable by validator id (``None`` where the source
        has no vertex yet) and iterates in id order.  Unlike
        :meth:`vertices_at` this does not copy; callers must not mutate
        the returned sequence.  Used by the per-insertion commit probes,
        where a per-call copy was measurable at committee 25+.
        """
        return self._round_slots.get(round_number, self._EMPTY_ROUND)

    _EMPTY_ROUND: Tuple[Optional[Vertex], ...] = ()

    # -- reachability (``path`` in Algorithm 1) ---------------------------------------

    def path(self, descendant: VertexId, ancestor: VertexId) -> bool:
        """``True`` when a directed path exists from ``descendant`` to ``ancestor``.

        Edges point from a round-``r`` vertex to round-``r-1`` vertices, so
        the walk always moves downwards in rounds.  An ancestor counts as
        reached when an edge names its id, whether or not the ancestor
        vertex itself is still stored (it may have been pruned).
        """
        if descendant == ancestor:
            return descendant in self._by_id
        start = self._by_id.get(descendant)
        if start is None or ancestor.round >= start.round:
            return False
        if self.cache_reachability:
            return ancestor.source in self._reachable_sources(start, ancestor.round)
        return self._path_bfs(descendant, start, ancestor)

    def _path_bfs(self, descendant: VertexId, start: Vertex, target: VertexId) -> bool:
        """Reference breadth-first search (the seed implementation)."""
        frontier: Set[VertexId] = {descendant}
        current_round = start.round
        while frontier and current_round > target.round:
            next_frontier: Set[VertexId] = set()
            for vertex_id in frontier:
                vertex = self._by_id.get(vertex_id)
                if vertex is None:
                    continue
                for parent in vertex.edges:
                    if parent == target:
                        return True
                    if parent.round > target.round:
                        next_frontier.add(parent)
            frontier = next_frontier
            current_round -= 1
        return False

    def reachable_sources(self, vertex_id: VertexId, target_round: Round) -> FrozenSet[ValidatorId]:
        """Sources whose ``target_round`` vertex is reachable from ``vertex_id``.

        A source ``s`` is included exactly when :meth:`path` from
        ``vertex_id`` to ``VertexId(target_round, s)`` holds.  Results are
        memoized per (vertex, target round); see the module docstring for
        the invalidation argument.
        """
        vertex = self._by_id.get(vertex_id)
        if vertex is None or vertex.round <= target_round:
            return frozenset()
        if not self.cache_reachability:
            # Escape hatch / oracle mode: answer from the reference BFS
            # without building memoized state.
            return frozenset(
                source
                for source in self.committee.validators
                if self._path_bfs(vertex_id, vertex, VertexId(target_round, source))
            )
        return self._reachable_sources(vertex, target_round)

    def _reachable_sources(self, root: Vertex, target_round: Round) -> FrozenSet[ValidatorId]:
        cache = self._reach_cache
        entry = cache.get(root.id)
        if entry is not None:
            cached = entry.get(target_round)
            if cached is not None:
                return cached
        by_id = self._by_id
        # Phase 1: collect the not-yet-memoized region reachable from the
        # root, grouped by round.  The walk stops early at vertices whose
        # set is already cached and at round ``target_round + 1``.
        region: Dict[Round, List[Vertex]] = {}
        seen: Set[VertexId] = {root.id}
        queue = deque([root])
        while queue:
            vertex = queue.popleft()
            entry = cache.get(vertex.id)
            if entry is not None and target_round in entry:
                continue
            region.setdefault(vertex.round, []).append(vertex)
            if vertex.round == target_round + 1:
                continue
            # det: ordered -- BFS order only decides memo fill order; the
            # per-vertex results are sets, and phase 2 re-sorts by round.
            for edge in vertex.edges:
                if edge in seen:
                    continue
                seen.add(edge)
                parent = by_id.get(edge)
                # Absent parents (pruned or never received) block the walk,
                # exactly like the reference BFS skips unknown ids.
                if parent is not None:
                    queue.append(parent)
        # Phase 2: rounds strictly decrease along edges, so computing in
        # ascending round order guarantees every parent's set is ready
        # (either memoized earlier or produced by a lower level).
        for round_number in sorted(region):
            for vertex in region[round_number]:
                entry = cache.setdefault(vertex.id, {})
                if target_round in entry:
                    continue
                if vertex.round == target_round + 1:
                    # Base case: edges point straight at the target round;
                    # an edge names the target vertex whether or not that
                    # vertex is still stored.
                    entry[target_round] = frozenset(edge.source for edge in vertex.edges)
                    continue
                reachable: Set[ValidatorId] = set()
                for edge in vertex.edges:
                    parent_entry = cache.get(edge)
                    if parent_entry is not None:
                        parent_set = parent_entry.get(target_round)
                        if parent_set:
                            reachable |= parent_set
                entry[target_round] = frozenset(reachable)
        return cache[root.id][target_round]

    def causal_history(
        self,
        root: VertexId,
        exclude: Optional[Set[VertexId]] = None,
        include_root: bool = True,
    ) -> List[Vertex]:
        """All vertices reachable from ``root`` that are not in ``exclude``.

        The result is returned in a deterministic order (ascending round,
        then source) so that every validator linearizes a committed
        sub-DAG identically (Algorithm 2, line 35).

        Exclusion-free queries (the deep fetch responder's whole-history
        requests) are answered from the round-indexed reachability cache
        instead of a raw stack walk: the history at each stored round is
        exactly the cached ``reachable_sources`` set, so repeated fetches
        for nearby roots share memoized per-round sets with the commit
        rule.  Queries with an ``exclude`` set keep the walk, because
        pruning *during* traversal differs from filtering afterwards
        whenever the excluded set is not causally closed downwards.
        """
        excluded = exclude if exclude is not None else set()
        by_id = self._by_id
        root_vertex = by_id.get(root)
        if root_vertex is None:
            raise DagError(f"vertex {root} is not in the DAG")
        if self.cache_reachability and not excluded:
            return self._causal_history_cached(root_vertex, include_root)
        if root in excluded:
            # The walk stops immediately at an excluded root.
            return []
        # Level-wise walk using C-speed set operations: the commit rule
        # calls this once per committed anchor with the already-ordered
        # set excluded, and the per-edge Python loop of the previous
        # stack walk was measurable at committee 25+.  Edges always point
        # to the previous round, so the frontier can be advanced as a
        # set-union of edge sets minus everything seen or excluded.
        collected: List[Vertex] = []
        if include_root:
            collected.append(root_vertex)
        seen: Set[VertexId] = {root}
        frontier: Set[VertexId] = set()
        frontier.update(root_vertex.edges)
        frontier.difference_update(excluded)
        while frontier:
            seen.update(frontier)
            next_edges: List[FrozenSet[VertexId]] = []
            # det: ordered -- append order is erased by the final sort;
            # next_edges feed an order-insensitive set union.
            for vertex_id in frontier:
                vertex = by_id.get(vertex_id)
                if vertex is None:
                    # Below the GC horizon: already ordered and pruned.
                    continue
                collected.append(vertex)
                next_edges.append(vertex.edges)
            if not next_edges:
                break
            frontier = set().union(*next_edges)
            frontier.difference_update(seen)
            frontier.difference_update(excluded)
        collected.sort(key=lambda vertex: (vertex.round, vertex.source))
        return collected

    def _causal_history_cached(self, root_vertex: Vertex, include_root: bool) -> List[Vertex]:
        """Cache-backed :meth:`causal_history` for exclusion-free queries.

        Ascending rounds with sorted sources reproduce the walk's
        deterministic (round, source) order without a final sort.
        """
        collected: List[Vertex] = []
        rounds = self._round_slots
        # Iterate the rounds actually stored (not the horizon range): a
        # state-sync straggler may sit below the GC horizon yet still be
        # stored and reachable.
        for round_number in sorted(r for r in rounds if r < root_vertex.round):
            slots = rounds[round_number]
            slot_count = len(slots)
            for source in sorted(self._reachable_sources(root_vertex, round_number)):
                vertex = slots[source] if 0 <= source < slot_count else None
                if vertex is not None:
                    collected.append(vertex)
        if include_root:
            collected.append(root_vertex)
        return collected

    # -- garbage collection ----------------------------------------------------------------

    def reconsider_pending(self) -> int:
        """Re-evaluate parked vertices after the GC horizon moved.

        Raising the horizon (state sync) makes parents below it count as
        present, so vertices that were waiting only on pruned history can
        now be inserted.  Returns the number of vertices promoted.
        """
        promoted = 0
        progress = True
        while progress:
            progress = False
            # Promotion fires insertion callbacks that may re-enter this
            # method (a node's callback runs consensus, whose GC calls back
            # into the store), so entries from this snapshot may already
            # have been handled by a nested pass: remove with pop(), never
            # an unguarded del.
            for vertex_id, vertex in list(self._pending.items()):
                if vertex_id in self._by_id:
                    self._pending.pop(vertex_id, None)
                    continue
                if not self.missing_parents(vertex):
                    if self._pending.pop(vertex_id, None) is None:
                        continue
                    self._insert(vertex)
                    promoted += 1
                    progress = True
        if promoted:
            # Drop stale wait registrations for parents that will never come.
            self._waiting_on = {
                parent: {waiter for waiter in waiters if waiter in self._pending}
                for parent, waiters in self._waiting_on.items()
            }
            self._waiting_on = {
                parent: waiters for parent, waiters in self._waiting_on.items() if waiters
            }
        return promoted

    def garbage_collect(self, before_round: Round) -> int:
        """Drop vertices strictly below ``before_round``.

        Committed and ordered history no longer needs to be kept for
        reachability queries; the production system similarly prunes old
        rounds from RocksDB.  Returns the number of vertices removed.

        Raising the horizon also re-evaluates the pending buffer: parked
        vertices whose missing parents all fell below the horizon are
        promoted into the DAG, parked vertices *below* the horizon (their
        sub-DAG is already ordered history) are dropped, and wait
        registrations keyed by pruned parents are purged.  Without this the
        buffer leaks on long runs and vertices parked on pruned parents
        stay stranded forever.
        """
        if before_round <= self._lowest_round and not self._stale_below_horizon:
            # The horizon did not move and no straggler arrived below it:
            # nothing to prune.  The consensus engine calls this on every
            # insertion, so the early-out matters.
            return 0
        removed = 0
        for round_number in [r for r in self._round_slots if r < before_round]:
            for vertex in self._round_order.pop(round_number):
                del self._by_id[vertex.id]
                self._reach_cache.pop(vertex.id, None)
                removed += 1
            slots = self._round_slots.pop(round_number)
            # Recycle the slab: wipe in place and park it for the next
            # round allocation.  The pool is bounded so a burst GC cannot
            # retain arbitrarily many empty slabs.
            if len(self._slab_pool) < self._SLAB_POOL_LIMIT and len(slots) == self._size:
                for index in range(self._size):
                    slots[index] = None
                self._slab_pool.append(slots)
            self._round_stake.pop(round_number, None)
        if not self._round_slots:
            # GC swallowed every round (the horizon overtook the frontier);
            # match ``max(rounds) or 0`` semantics.
            self._highest_round = 0
        self._lowest_round = max(self._lowest_round, before_round)
        self._stale_below_horizon = False
        # Cached sets for targets below the horizon may now reference
        # pruned rounds; entries at or above it never traversed them.
        for entry in self._reach_cache.values():
            for target_round in [r for r in entry if r < before_round]:
                del entry[target_round]
        self._prune_pending(before_round)
        self.reconsider_pending()
        self.gc_reclaimed_total += removed
        if self._tracing and removed:
            self._tracer.emit(
                "dag_gc",
                node=self.trace_owner,
                before_round=before_round,
                removed=removed,
            )
        return removed

    def _prune_pending(self, before_round: Round) -> None:
        """Drop parked vertices and wait registrations below the horizon."""
        for vertex_id in [v for v in self._pending if v.round < before_round]:
            del self._pending[vertex_id]
        for parent in [p for p in self._waiting_on if p.round < before_round]:
            del self._waiting_on[parent]
        # Registrations whose waiter was just dropped (or promoted by an
        # earlier pass) are stale as well.
        # det: ordered -- list() only guards mutation during iteration;
        # the per-key rebuild/delete is order-insensitive.
        for parent in list(self._waiting_on):
            waiters = {w for w in self._waiting_on[parent] if w in self._pending}
            if waiters:
                self._waiting_on[parent] = waiters
            else:
                del self._waiting_on[parent]

    @property
    def lowest_round(self) -> Round:
        return self._lowest_round

    def all_rounds(self) -> List[Round]:
        return sorted(self._round_slots)
