"""A validator's local view of the DAG (``DAGi[]`` in Algorithm 1).

The store enforces two invariants the correctness proofs rely on:

* **Causal completeness** (Claim 1): a vertex only becomes part of the DAG
  once its entire causal history is present.  Vertices whose parents are
  still missing are parked in a pending buffer and promoted automatically.
* **Non-equivocation**: at most one vertex per (round, source) pair is
  ever accepted; conflicting vertices raise :class:`EquivocationError`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.committee import Committee
from repro.dag.vertex import Vertex, check_edge_quorum
from repro.errors import DagError, EquivocationError
from repro.types import Round, ValidatorId, VertexId


class DagStore:
    """In-memory DAG with pending-parent buffering and reachability queries."""

    def __init__(self, committee: Committee, require_edge_quorum: bool = True) -> None:
        self.committee = committee
        self.require_edge_quorum = require_edge_quorum
        # rounds[r][source] -> Vertex
        self._rounds: Dict[Round, Dict[ValidatorId, Vertex]] = {}
        self._by_id: Dict[VertexId, Vertex] = {}
        # Vertices waiting for missing parents, keyed by the missing parent.
        self._pending: Dict[VertexId, Vertex] = {}
        self._waiting_on: Dict[VertexId, Set[VertexId]] = {}
        # Callbacks invoked whenever a vertex is actually inserted.
        self._on_insert: List[Callable[[Vertex], None]] = []
        self._lowest_round = 0

    # -- observers ------------------------------------------------------------

    def on_insert(self, callback: Callable[[Vertex], None]) -> None:
        """Register a callback fired after each successful insertion."""
        self._on_insert.append(callback)

    def replace_insert_callbacks(self, callbacks: Iterable[Callable[[Vertex], None]]) -> None:
        """Replace all insertion callbacks (used when a node recovers)."""
        self._on_insert = list(callbacks)

    # -- insertion --------------------------------------------------------------

    def add(self, vertex: Vertex) -> bool:
        """Add ``vertex`` to the DAG.

        Returns ``True`` when the vertex (and possibly vertices that were
        waiting on it) became part of the DAG, ``False`` when it was parked
        in the pending buffer because parents are missing.
        """
        if self._check_known(vertex):
            return False
        if self.require_edge_quorum and not check_edge_quorum(vertex, self.committee):
            raise DagError(
                f"vertex {vertex.id} does not reference a 2f+1 quorum of parents"
            )
        missing = self.missing_parents(vertex)
        if missing:
            self._park(vertex, missing)
            return False
        self._insert(vertex)
        self._promote_pending(vertex.id)
        return True

    def _check_known(self, vertex: Vertex) -> bool:
        """Detect duplicates and equivocation for ``vertex``."""
        existing = self._by_id.get(vertex.id)
        if existing is not None:
            if existing.digest != vertex.digest:
                raise EquivocationError(
                    f"validator {vertex.source} equivocated at round {vertex.round}"
                )
            return True
        pending = self._pending.get(vertex.id)
        if pending is not None:
            if pending.digest != vertex.digest:
                raise EquivocationError(
                    f"validator {vertex.source} equivocated at round {vertex.round}"
                )
            return True
        return False

    def missing_parents(self, vertex: Vertex) -> Set[VertexId]:
        """Parents of ``vertex`` not yet part of the DAG.

        Parents below the garbage-collection horizon are treated as
        present: their sub-DAG has already been ordered and pruned.
        """
        return {
            parent
            for parent in vertex.edges
            if parent not in self._by_id and parent.round >= self._lowest_round
        }

    def _park(self, vertex: Vertex, missing: Set[VertexId]) -> None:
        self._pending[vertex.id] = vertex
        for parent in missing:
            self._waiting_on.setdefault(parent, set()).add(vertex.id)

    def _insert(self, vertex: Vertex) -> None:
        self._by_id[vertex.id] = vertex
        self._rounds.setdefault(vertex.round, {})[vertex.source] = vertex
        for callback in self._on_insert:
            callback(vertex)

    def _promote_pending(self, arrived: VertexId) -> None:
        """Promote pending vertices whose last missing parent just arrived."""
        queue = deque([arrived])
        while queue:
            parent = queue.popleft()
            waiters = self._waiting_on.pop(parent, set())
            for waiter_id in waiters:
                waiter = self._pending.get(waiter_id)
                if waiter is None:
                    continue
                if not self.missing_parents(waiter):
                    del self._pending[waiter_id]
                    self._insert(waiter)
                    queue.append(waiter_id)

    # -- lookups --------------------------------------------------------------------

    def __contains__(self, vertex_id: VertexId) -> bool:
        return vertex_id in self._by_id

    def get(self, vertex_id: VertexId) -> Optional[Vertex]:
        return self._by_id.get(vertex_id)

    def vertex_of(self, round_number: Round, source: ValidatorId) -> Optional[Vertex]:
        return self._rounds.get(round_number, {}).get(source)

    def vertices_at(self, round_number: Round) -> Tuple[Vertex, ...]:
        return tuple(self._rounds.get(round_number, {}).values())

    def sources_at(self, round_number: Round) -> Set[ValidatorId]:
        return set(self._rounds.get(round_number, {}).keys())

    def stake_at(self, round_number: Round) -> int:
        """Total stake of the sources with a vertex in ``round_number``."""
        return self.committee.stake(self.sources_at(round_number))

    def has_quorum_at(self, round_number: Round) -> bool:
        return self.committee.has_quorum(self.sources_at(round_number))

    def highest_round(self) -> Round:
        if not self._rounds:
            return 0
        return max(self._rounds)

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(list(self._by_id.values()))

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def pending_missing(self) -> Set[VertexId]:
        """All parents currently blocking pending vertices."""
        missing: Set[VertexId] = set()
        for vertex in self._pending.values():
            missing.update(self.missing_parents(vertex))
        return missing

    def pending_vertices(self) -> Tuple[Vertex, ...]:
        """Vertices parked while waiting for missing parents."""
        return tuple(self._pending.values())

    # -- reachability (``path`` in Algorithm 1) ---------------------------------------

    def path(self, descendant: VertexId, ancestor: VertexId) -> bool:
        """``True`` when a directed path exists from ``descendant`` to ``ancestor``.

        Edges point from a round-``r`` vertex to round-``r-1`` vertices, so
        the search walks rounds downwards and stops as soon as the
        ancestor's round is passed.
        """
        if descendant == ancestor:
            return descendant in self._by_id
        start = self._by_id.get(descendant)
        target = ancestor
        if start is None or target.round >= start.round:
            return False
        frontier: Set[VertexId] = {descendant}
        current_round = start.round
        while frontier and current_round > target.round:
            next_frontier: Set[VertexId] = set()
            for vertex_id in frontier:
                vertex = self._by_id.get(vertex_id)
                if vertex is None:
                    continue
                for parent in vertex.edges:
                    if parent == target:
                        return True
                    if parent.round > target.round:
                        next_frontier.add(parent)
            frontier = next_frontier
            current_round -= 1
        return False

    def causal_history(
        self,
        root: VertexId,
        exclude: Optional[Set[VertexId]] = None,
        include_root: bool = True,
    ) -> List[Vertex]:
        """All vertices reachable from ``root`` that are not in ``exclude``.

        The result is returned in a deterministic order (ascending round,
        then source) so that every validator linearizes a committed
        sub-DAG identically (Algorithm 2, line 35).
        """
        excluded = exclude if exclude is not None else set()
        root_vertex = self._by_id.get(root)
        if root_vertex is None:
            raise DagError(f"vertex {root} is not in the DAG")
        seen: Set[VertexId] = set()
        collected: List[Vertex] = []
        stack = [root]
        while stack:
            vertex_id = stack.pop()
            if vertex_id in seen or vertex_id in excluded:
                continue
            seen.add(vertex_id)
            vertex = self._by_id.get(vertex_id)
            if vertex is None:
                # Below the GC horizon: already ordered and pruned.
                continue
            if vertex_id != root or include_root:
                collected.append(vertex)
            stack.extend(vertex.edges)
        collected.sort(key=lambda vertex: (vertex.round, vertex.source))
        return collected

    # -- garbage collection ----------------------------------------------------------------

    def reconsider_pending(self) -> int:
        """Re-evaluate parked vertices after the GC horizon moved.

        Raising the horizon (state sync) makes parents below it count as
        present, so vertices that were waiting only on pruned history can
        now be inserted.  Returns the number of vertices promoted.
        """
        promoted = 0
        progress = True
        while progress:
            progress = False
            for vertex_id, vertex in list(self._pending.items()):
                if vertex_id in self._by_id:
                    del self._pending[vertex_id]
                    continue
                if not self.missing_parents(vertex):
                    del self._pending[vertex_id]
                    self._insert(vertex)
                    promoted += 1
                    progress = True
        if promoted:
            # Drop stale wait registrations for parents that will never come.
            self._waiting_on = {
                parent: {waiter for waiter in waiters if waiter in self._pending}
                for parent, waiters in self._waiting_on.items()
            }
            self._waiting_on = {
                parent: waiters for parent, waiters in self._waiting_on.items() if waiters
            }
        return promoted

    def garbage_collect(self, before_round: Round) -> int:
        """Drop vertices strictly below ``before_round``.

        Committed and ordered history no longer needs to be kept for
        reachability queries; the production system similarly prunes old
        rounds from RocksDB.  Returns the number of vertices removed.
        """
        removed = 0
        for round_number in [r for r in self._rounds if r < before_round]:
            for vertex in self._rounds[round_number].values():
                del self._by_id[vertex.id]
                removed += 1
            del self._rounds[round_number]
        self._lowest_round = max(self._lowest_round, before_round)
        return removed

    @property
    def lowest_round(self) -> Round:
        return self._lowest_round

    def all_rounds(self) -> List[Round]:
        return sorted(self._rounds)
