"""Narwhal-style DAG substrate.

Vertices are certified blocks arranged in rounds; every vertex references
at least ``2f+1`` (by stake) vertices of the previous round.  The DAG is
the structure Bullshark interprets to reach consensus, and the structure
HammerHead mines for reputation information ("who voted for the leader").
"""

from repro.dag.vertex import Block, Vertex, check_edge_quorum, genesis_vertices, make_vertex
from repro.dag.store import DagStore

__all__ = [
    "Vertex",
    "Block",
    "DagStore",
    "genesis_vertices",
    "make_vertex",
    "check_edge_quorum",
]
