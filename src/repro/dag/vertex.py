"""DAG vertices (Algorithm 1 of the paper).

A vertex carries: the round it belongs to, the validator that broadcast
it, a block of transactions, and edges to at least ``2f+1`` (by stake)
vertices of the previous round.  Honest validators produce at most one
vertex per round; the reliable-broadcast layer prevents equivocation from
being accepted.
"""

from __future__ import annotations

import dataclasses
from typing import Any, FrozenSet, Iterable, List, Sequence, Tuple

from repro.committee import Committee
from repro.crypto.hashing import Digest, vertex_digest
from repro.errors import DagError
from repro.types import Round, SimTime, ValidatorId, VertexId

# A block is an immutable sequence of opaque transactions.  The workload
# layer fills it with Transaction objects; the DAG and consensus layers
# never look inside.
Block = Tuple[Any, ...]


@dataclasses.dataclass(frozen=True)
class Vertex:
    """A vertex of the DAG (``struct vertex`` in Algorithm 1)."""

    id: VertexId
    edges: FrozenSet[VertexId]
    block: Block
    digest: Digest
    created_at: SimTime = 0.0

    # ``round`` and ``source`` mirror the id's fields as plain instance
    # attributes (set in ``__post_init__``): they are read hundreds of
    # thousands of times per run, and a property accessor is a Python
    # call while an instance attribute is a C-level lookup.
    round: Round = dataclasses.field(init=False, compare=False, repr=False)
    source: ValidatorId = dataclasses.field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "round", self.id.round)
        object.__setattr__(self, "source", self.id.source)

    def canonical_fields(self) -> Tuple[Any, ...]:
        """Fields participating in the content digest."""
        return (
            self.id.round,
            self.id.source,
            tuple(sorted((edge.round, edge.source) for edge in self.edges)),
            len(self.block),
        )

    def references(self, other: VertexId) -> bool:
        """``True`` when this vertex has a direct edge to ``other``."""
        return other in self.edges

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f"Vertex(r={self.round}, p={self.source}, |edges|={len(self.edges)}, |block|={len(self.block)})"


def make_vertex(
    round_number: Round,
    source: ValidatorId,
    edges: Iterable[VertexId],
    block: Sequence[Any] = (),
    created_at: SimTime = 0.0,
) -> Vertex:
    """Construct a vertex, validating its structural invariants.

    Edges must all point to the immediately preceding round; round-0
    (genesis) vertices carry no edges.
    """
    if round_number < 0:
        raise DagError("rounds are non-negative")
    edge_set = frozenset(edges)
    if round_number == 0 and edge_set:
        raise DagError("genesis vertices must not reference parents")
    for edge in edge_set:
        if edge.round != round_number - 1:
            raise DagError(
                f"vertex at round {round_number} references parent at round "
                f"{edge.round}; edges must point to the previous round"
            )
    vertex_id = VertexId(round=round_number, source=source)
    digest = vertex_digest(
        round_number,
        source,
        sorted(edge_set),
        len(block),
    )
    return Vertex(
        id=vertex_id,
        edges=edge_set,
        block=tuple(block),
        digest=digest,
        created_at=created_at,
    )


def genesis_vertices(committee: Committee) -> List[Vertex]:
    """Round-0 vertices, one per validator, shared by every node at start-up.

    Vertices are immutable, so the list is memoized on the committee:
    every node of an ``n``-validator simulation requests the same ``n``
    genesis vertices, and recomputing their digests was ``O(n^2)`` hash
    work at start-up.
    """
    cached = getattr(committee, "_genesis_vertices_cache", None)
    if cached is None:
        cached = [
            make_vertex(0, validator, edges=(), block=())
            for validator in committee.validators
        ]
        committee._genesis_vertices_cache = cached
    return list(cached)


def check_edge_quorum(vertex: Vertex, committee: Committee) -> bool:
    """``True`` when the vertex's edges cover a 2f+1 stake quorum.

    Genesis vertices trivially satisfy the requirement.  Edges all point
    to the previous round, so their sources are duplicate-free and the
    verdict is memoized per content digest (every recipient of a
    broadcast validates the same vertex).
    """
    if vertex.round == 0:
        return True
    return committee.edge_quorum_verdict(
        vertex.digest, (edge.source for edge in vertex.edges)
    )
