"""DAG vertices (Algorithm 1 of the paper).

A vertex carries: the round it belongs to, the validator that broadcast
it, a block of transactions, and edges to at least ``2f+1`` (by stake)
vertices of the previous round.  Honest validators produce at most one
vertex per round; the reliable-broadcast layer prevents equivocation from
being accepted.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.committee import Committee
from repro.crypto.hashing import Digest, evict_oldest_half, vertex_digest
from repro.errors import DagError
from repro.types import Round, SimTime, ValidatorId, VertexId

# A block is an immutable sequence of opaque transactions.  The workload
# layer fills it with Transaction objects; the DAG and consensus layers
# never look inside.
Block = Tuple[Any, ...]

# Per-process intern tables.  Every recipient of a broadcast rebuilds the
# same vertex, so an ``n``-validator run otherwise holds ``n`` equal
# ``VertexId`` tuples and ``n`` equal digest byte strings per vertex;
# interning collapses them to one canonical object each (committee-100
# keeps ~100x fewer of both alive).  Both tables are value-keyed, so a
# hit can never change what any consumer observes — only object
# identity — and both are capped with the same oldest-half eviction the
# digest memos use.
_VERTEX_ID_INTERN: Dict[Tuple[Round, ValidatorId], VertexId] = {}
_DIGEST_INTERN: Dict[Digest, Digest] = {}
_INTERN_LIMIT = 1 << 17


def interned_vertex_id(round_number: Round, source: ValidatorId) -> VertexId:
    """The canonical ``VertexId`` for ``(round, source)`` in this process."""
    key = (round_number, source)
    vertex_id = _VERTEX_ID_INTERN.get(key)
    if vertex_id is None:
        evict_oldest_half(_VERTEX_ID_INTERN, _INTERN_LIMIT)
        vertex_id = VertexId(round=round_number, source=source)
        _VERTEX_ID_INTERN[key] = vertex_id
    return vertex_id


def intern_table_sizes() -> Dict[str, int]:
    """Current intern-table sizes (observability only, never digested)."""
    return {
        "vertex_id": len(_VERTEX_ID_INTERN),
        "digest": len(_DIGEST_INTERN),
    }


@dataclasses.dataclass(frozen=True, slots=True)
class Vertex:
    """A vertex of the DAG (``struct vertex`` in Algorithm 1)."""

    id: VertexId
    edges: FrozenSet[VertexId]
    block: Block
    digest: Digest
    created_at: SimTime = 0.0

    # ``round`` and ``source`` mirror the id's fields as plain instance
    # attributes (set in ``__post_init__``): they are read hundreds of
    # thousands of times per run, and a property accessor is a Python
    # call while an instance attribute is a C-level lookup.
    round: Round = dataclasses.field(init=False, compare=False, repr=False)
    source: ValidatorId = dataclasses.field(init=False, compare=False, repr=False)
    # Bitmask of the parent sources: bit ``s`` is set iff this vertex has
    # an edge to round ``round - 1``'s vertex from validator ``s``.  All
    # edges of a vertex point to the previous round, so the mask loses no
    # information relative to ``edges`` and lets the vote-stake scan test
    # anchor support with one AND instead of a frozenset lookup.
    edge_mask: int = dataclasses.field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "round", self.id.round)
        object.__setattr__(self, "source", self.id.source)
        mask = 0
        for edge in self.edges:
            mask |= 1 << edge.source
        object.__setattr__(self, "edge_mask", mask)

    def canonical_fields(self) -> Tuple[Any, ...]:
        """Fields participating in the content digest."""
        return (
            self.id.round,
            self.id.source,
            tuple(sorted((edge.round, edge.source) for edge in self.edges)),
            len(self.block),
        )

    def references(self, other: VertexId) -> bool:
        """``True`` when this vertex has a direct edge to ``other``."""
        return other in self.edges

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f"Vertex(r={self.round}, p={self.source}, |edges|={len(self.edges)}, |block|={len(self.block)})"


def make_vertex(
    round_number: Round,
    source: ValidatorId,
    edges: Iterable[VertexId],
    block: Sequence[Any] = (),
    created_at: SimTime = 0.0,
) -> Vertex:
    """Construct a vertex, validating its structural invariants.

    Edges must all point to the immediately preceding round; round-0
    (genesis) vertices carry no edges.
    """
    if round_number < 0:
        raise DagError("rounds are non-negative")
    edge_set = frozenset(edges)
    if round_number == 0 and edge_set:
        raise DagError("genesis vertices must not reference parents")
    for edge in edge_set:
        if edge.round != round_number - 1:
            raise DagError(
                f"vertex at round {round_number} references parent at round "
                f"{edge.round}; edges must point to the previous round"
            )
    vertex_id = interned_vertex_id(round_number, source)
    digest = vertex_digest(
        round_number,
        source,
        sorted(edge_set),
        len(block),
    )
    evict_oldest_half(_DIGEST_INTERN, _INTERN_LIMIT)
    digest = _DIGEST_INTERN.setdefault(digest, digest)
    return Vertex(
        id=vertex_id,
        edges=edge_set,
        block=tuple(block),
        digest=digest,
        created_at=created_at,
    )


def genesis_vertices(committee: Committee) -> List[Vertex]:
    """Round-0 vertices, one per validator, shared by every node at start-up.

    Vertices are immutable, so the list is memoized on the committee:
    every node of an ``n``-validator simulation requests the same ``n``
    genesis vertices, and recomputing their digests was ``O(n^2)`` hash
    work at start-up.
    """
    cached = getattr(committee, "_genesis_vertices_cache", None)
    if cached is None:
        cached = [
            make_vertex(0, validator, edges=(), block=())
            for validator in committee.validators
        ]
        committee._genesis_vertices_cache = cached
    return list(cached)


def check_edge_quorum(vertex: Vertex, committee: Committee) -> bool:
    """``True`` when the vertex's edges cover a 2f+1 stake quorum.

    Genesis vertices trivially satisfy the requirement.  Edges all point
    to the previous round, so their sources are duplicate-free and the
    verdict is memoized per content digest (every recipient of a
    broadcast validates the same vertex).
    """
    if vertex.round == 0:
        return True
    return committee.edge_quorum_verdict(
        vertex.digest, (edge.source for edge in vertex.edges), vertex.edge_mask
    )
