"""DAG vertices (Algorithm 1 of the paper).

A vertex carries: the round it belongs to, the validator that broadcast
it, a block of transactions, and edges to at least ``2f+1`` (by stake)
vertices of the previous round.  Honest validators produce at most one
vertex per round; the reliable-broadcast layer prevents equivocation from
being accepted.
"""

from __future__ import annotations

import dataclasses
from typing import Any, FrozenSet, Iterable, List, Sequence, Tuple

from repro.committee import Committee
from repro.crypto.hashing import Digest, digest_of
from repro.errors import DagError
from repro.types import Round, SimTime, ValidatorId, VertexId

# A block is an immutable sequence of opaque transactions.  The workload
# layer fills it with Transaction objects; the DAG and consensus layers
# never look inside.
Block = Tuple[Any, ...]


@dataclasses.dataclass(frozen=True)
class Vertex:
    """A vertex of the DAG (``struct vertex`` in Algorithm 1)."""

    id: VertexId
    edges: FrozenSet[VertexId]
    block: Block
    digest: Digest
    created_at: SimTime = 0.0

    @property
    def round(self) -> Round:
        return self.id.round

    @property
    def source(self) -> ValidatorId:
        return self.id.source

    def canonical_fields(self) -> Tuple[Any, ...]:
        """Fields participating in the content digest."""
        return (
            self.id.round,
            self.id.source,
            tuple(sorted((edge.round, edge.source) for edge in self.edges)),
            len(self.block),
        )

    def references(self, other: VertexId) -> bool:
        """``True`` when this vertex has a direct edge to ``other``."""
        return other in self.edges

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f"Vertex(r={self.round}, p={self.source}, |edges|={len(self.edges)}, |block|={len(self.block)})"


def make_vertex(
    round_number: Round,
    source: ValidatorId,
    edges: Iterable[VertexId],
    block: Sequence[Any] = (),
    created_at: SimTime = 0.0,
) -> Vertex:
    """Construct a vertex, validating its structural invariants.

    Edges must all point to the immediately preceding round; round-0
    (genesis) vertices carry no edges.
    """
    if round_number < 0:
        raise DagError("rounds are non-negative")
    edge_set = frozenset(edges)
    if round_number == 0 and edge_set:
        raise DagError("genesis vertices must not reference parents")
    for edge in edge_set:
        if edge.round != round_number - 1:
            raise DagError(
                f"vertex at round {round_number} references parent at round "
                f"{edge.round}; edges must point to the previous round"
            )
    vertex_id = VertexId(round=round_number, source=source)
    digest = digest_of(
        round_number,
        source,
        tuple(sorted((edge.round, edge.source) for edge in edge_set)),
        len(block),
    )
    return Vertex(
        id=vertex_id,
        edges=edge_set,
        block=tuple(block),
        digest=digest,
        created_at=created_at,
    )


def genesis_vertices(committee: Committee) -> List[Vertex]:
    """Round-0 vertices, one per validator, shared by every node at start-up."""
    return [make_vertex(0, validator, edges=(), block=()) for validator in committee.validators]


def check_edge_quorum(vertex: Vertex, committee: Committee) -> bool:
    """``True`` when the vertex's edges cover a 2f+1 stake quorum.

    Genesis vertices trivially satisfy the requirement.
    """
    if vertex.round == 0:
        return True
    sources = {edge.source for edge in vertex.edges}
    return committee.has_quorum(sources)
