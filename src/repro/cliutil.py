"""Shared exit contract for every ``python -m repro.*`` entry point.

All three CLIs (``repro.scenarios``, ``repro.analysis``, ``repro.obs``)
promise the same thing to callers and CI:

- exit 0 on success,
- exit 1 when the command itself reports findings/mismatches,
- exit 2 on operational errors (:class:`ReproError`, filesystem
  trouble) with a single ``error: ...`` line on **stderr** and nothing
  on stdout — never a traceback,
- exit 0 on ``BrokenPipeError`` (a downstream pager/``head`` closing
  the pipe is not an error).

The clause order below is load-bearing: ``BrokenPipeError`` subclasses
``OSError``, so it must be caught first or a closed pipe would exit 2.
This helper replaced three hand-rolled copies that had started to
drift.
"""

from __future__ import annotations

import sys
from typing import Callable

from repro.errors import ReproError

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def run_guarded(handler: Callable[[], int]) -> int:
    """Run a CLI command handler under the shared exit contract."""
    try:
        return handler()
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    except BrokenPipeError:
        return EXIT_OK
    except OSError as error:
        print(f"error: {_describe_os_error(error)}", file=sys.stderr)
        return EXIT_ERROR


def _describe_os_error(error: OSError) -> str:
    """``str(error)`` plus errno/address context when it adds anything.

    Net-backend connection failures must be actionable from the one
    stderr line: which errno, which socket address.  ``str(OSError)``
    already embeds ``[Errno N]`` when the error was built from an errno
    pair, so context is appended only when missing — existing messages
    (and the tests pinning them) are unchanged.
    """
    message = str(error)
    details = []
    if error.errno is not None and f"[Errno {error.errno}]" not in message:
        details.append(f"errno {error.errno}")
    filename = error.filename
    if filename is not None and str(filename) not in message:
        details.append(f"address: {filename}")
    if details:
        return f"{message} ({', '.join(details)})"
    return message
