"""Phased workloads: piecewise-constant load shapes.

The scenario engine (:mod:`repro.scenarios`) describes load over time as
a sequence of :class:`LoadPhase` segments — each a constant rate over a
half-open window ``[start, end)`` — and the shape helpers below build the
common profiles from a handful of parameters:

* :func:`burst_phases` — a base rate with one high-rate spike window;
* :func:`ramp_phases` — a staircase from a starting to a final rate;
* :func:`diurnal_phases` — a discretized sinusoid around a base rate,
  modelling the day/night cycle of real client traffic.

:func:`spawn_phased_load` materializes the segments with the same client
machinery as constant load (:func:`repro.workload.generator.spawn_load`),
so the per-client 350 tx/s cap and the single-event submission path apply
unchanged.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence

from repro.errors import WorkloadError
from repro.network.simulator import Simulator
from repro.node.validator import ValidatorNode
from repro.types import SimTime
from repro.workload.generator import LoadGenerator, SubmitCallback, spawn_load


@dataclasses.dataclass(frozen=True)
class LoadPhase:
    """Constant ``tps`` over the virtual-time window ``[start, end)``."""

    start: SimTime
    end: SimTime
    tps: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise WorkloadError("a load phase cannot start before time zero")
        if self.end <= self.start:
            raise WorkloadError("a load phase must end after it starts")
        if self.tps < 0:
            raise WorkloadError("a load phase rate must be non-negative")

    @property
    def duration(self) -> SimTime:
        return self.end - self.start


def validate_phases(phases: Sequence[LoadPhase]) -> Sequence[LoadPhase]:
    """Check that ``phases`` are ordered and non-overlapping."""
    for earlier, later in zip(phases, phases[1:]):
        if later.start < earlier.end:
            raise WorkloadError(
                f"load phases overlap: [{earlier.start}, {earlier.end}) and "
                f"[{later.start}, {later.end})"
            )
    return phases


def average_tps(phases: Sequence[LoadPhase]) -> float:
    """Time-weighted average rate across ``phases`` (used for reporting)."""
    total_time = sum(phase.duration for phase in phases)
    if total_time <= 0:
        return 0.0
    return sum(phase.tps * phase.duration for phase in phases) / total_time


def burst_phases(
    base_tps: float,
    burst_tps: float,
    burst_start: SimTime,
    burst_end: SimTime,
    start: SimTime,
    end: SimTime,
) -> List[LoadPhase]:
    """A base rate with one spike window (the load-spike scenario)."""
    if not start <= burst_start < burst_end <= end:
        raise WorkloadError("the burst window must lie within the load window")
    phases: List[LoadPhase] = []
    if burst_start > start:
        phases.append(LoadPhase(start, burst_start, base_tps))
    phases.append(LoadPhase(burst_start, burst_end, burst_tps))
    if end > burst_end:
        phases.append(LoadPhase(burst_end, end, base_tps))
    return phases


def ramp_phases(
    start_tps: float,
    end_tps: float,
    steps: int,
    start: SimTime,
    end: SimTime,
) -> List[LoadPhase]:
    """A staircase of ``steps`` equal-width segments from one rate to another."""
    if steps < 1:
        raise WorkloadError("a ramp needs at least one step")
    if end <= start:
        raise WorkloadError("a ramp must end after it starts")
    width = (end - start) / steps
    phases = []
    for step in range(steps):
        fraction = step / (steps - 1) if steps > 1 else 1.0
        tps = start_tps + (end_tps - start_tps) * fraction
        phases.append(LoadPhase(start + step * width, start + (step + 1) * width, tps))
    return phases


def diurnal_phases(
    base_tps: float,
    amplitude: float,
    period: SimTime,
    steps: int,
    start: SimTime,
    end: SimTime,
) -> List[LoadPhase]:
    """A discretized sinusoid: ``base + amplitude * sin(2*pi*t/period)``.

    The rate of each segment samples the sinusoid at the segment midpoint
    and is clamped at zero, so ``amplitude > base_tps`` models quiet
    periods with no traffic at all.
    """
    if period <= 0:
        raise WorkloadError("the diurnal period must be positive")
    if steps < 1:
        raise WorkloadError("a diurnal profile needs at least one step")
    if end <= start:
        raise WorkloadError("a diurnal profile must end after it starts")
    width = (end - start) / steps
    phases = []
    for step in range(steps):
        midpoint = start + (step + 0.5) * width
        tps = base_tps + amplitude * math.sin(2.0 * math.pi * (midpoint - start) / period)
        phases.append(LoadPhase(start + step * width, start + (step + 1) * width, max(0.0, tps)))
    return phases


def spawn_phased_load(
    simulator: Simulator,
    targets: Sequence[ValidatorNode],
    phases: Sequence[LoadPhase],
    submission_delay: SimTime = 0.040,
    on_submit: Optional[SubmitCallback] = None,
) -> List[LoadGenerator]:
    """Create and start clients for every phase of a phased workload.

    Zero-rate phases are quiet windows: no clients are spawned for them.
    """
    validate_phases(phases)
    generators: List[LoadGenerator] = []
    for phase in phases:
        if phase.tps <= 0:
            continue
        generators.extend(
            spawn_load(
                simulator=simulator,
                targets=targets,
                total_rate=phase.tps,
                duration=phase.duration,
                start_time=phase.start,
                submission_delay=submission_delay,
                on_submit=on_submit,
                first_client_id=len(generators),
            )
        )
    return generators
