"""Fixed-rate load generators.

Each :class:`LoadGenerator` models one geo-distributed benchmark client:
it submits transactions at a constant rate to a set of target validators
(round-robin), adding the client-to-validator network delay before the
transaction enters the validator's pool.  Mirroring the paper, a single
client never submits more than ``MAX_RATE_PER_CLIENT`` transactions per
second; :func:`spawn_load` creates as many clients as needed for a target
system load.
"""

from __future__ import annotations

import itertools
from heapq import heappush as _heappush
from typing import Callable, List, Optional, Sequence

from repro.errors import WorkloadError
from repro.network.simulator import Simulator
from repro.node.validator import ValidatorNode
from repro.types import SimTime
from repro.workload.transactions import Transaction

# The paper: "each benchmark client submits at most 350 tx/s".
MAX_RATE_PER_CLIENT = 350.0

# Callback used to tell the metrics collector about a submission.
SubmitCallback = Callable[[Transaction], None]


# Process-wide transaction id source (module-level: the class-attribute
# lookup per transaction was measurable at peak load).
_next_tx_id = itertools.count()


class LoadGenerator:
    """One benchmark client submitting at a fixed rate."""

    # Back-compat alias; new code uses the module-level counter.
    _id_counter = _next_tx_id

    def __init__(
        self,
        client_id: int,
        simulator: Simulator,
        targets: Sequence[ValidatorNode],
        rate: float,
        duration: SimTime,
        start_time: SimTime = 0.0,
        submission_delay: SimTime = 0.040,
        on_submit: Optional[SubmitCallback] = None,
    ) -> None:
        if rate <= 0:
            raise WorkloadError("the submission rate must be positive")
        if rate > MAX_RATE_PER_CLIENT + 1e-9:
            raise WorkloadError(
                f"a single client submits at most {MAX_RATE_PER_CLIENT} tx/s; "
                "use spawn_load() to create several clients"
            )
        if not targets:
            raise WorkloadError("a load generator needs at least one target validator")
        if duration <= 0:
            raise WorkloadError("the load duration must be positive")
        self.client_id = client_id
        self.simulator = simulator
        self.targets = list(targets)
        self.rate = rate
        self.duration = duration
        self.start_time = start_time
        self.submission_delay = submission_delay
        self.on_submit = on_submit
        self.submitted = 0
        self._target_cycle = itertools.cycle(self.targets)
        # Submission-chain state, initialized by start().
        self._interval: SimTime = 0.0
        self._first_time: SimTime = start_time
        self._count = 0
        self._next_index = 0
        # Prebound callback and queue handle: ``self._deliver_next``
        # creates a fresh bound method object per access, once per
        # transaction at peak load.
        self._deliver_bound = self._deliver_next
        self._queue = simulator._queue

    def start(self) -> None:
        """Schedule the submission chain for the configured duration.

        Submissions are scheduled just-in-time (each one schedules its
        successor) instead of being pushed into the event queue up front: a
        peak-load sweep point would otherwise start with tens of thousands
        of pre-scheduled events, making every heap operation of the whole
        run pay the log of that bulk.  Submission instants are still
        computed by index rather than by accumulation so that
        floating-point drift never adds or drops a transaction.

        Each transaction costs a single simulator event: the event fires at
        the *arrival* instant (submit time plus the client-to-validator
        delay) and carries the precomputed submission timestamp, instead of
        a submit event that schedules a separate arrival event.  This
        halves the workload's share of the event queue.  Two observable
        consequences, both deliberate:

        * **Tie-break renumbering.** Event-queue ties are broken by
          scheduling sequence number.  With the pair merged, workload
          events obtain different sequence numbers than in the two-event
          scheme, so same-instant ties against protocol events may resolve
          differently than in older revisions.  Runs remain fully
          deterministic for a given configuration (gated by
          ``tests/unit/test_workload.py`` and the simulator determinism
          tests); only cross-revision bit-compatibility was given up.
        * **End-of-run accounting.** A transaction submitted within the
          final ``submission_delay`` of the run used to count as submitted
          even though it could never arrive; now neither half happens.
          Metrics treat such transactions as never-submitted instead of
          submitted-but-lost, which is the more honest reading.
        """
        interval = 1.0 / self.rate
        # Stagger clients slightly so submissions do not all land on the
        # same instant when many clients are created.
        offset = (self.client_id % 17) * interval / 17.0
        self._interval = interval
        self._first_time = self.start_time + offset
        self._count = int(round(self.rate * self.duration))
        self._next_index = 0
        if self._count > 0:
            self.simulator.schedule_at(
                self._first_time + self.submission_delay, self._deliver_next
            )

    def set_targets(self, targets: Sequence[ValidatorNode]) -> None:
        """Fail the client over to a new target set (partition failover).

        The round-robin cycle restarts at the head of the new set; no RNG
        is involved, so retargeting keeps runs deterministic.
        """
        if not targets:
            raise WorkloadError("a load generator needs at least one target validator")
        self.targets = list(targets)
        self._target_cycle = itertools.cycle(self.targets)

    def _deliver_next(self) -> None:
        """Deliver one transaction and schedule the next delivery.

        A bound method rather than per-transaction closures: this runs once
        per transaction at peak load, where the cost of materializing
        function objects per submission is measurable.  The transaction's
        ``submitted_at`` is the precomputed submission instant, not the
        (later) arrival instant at which this event fires.
        """
        index = self._next_index
        next_index = index + 1
        self._next_index = next_index
        first_time = self._first_time
        interval = self._interval
        if next_index < self._count:
            # Inlined ``schedule_at`` with a raw fire-and-forget entry:
            # one push per transaction at peak load, always in the future
            # by construction and never cancelled.
            queue = self._queue
            sequence = queue._next_sequence
            queue._next_sequence = sequence + 1
            _heappush(
                queue._heap,
                (
                    first_time + next_index * interval + self.submission_delay,
                    sequence,
                    None,
                    self._deliver_bound,
                    None,
                ),
            )
            queue._live += 1
        target = next(self._target_cycle)
        transaction = Transaction(
            next(_next_tx_id),
            self.client_id,
            first_time + index * interval,
            target.id,
        )
        self.submitted += 1
        on_submit = self.on_submit
        if on_submit is not None:
            on_submit(transaction)
        target.submit_transaction(transaction)


def spawn_load(
    simulator: Simulator,
    targets: Sequence[ValidatorNode],
    total_rate: float,
    duration: SimTime,
    start_time: SimTime = 0.0,
    submission_delay: SimTime = 0.040,
    on_submit: Optional[SubmitCallback] = None,
    first_client_id: int = 0,
) -> List[LoadGenerator]:
    """Create and start enough clients to reach ``total_rate`` tx/s.

    Clients are added in units of at most 350 tx/s, exactly like the
    paper's deployment selects the number of load generators.
    ``first_client_id`` offsets the client ids, so phased workloads (see
    :mod:`repro.workload.phases`) give every phase's clients distinct
    submission stagger offsets.
    """
    if total_rate <= 0:
        raise WorkloadError("the total load must be positive")
    generators: List[LoadGenerator] = []
    remaining = total_rate
    client_index = first_client_id
    while remaining > 1e-9:
        rate = min(MAX_RATE_PER_CLIENT, remaining)
        generator = LoadGenerator(
            client_id=client_index,
            simulator=simulator,
            targets=targets,
            rate=rate,
            duration=duration,
            start_time=start_time,
            submission_delay=submission_delay,
            on_submit=on_submit,
        )
        generator.start()
        generators.append(generator)
        remaining -= rate
        client_index += 1
    return generators
