"""Transactions submitted by benchmark clients.

The paper's benchmark transactions are "simple increments of a shared
counter"; what matters for the evaluation is their count and timing, not
their content, so the transaction object carries only identity, timing,
and a small payload descriptor.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.types import SimTime, ValidatorId


class Transaction(NamedTuple):
    """One client transaction.

    A ``NamedTuple`` rather than a frozen dataclass: transactions are
    created once per submission on the workload hot path, and tuple
    construction avoids the per-field ``object.__setattr__`` cost of
    frozen dataclasses.
    """

    tx_id: int
    client_id: int
    submitted_at: SimTime
    target_validator: ValidatorId
    kind: str = "counter_increment"
    payload_bytes: int = 64

    def canonical_fields(self):
        """Fields participating in content digests."""
        return (self.tx_id, self.client_id, self.kind, self.payload_bytes)


def counter_increment(
    tx_id: int,
    client_id: int,
    submitted_at: SimTime,
    target_validator: ValidatorId,
) -> Transaction:
    """Build the shared-counter increment transaction used by the paper."""
    return Transaction(
        tx_id=tx_id,
        client_id=client_id,
        submitted_at=submitted_at,
        target_validator=target_validator,
    )
