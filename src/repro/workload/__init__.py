"""Workload generation: clients submitting transactions at a fixed rate.

The paper's benchmark clients each submit at most 350 tx/s of simple
shared-counter increments for ten minutes; the number of clients depends
on the target load.  :class:`LoadGenerator` reproduces that behaviour in
virtual time and records submission timestamps with the metrics collector.
"""

from repro.workload.transactions import Transaction, counter_increment
from repro.workload.generator import LoadGenerator, spawn_load
from repro.workload.phases import (
    LoadPhase,
    average_tps,
    burst_phases,
    diurnal_phases,
    ramp_phases,
    spawn_phased_load,
)

__all__ = [
    "Transaction",
    "counter_increment",
    "LoadGenerator",
    "spawn_load",
    "LoadPhase",
    "average_tps",
    "burst_phases",
    "ramp_phases",
    "diurnal_phases",
    "spawn_phased_load",
]
