"""Partial synchrony: the GST + Delta network model of the paper.

Section 2.1 assumes a partially synchronous network: before an unknown
Global Stabilization Time (GST) the adversary controls message delivery
(subject to eventual delivery); after GST every message arrives within a
known bound Delta.  The simulator reproduces this with a
:class:`SynchronyModel` that post-processes the delay produced by the
latency model.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import NetworkError
from repro.types import SimTime


class SynchronyModel:
    """Interface: adjust a proposed delivery delay given the send time."""

    def adjust_delay(self, send_time: SimTime, proposed_delay: SimTime, rng: random.Random) -> SimTime:
        raise NotImplementedError


class AlwaysSynchronous(SynchronyModel):
    """A network that is synchronous from time zero (GST = 0)."""

    def __init__(self, delta: SimTime = 1.0) -> None:
        if delta <= 0:
            raise NetworkError("delta must be positive")
        self.delta = delta

    def adjust_delay(self, send_time: SimTime, proposed_delay: SimTime, rng: random.Random) -> SimTime:
        return min(proposed_delay, self.delta)


class PartialSynchrony(SynchronyModel):
    """GST + Delta partial synchrony with adversarial pre-GST delays.

    Before GST, every message may be delayed by an additional adversarial
    amount, up to ``max_asynchronous_delay`` but never beyond GST + Delta
    (messages sent before GST must arrive by GST + Delta, matching the
    model in Section 2.1).  After GST, delays are capped at Delta.
    """

    def __init__(
        self,
        gst: SimTime = 0.0,
        delta: SimTime = 1.0,
        max_asynchronous_delay: Optional[SimTime] = None,
        adversarial_probability: float = 1.0,
    ) -> None:
        if gst < 0:
            raise NetworkError("GST must be non-negative")
        if delta <= 0:
            raise NetworkError("delta must be positive")
        if not 0.0 <= adversarial_probability <= 1.0:
            raise NetworkError("adversarial_probability must lie in [0, 1]")
        self.gst = gst
        self.delta = delta
        self.max_asynchronous_delay = (
            max_asynchronous_delay if max_asynchronous_delay is not None else gst + delta
        )
        self.adversarial_probability = adversarial_probability

    def adjust_delay(self, send_time: SimTime, proposed_delay: SimTime, rng: random.Random) -> SimTime:
        if send_time >= self.gst:
            # Synchronous period: the bound Delta holds.
            return min(proposed_delay, self.delta)
        # Asynchronous period: the adversary may stretch delivery, but the
        # message must arrive by max(GST, send_time) + Delta.
        latest_allowed = max(self.gst, send_time) + self.delta
        delay = proposed_delay
        if rng.random() < self.adversarial_probability:
            delay += rng.uniform(0.0, self.max_asynchronous_delay)
        return min(delay, latest_allowed - send_time)
