"""The discrete-event simulator driving every experiment.

The simulator owns a virtual clock and an event queue.  Protocol code
never sleeps or reads wall-clock time; it schedules callbacks at virtual
times, which makes runs deterministic and allows a ten-minute benchmark to
execute in seconds of wall-clock time.
"""

from __future__ import annotations

import random
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.network.events import EventHandle, EventQueue
from repro.types import SimTime


class Simulator:
    """A deterministic discrete-event loop with a virtual clock."""

    def __init__(self, seed: int = 0) -> None:
        self._queue = EventQueue()
        self._now: SimTime = 0.0
        self._running = False
        self.rng = random.Random(seed)
        self.seed = seed
        self._events_fired = 0

    # -- clock --------------------------------------------------------------

    @property
    def now(self) -> SimTime:
        """Current virtual time, in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (useful for profiling)."""
        return self._events_fired

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: SimTime, callback: Callable[[], Any]) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay}s in the past")
        return self._push(self._now + delay, callback)

    def schedule_at(self, time: SimTime, callback: Callable[[], Any]) -> EventHandle:
        """Schedule ``callback`` to fire at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at {time}, the clock is already at {self._now}"
            )
        return self._push(time, callback)

    def _push(self, time: SimTime, callback: Callable[[], Any]) -> EventHandle:
        # Inlined EventQueue.push: scheduling happens once or twice per
        # event fired, so the extra call layer is measurable.
        if callback is None:
            raise SimulationError("cannot schedule a None callback")
        queue = self._queue
        sequence = queue._next_sequence
        queue._next_sequence = sequence + 1
        handle = EventHandle(time, sequence, callback)
        _heappush(queue._heap, (time, sequence, handle))
        queue._live += 1
        return handle

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously scheduled event."""
        if not handle.cancelled:
            handle.cancel()
            self._queue.note_cancelled()

    # -- execution ------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` when none remain."""
        next_time = self._queue.peek_time()
        if next_time is None:
            return False
        handle = self._queue.pop()
        self._now = handle.time
        callback = handle.callback
        handle.callback = None
        self._events_fired += 1
        if callback is not None:
            if handle.args is None:
                callback()
            else:
                callback(*handle.args)
        return True

    def run(self, until: Optional[SimTime] = None, max_events: Optional[int] = None) -> SimTime:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the clock value on exit.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fired earlier, which gives experiments a
        well-defined duration.
        """
        if self._running:
            raise SimulationError("the simulator is already running")
        self._running = True
        fired = 0
        # Infinity sentinels collapse the per-iteration ``is not None``
        # branches into plain float comparisons.
        limit = max_events if max_events is not None else float("inf")
        horizon = until if until is not None else float("inf")
        queue = self._queue
        # The loop below reaches into the queue's heap directly: this is
        # the single hottest path of every experiment (hundreds of
        # thousands of iterations per run) and the method-call overhead of
        # peek_time()/pop() is measurable there.  step() remains the
        # encapsulated one-event variant.
        heap = queue._heap
        heappop = _heappop
        # Counter writes are batched into locals and synced on exit; the
        # per-event attribute stores were measurable at peak event rates.
        popped = 0
        try:
            while fired < limit:
                if queue._cancelled > 0:
                    # Purge cancelled entries only while some exist; in
                    # steady state this whole branch is one counter read
                    # instead of a per-event heap-top inspection.  The
                    # counter is advisory (handles cancelled directly via
                    # handle.cancel() are caught by the fire-path guard
                    # below), so decrements are clamped at zero.
                    while heap:
                        stale = heap[0][2]
                        if stale is not None and stale.callback is None:
                            heappop(heap)
                            if queue._cancelled > 0:
                                queue._cancelled -= 1
                            continue
                        break
                if not heap:
                    break
                entry = heap[0]
                if entry[0] > horizon:
                    break
                heappop(heap)
                popped += 1
                handle = entry[2]
                if handle is None:
                    # Raw fire-and-forget entry (deliveries, workload).
                    self._now = entry[0]
                    args = entry[4]
                    if args is None:
                        entry[3]()
                    else:
                        entry[3](*args)
                    fired += 1
                    continue
                callback = handle.callback
                if callback is None:
                    # Cancelled directly via handle.cancel() without going
                    # through Simulator.cancel (no accounting hint).
                    continue
                self._now = entry[0]
                handle.callback = None
                args = handle.args
                if args is None:
                    callback()
                else:
                    callback(*args)
                fired += 1
        finally:
            self._running = False
            self._events_fired += fired
            queue._live -= popped
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_until_idle(self, max_time: SimTime = 1e9, max_events: int = 50_000_000) -> SimTime:
        """Run until no events remain, bounded by ``max_time`` and ``max_events``."""
        return self.run(until=max_time, max_events=max_events)
