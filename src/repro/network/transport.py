"""Message transport between simulated nodes.

The :class:`Network` routes opaque messages between registered nodes,
applying the latency model, the partial-synchrony model, per-node
processing delays (used to model degraded validators), and crash state
(crashed nodes neither send nor receive).  Point-to-point channels are
reliable and authenticated, matching the QUIC channels of the production
implementation: messages are never corrupted, reordering can only arise
from differing delays, and the sender identity attached to a delivery is
trustworthy.

Scenario hooks
--------------

Fault plans (see :mod:`repro.faults`) can additionally disturb the whole
fabric for bounded windows of virtual time:

* :meth:`Network.set_partition` splits the nodes into groups; messages
  crossing a group boundary are dropped until :meth:`clear_partition`.
* :meth:`Network.set_jitter` adds a uniformly random extra delay to every
  delivery (drawn from the simulator RNG, so runs stay deterministic).
* :meth:`Network.set_loss_rate` drops each message independently with the
  given probability.  The reliable-channel abstraction is restored by the
  synchronizer: missing vertices are re-fetched once the window closes.
"""

from __future__ import annotations

import dataclasses
from heapq import heappush as _heappush
from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from repro.errors import NetworkError
from repro.network.latency import GeoLatencyModel, LatencyModel, UniformLatencyModel
from repro.network.simulator import Simulator
from repro.network.synchrony import AlwaysSynchronous, SynchronyModel
from repro.obs.trace import NULL_TRACER, Tracer
from repro.types import Region, SimTime

# A delivery handler receives (sender_id, message).
DeliveryHandler = Callable[[int, Any], None]


@dataclasses.dataclass
class NetworkStats:
    """Counters describing network usage during a run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    broadcasts: int = 0
    partition_drops: int = 0
    loss_drops: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class _Endpoint:
    """Internal registration record of one node."""

    node_id: int
    region: Region
    handler: DeliveryHandler
    crashed: bool = False
    processing_delay: SimTime = 0.0
    inbound_extra_delay: SimTime = 0.0
    outbound_extra_delay: SimTime = 0.0


def _deliver_message(
    destination: _Endpoint, stats: NetworkStats, sender: int, message: Any
) -> None:
    """Fire one delivery (shared event callback, see ``_schedule_delivery``).

    Crash state is re-read at delivery time: a node that crashed while
    the message was in flight must not process it, and a node that
    recovered may.
    """
    if destination.crashed:
        stats.messages_dropped += 1
        return
    stats.messages_delivered += 1
    destination.handler(sender, message)


class Network:
    """Reliable, authenticated point-to-point channels between nodes."""

    # Observability (repro.obs).  The tracer is consulted only on the
    # rare paths (drops, partition/disturbance/crash transitions); the
    # common deliver path carries no tracing check at all.  ``_counters``
    # is a registry only when detailed per-type accounting is on.
    tracer: Tracer = NULL_TRACER
    _tracing = False
    _counters: Optional[Any] = None

    def __init__(
        self,
        simulator: Simulator,
        latency_model: Optional[LatencyModel] = None,
        synchrony: Optional[SynchronyModel] = None,
    ) -> None:
        self.simulator = simulator
        self.latency_model = latency_model if latency_model is not None else UniformLatencyModel()
        self.synchrony = synchrony if synchrony is not None else AlwaysSynchronous(delta=2.0)
        self.stats = NetworkStats()
        self._endpoints: Dict[int, _Endpoint] = {}
        # Scenario disturbances (see the module docstring).  Windows stack:
        # each active disturbance holds a token slot, the effective jitter
        # is the maximum over active windows and the effective loss rate
        # composes as independent drops, so overlapping windows never stomp
        # each other when one of them closes.
        self._partition_groups: Optional[Dict[int, int]] = None
        self._base_jitter: SimTime = 0.0
        self._base_loss_rate: float = 0.0
        self._disturbances: Dict[int, Tuple[SimTime, float]] = {}
        self._next_disturbance_token = 0
        self._jitter: SimTime = 0.0
        self._loss_rate: float = 0.0
        # Per-(sender, recipient) base delay memo for the geo fast path,
        # keyed by packed node-id pair.  Regions are fixed at
        # registration; the memo is dropped if the latency model object
        # is swapped out (tests do this).
        self._pair_base: Dict[int, SimTime] = {}
        self._pair_base_model: Optional[LatencyModel] = None

    def install_observability(self, tracer: Tracer, registry: Optional[Any] = None) -> None:
        """Attach a tracer (and optionally a counter registry).

        Faults read ``network.tracer`` at event time, so installing
        before ``run()`` is enough for window open/close events.
        """
        self.tracer = tracer
        self._tracing = tracer.enabled
        self._counters = registry

    # -- registration --------------------------------------------------------

    def register(self, node_id: int, region: Region, handler: DeliveryHandler) -> None:
        """Register a node so it can send and receive messages."""
        if node_id in self._endpoints:
            raise NetworkError(f"node {node_id} is already registered")
        self._endpoints[node_id] = _Endpoint(node_id=node_id, region=region, handler=handler)

    def is_registered(self, node_id: int) -> bool:
        return node_id in self._endpoints

    def _endpoint(self, node_id: int) -> _Endpoint:
        endpoint = self._endpoints.get(node_id)
        if endpoint is None:
            raise NetworkError(f"node {node_id} is not registered")
        return endpoint

    # -- fault control ---------------------------------------------------------

    def set_crashed(self, node_id: int, crashed: bool = True) -> None:
        """Crash (or recover) a node.  Crashed nodes drop all traffic."""
        self._endpoint(node_id).crashed = crashed
        if self._tracing:
            self.tracer.emit(
                "validator_crashed" if crashed else "validator_recovered",
                validator=node_id,
            )

    def is_crashed(self, node_id: int) -> bool:
        return self._endpoint(node_id).crashed

    def set_processing_delay(self, node_id: int, delay: SimTime) -> None:
        """Add a fixed processing delay before the node handles any message."""
        if delay < 0:
            raise NetworkError("processing delay must be non-negative")
        self._endpoint(node_id).processing_delay = delay

    def set_link_degradation(
        self,
        node_id: int,
        inbound_extra: SimTime = 0.0,
        outbound_extra: SimTime = 0.0,
    ) -> None:
        """Degrade the links of a node (models a slow or overloaded validator)."""
        if inbound_extra < 0 or outbound_extra < 0:
            raise NetworkError("link degradation must be non-negative")
        endpoint = self._endpoint(node_id)
        endpoint.inbound_extra_delay = inbound_extra
        endpoint.outbound_extra_delay = outbound_extra

    def set_partition(self, groups: Iterable[Iterable[int]]) -> None:
        """Partition the network into ``groups`` of nodes.

        While a partition is active, messages between nodes of different
        groups are dropped.  Nodes not listed in any group form one
        implicit extra group together (they can still talk to each other,
        but to nobody else).  A later call replaces the previous
        partition wholesale.
        """
        mapping: Dict[int, int] = {}
        for index, group in enumerate(groups):
            for node_id in group:
                if node_id in mapping:
                    raise NetworkError(f"node {node_id} appears in two partition groups")
                mapping[node_id] = index
        self._partition_groups = mapping
        if self._tracing:
            indices = sorted(set(mapping.values()))
            self.tracer.emit(
                "partition_set",
                groups=[
                    sorted(n for n, g in mapping.items() if g == index) for index in indices
                ],
            )

    def clear_partition(self) -> None:
        """Heal any active partition."""
        self._partition_groups = None
        if self._tracing:
            self.tracer.emit("partition_cleared")

    @property
    def partitioned(self) -> bool:
        return self._partition_groups is not None

    def set_jitter(self, amplitude: SimTime) -> None:
        """Add up to ``amplitude`` seconds of random delay to every delivery."""
        if amplitude < 0:
            raise NetworkError("jitter amplitude must be non-negative")
        self._base_jitter = amplitude
        self._recompute_disturbance()

    def set_loss_rate(self, rate: float) -> None:
        """Drop each message independently with probability ``rate``."""
        if not 0.0 <= rate < 1.0:
            raise NetworkError("the loss rate must lie in [0, 1)")
        self._base_loss_rate = rate
        self._recompute_disturbance()

    def add_disturbance(self, jitter: SimTime = 0.0, loss_rate: float = 0.0) -> int:
        """Open a disturbance window; returns a token for its removal.

        Windows compose instead of overwriting each other: the effective
        jitter is the maximum over active windows (and the base knob), and
        losses combine as independent drop probabilities.
        """
        if jitter < 0:
            raise NetworkError("jitter amplitude must be non-negative")
        if not 0.0 <= loss_rate < 1.0:
            raise NetworkError("the loss rate must lie in [0, 1)")
        token = self._next_disturbance_token
        self._next_disturbance_token += 1
        self._disturbances[token] = (jitter, loss_rate)
        self._recompute_disturbance()
        if self._tracing:
            self.tracer.emit(
                "disturbance_open", token=token, jitter=jitter, loss_rate=loss_rate
            )
        return token

    def remove_disturbance(self, token: int) -> None:
        """Close the disturbance window identified by ``token``."""
        removed = self._disturbances.pop(token, None)
        self._recompute_disturbance()
        if self._tracing and removed is not None:
            self.tracer.emit("disturbance_close", token=token)

    def _recompute_disturbance(self) -> None:
        jitter = self._base_jitter
        keep = 1.0 - self._base_loss_rate
        # Float multiplication is not associative: fold the windows in
        # token order so the composed loss rate cannot depend on dict
        # iteration order (tokens ascend, so this matches insertion).
        for _token, (window_jitter, window_loss) in sorted(self._disturbances.items()):
            if window_jitter > jitter:
                jitter = window_jitter
            keep *= 1.0 - window_loss
        self._jitter = jitter
        self._loss_rate = 1.0 - keep

    def _crosses_partition(self, sender: int, recipient: int) -> bool:
        groups = self._partition_groups
        if groups is None or sender == recipient:
            return False
        # Unlisted nodes share the implicit group -1.
        return groups.get(sender, -1) != groups.get(recipient, -1)

    # -- sending ---------------------------------------------------------------

    def send(self, sender: int, recipient: int, message: Any) -> None:
        """Send ``message`` from ``sender`` to ``recipient``.

        Sending from a crashed node, or to an unregistered node, silently
        drops the message (and counts it), matching how a crashed process
        behaves in the real system.
        """
        endpoints = self._endpoints
        source = endpoints.get(sender)
        if source is None:
            raise NetworkError(f"node {sender} is not registered")
        destination = endpoints.get(recipient)
        if destination is None:
            raise NetworkError(f"recipient {recipient} is not registered")
        stats = self.stats
        stats.messages_sent += 1
        if self._counters is not None:
            self._counters.count_message(message)
        if source.crashed:
            stats.messages_dropped += 1
            if self._tracing:
                self._trace_drop(sender, recipient, message, "sender_crashed")
            return
        if self._partition_groups is not None and self._crosses_partition(sender, recipient):
            stats.messages_dropped += 1
            stats.partition_drops += 1
            if self._tracing:
                self._trace_drop(sender, recipient, message, "partition")
            return
        if (
            self._loss_rate > 0.0
            and sender != recipient
            and self.simulator.rng.random() < self._loss_rate
        ):
            stats.messages_dropped += 1
            stats.loss_drops += 1
            if self._tracing:
                self._trace_drop(sender, recipient, message, "loss")
            return
        delay = self._delivery_delay(source, destination)
        self._schedule_delivery(source.node_id, destination, message, delay)

    def _trace_drop(self, sender: int, recipient: int, message: Any, reason: str) -> None:
        fields: Dict[str, Any] = {
            "sender": sender,
            "destination": recipient,
            "type": type(message).__name__,
            "reason": reason,
        }
        if reason == "loss" and self._disturbances:
            # The loss-window id responsible for the drop.  Windows
            # compose, so the drop is attributed to the newest open one
            # (tokens ascend in open order) — enough for `repro.obs
            # explain` to tie a dropped certificate back to its fault
            # window.
            fields["window"] = max(self._disturbances)
        origin = getattr(message, "origin", None)
        if origin is not None:
            # Broadcast-layer envelopes identify the broadcast they carry;
            # recovery analysis joins drops to later deliveries on this.
            fields["origin"] = origin
            fields["round"] = message.round
        self.tracer.emit("message_dropped", **fields)

    def _schedule_delivery(
        self, sender: int, destination: _Endpoint, message: Any, delay: SimTime
    ) -> None:
        # Scheduling bypasses ``schedule_at``'s past-time guard (the delay
        # is clamped non-negative), inlines the queue push, and carries
        # the delivery arguments on the event instead of materializing a
        # closure; this path runs once per message and both the call
        # layers and the per-message closure were measurable.
        simulator = self.simulator
        queue = simulator._queue
        sequence = queue._next_sequence
        queue._next_sequence = sequence + 1
        _heappush(
            queue._heap,
            (
                simulator._now + delay,
                sequence,
                None,
                _deliver_message,
                (destination, self.stats, sender, message),
            ),
        )
        queue._live += 1

    def broadcast(self, sender: int, message: Any, include_self: bool = True) -> None:
        """Send ``message`` from ``sender`` to every registered node.

        This is the certificate/proposal fan-out path: one call issues
        ``n`` sends, so the per-recipient work is inlined (the sender-side
        checks are hoisted out of the loop).  Recipient order, RNG draw
        order, and all statistics counters are identical to looping over
        :meth:`send` — batched envelopes change what a send carries, never
        how many sends happen or when.
        """
        stats = self.stats
        stats.broadcasts += 1
        endpoints = self._endpoints
        source = endpoints.get(sender)
        if source is None:
            raise NetworkError(f"node {sender} is not registered")
        recipients = len(endpoints) - (0 if include_self else 1)
        stats.messages_sent += recipients
        if self._counters is not None:
            self._counters.count_message(message, recipients)
        if source.crashed:
            stats.messages_dropped += recipients
            if self._tracing:
                self._trace_drop(sender, -1, message, "sender_crashed")
            return
        groups = self._partition_groups
        loss_rate = self._loss_rate
        rng = self.simulator.rng
        delivery_delay = self._delivery_delay
        schedule_delivery = self._schedule_delivery
        tracing = self._tracing
        for destination in endpoints.values():
            node_id = destination.node_id
            if node_id == sender and not include_self:
                continue
            if (
                groups is not None
                and node_id != sender
                and groups.get(sender, -1) != groups.get(node_id, -1)
            ):
                stats.messages_dropped += 1
                stats.partition_drops += 1
                if tracing:
                    self._trace_drop(sender, node_id, message, "partition")
                continue
            if loss_rate > 0.0 and node_id != sender and rng.random() < loss_rate:
                stats.messages_dropped += 1
                stats.loss_drops += 1
                if tracing:
                    self._trace_drop(sender, node_id, message, "loss")
                continue
            schedule_delivery(sender, destination, message, delivery_delay(source, destination))

    def scatter(self, sender: int, envelopes: Iterable[Tuple[int, Any]]) -> None:
        """Fan per-recipient envelopes out in one broadcast-shaped call.

        The certificate-piggyback path: each recipient gets its own
        envelope (the proposal plus the certificate delta selected for
        that peer), but the call is accounted and scheduled exactly like
        :meth:`broadcast` — one ``broadcasts`` tick, ``len(envelopes)``
        sends, and the same per-recipient partition/loss/delay logic in
        the same order.  Callers must list every registered node exactly
        once, in registration order (ascending ids, the committee order);
        then the RNG draw sequence, the event sequence, and every
        :class:`NetworkStats` counter are byte-identical to broadcasting
        one message to the full committee — only the envelope contents
        differ per recipient.
        """
        stats = self.stats
        stats.broadcasts += 1
        endpoints = self._endpoints
        source = endpoints.get(sender)
        if source is None:
            raise NetworkError(f"node {sender} is not registered")
        envelopes = tuple(envelopes)
        stats.messages_sent += len(envelopes)
        if self._counters is not None:
            for _recipient, message in envelopes:
                self._counters.count_message(message)
        if source.crashed:
            stats.messages_dropped += len(envelopes)
            if self._tracing and envelopes:
                self._trace_drop(sender, -1, envelopes[0][1], "sender_crashed")
            return
        groups = self._partition_groups
        loss_rate = self._loss_rate
        rng = self.simulator.rng
        delivery_delay = self._delivery_delay
        schedule_delivery = self._schedule_delivery
        tracing = self._tracing
        for recipient, message in envelopes:
            destination = endpoints.get(recipient)
            if destination is None:
                raise NetworkError(f"recipient {recipient} is not registered")
            if (
                groups is not None
                and recipient != sender
                and groups.get(sender, -1) != groups.get(recipient, -1)
            ):
                stats.messages_dropped += 1
                stats.partition_drops += 1
                if tracing:
                    self._trace_drop(sender, recipient, message, "partition")
                continue
            if loss_rate > 0.0 and recipient != sender and rng.random() < loss_rate:
                stats.messages_dropped += 1
                stats.loss_drops += 1
                if tracing:
                    self._trace_drop(sender, recipient, message, "loss")
                continue
            schedule_delivery(sender, destination, message, delivery_delay(source, destination))

    def multicast(self, sender: int, recipients: Iterable[int], message: Any) -> None:
        """Send ``message`` from ``sender`` to each node in ``recipients``."""
        for recipient in recipients:
            self.send(sender, recipient, message)

    # -- delay computation -------------------------------------------------------

    def _delivery_delay(self, source: _Endpoint, destination: _Endpoint) -> SimTime:
        rng = self.simulator.rng
        model = self.latency_model
        if source.node_id == destination.node_id:
            base = model.local_delay(rng)
        elif type(model) is GeoLatencyModel:
            # Inlined GeoLatencyModel.one_way_delay (the default model;
            # one call per message sent): base memoized per node pair,
            # optional extras, and the uniform jitter expanded to its
            # bit-identical ``-j + 2j * random()`` form.
            if model is not self._pair_base_model:
                self._pair_base.clear()
                self._pair_base_model = model
            key = (source.node_id << 20) | destination.node_id
            base = self._pair_base.get(key)
            if base is None:
                base = model.base_delay(source.region, destination.region)
                self._pair_base[key] = base
            extra = model.extra_latency
            if extra:
                base += extra.get(source.region.name, 0.0)
                base += extra.get(destination.region.name, 0.0)
            jitter = base * model.jitter_fraction
            base += jitter * 2.0 * rng.random() - jitter
            if base < 0.0002:
                base = 0.0002
        else:
            base = model.one_way_delay(source.region, destination.region, rng)
        base += source.outbound_extra_delay + destination.inbound_extra_delay
        base += destination.processing_delay
        if self._jitter > 0.0 and source.node_id != destination.node_id:
            base += rng.uniform(0.0, self._jitter)
        synchrony = self.synchrony
        if type(synchrony) is AlwaysSynchronous:
            # Inlined AlwaysSynchronous.adjust_delay: this runs once per
            # message and the default model is a pure min() with no RNG.
            adjusted = base if base < synchrony.delta else synchrony.delta
        else:
            adjusted = synchrony.adjust_delay(self.simulator.now, base, rng)
        return adjusted if adjusted > 0.0 else 0.0

    # -- introspection --------------------------------------------------------------

    @property
    def node_ids(self) -> Iterable[int]:
        # Endpoints register in committee order (ascending ids), so the
        # sort is the identity today; it pins the contract regardless.
        return tuple(sorted(self._endpoints))

    def region_of(self, node_id: int) -> Region:
        return self._endpoint(node_id).region
