"""Message transport between simulated nodes.

The :class:`Network` routes opaque messages between registered nodes,
applying the latency model, the partial-synchrony model, per-node
processing delays (used to model degraded validators), and crash state
(crashed nodes neither send nor receive).  Point-to-point channels are
reliable and authenticated, matching the QUIC channels of the production
implementation: messages are never corrupted, reordering can only arise
from differing delays, and the sender identity attached to a delivery is
trustworthy.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Iterable, Optional

from repro.errors import NetworkError
from repro.network.latency import LatencyModel, UniformLatencyModel
from repro.network.simulator import Simulator
from repro.network.synchrony import AlwaysSynchronous, SynchronyModel
from repro.types import Region, SimTime

# A delivery handler receives (sender_id, message).
DeliveryHandler = Callable[[int, Any], None]


@dataclasses.dataclass
class NetworkStats:
    """Counters describing network usage during a run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    broadcasts: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class _Endpoint:
    """Internal registration record of one node."""

    node_id: int
    region: Region
    handler: DeliveryHandler
    crashed: bool = False
    processing_delay: SimTime = 0.0
    inbound_extra_delay: SimTime = 0.0
    outbound_extra_delay: SimTime = 0.0


class Network:
    """Reliable, authenticated point-to-point channels between nodes."""

    def __init__(
        self,
        simulator: Simulator,
        latency_model: Optional[LatencyModel] = None,
        synchrony: Optional[SynchronyModel] = None,
    ) -> None:
        self.simulator = simulator
        self.latency_model = latency_model if latency_model is not None else UniformLatencyModel()
        self.synchrony = synchrony if synchrony is not None else AlwaysSynchronous(delta=2.0)
        self.stats = NetworkStats()
        self._endpoints: Dict[int, _Endpoint] = {}

    # -- registration --------------------------------------------------------

    def register(self, node_id: int, region: Region, handler: DeliveryHandler) -> None:
        """Register a node so it can send and receive messages."""
        if node_id in self._endpoints:
            raise NetworkError(f"node {node_id} is already registered")
        self._endpoints[node_id] = _Endpoint(node_id=node_id, region=region, handler=handler)

    def is_registered(self, node_id: int) -> bool:
        return node_id in self._endpoints

    def _endpoint(self, node_id: int) -> _Endpoint:
        endpoint = self._endpoints.get(node_id)
        if endpoint is None:
            raise NetworkError(f"node {node_id} is not registered")
        return endpoint

    # -- fault control ---------------------------------------------------------

    def set_crashed(self, node_id: int, crashed: bool = True) -> None:
        """Crash (or recover) a node.  Crashed nodes drop all traffic."""
        self._endpoint(node_id).crashed = crashed

    def is_crashed(self, node_id: int) -> bool:
        return self._endpoint(node_id).crashed

    def set_processing_delay(self, node_id: int, delay: SimTime) -> None:
        """Add a fixed processing delay before the node handles any message."""
        if delay < 0:
            raise NetworkError("processing delay must be non-negative")
        self._endpoint(node_id).processing_delay = delay

    def set_link_degradation(
        self,
        node_id: int,
        inbound_extra: SimTime = 0.0,
        outbound_extra: SimTime = 0.0,
    ) -> None:
        """Degrade the links of a node (models a slow or overloaded validator)."""
        if inbound_extra < 0 or outbound_extra < 0:
            raise NetworkError("link degradation must be non-negative")
        endpoint = self._endpoint(node_id)
        endpoint.inbound_extra_delay = inbound_extra
        endpoint.outbound_extra_delay = outbound_extra

    # -- sending ---------------------------------------------------------------

    def send(self, sender: int, recipient: int, message: Any) -> None:
        """Send ``message`` from ``sender`` to ``recipient``.

        Sending from a crashed node, or to an unregistered node, silently
        drops the message (and counts it), matching how a crashed process
        behaves in the real system.
        """
        source = self._endpoint(sender)
        if recipient not in self._endpoints:
            raise NetworkError(f"recipient {recipient} is not registered")
        self.stats.messages_sent += 1
        if source.crashed:
            self.stats.messages_dropped += 1
            return
        destination = self._endpoints[recipient]
        delay = self._delivery_delay(source, destination)
        send_time = self.simulator.now

        def deliver() -> None:
            # Re-read crash state at delivery time: a node that crashed
            # while the message was in flight must not process it, and a
            # node that recovered may.
            if destination.crashed:
                self.stats.messages_dropped += 1
                return
            self.stats.messages_delivered += 1
            destination.handler(sender, message)

        self.simulator.schedule_at(send_time + delay, deliver)

    def broadcast(self, sender: int, message: Any, include_self: bool = True) -> None:
        """Send ``message`` from ``sender`` to every registered node."""
        self.stats.broadcasts += 1
        for node_id in self._endpoints:
            if node_id == sender and not include_self:
                continue
            self.send(sender, node_id, message)

    def multicast(self, sender: int, recipients: Iterable[int], message: Any) -> None:
        """Send ``message`` from ``sender`` to each node in ``recipients``."""
        for recipient in recipients:
            self.send(sender, recipient, message)

    # -- delay computation -------------------------------------------------------

    def _delivery_delay(self, source: _Endpoint, destination: _Endpoint) -> SimTime:
        rng = self.simulator.rng
        if source.node_id == destination.node_id:
            base = self.latency_model.local_delay(rng)
        else:
            base = self.latency_model.one_way_delay(source.region, destination.region, rng)
        base += source.outbound_extra_delay + destination.inbound_extra_delay
        base += destination.processing_delay
        adjusted = self.synchrony.adjust_delay(self.simulator.now, base, rng)
        return max(0.0, adjusted)

    # -- introspection --------------------------------------------------------------

    @property
    def node_ids(self) -> Iterable[int]:
        return tuple(self._endpoints)

    def region_of(self, node_id: int) -> Region:
        return self._endpoint(node_id).region
