"""Event queue for the discrete-event simulator.

Events are ordered by their firing time; ties are broken by a strictly
increasing sequence number so that two events scheduled for the same
instant fire in scheduling order.  That property makes every simulation
fully deterministic for a fixed seed.

The heap stores plain ``(time, sequence, handle)`` tuples rather than the
handles themselves: tuple comparison short-circuits on the two primitive
fields in C, which keeps the comparison cost out of the Python interpreter.
The event loop is the single hottest path of every experiment (millions of
pushes and pops per run), so this representation is worth the small
indirection.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.types import SimTime


class EventHandle:
    """A handle returned by scheduling, usable for cancellation.

    ``args``, when set, is passed to the callback at fire time.  The
    message-delivery path uses this to schedule a shared module-level
    function with an argument tuple instead of materializing a closure
    per message (hundreds of thousands per run).
    """

    __slots__ = ("time", "sequence", "callback", "args")

    def __init__(
        self,
        time: SimTime,
        sequence: int,
        callback: Optional[Callable[..., Any]],
        args: Optional[Tuple[Any, ...]] = None,
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args

    @property
    def cancelled(self) -> bool:
        return self.callback is None

    def cancel(self) -> None:
        """Cancel the event.  Cancelling twice is harmless."""
        self.callback = None

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "cancelled" if self.callback is None else "live"
        return f"EventHandle(t={self.time}, seq={self.sequence}, {state})"


# One heap entry, in one of two shapes.  ``time`` and ``sequence`` drive
# the ordering; the third element is never compared (sequences are
# unique).
#
# * ``(time, sequence, handle)`` — a cancellable event carrying an
#   :class:`EventHandle`.
# * ``(time, sequence, None, callback, args)`` — a raw fire-and-forget
#   event (message deliveries, workload submissions).  These are never
#   cancelled, so the handle allocation is skipped entirely; ``args`` is
#   ``None`` or a tuple passed to ``callback``.
#
# The raw-entry protocol is deliberately inlined at every site (a shared
# push helper would reintroduce the per-event call the shape exists to
# avoid).  If the entry shape or the ``_live``/``_cancelled`` accounting
# changes, update ALL of: producers ``EventQueue.push``,
# ``Network._schedule_delivery`` (transport.py), and
# ``LoadGenerator._deliver_next`` (workload/generator.py); consumers
# ``EventQueue.pop``/``peek_time`` and ``Simulator.run``/``step``.
_Entry = Tuple[SimTime, int, Optional[EventHandle]]


class EventQueue:
    """A priority queue of :class:`EventHandle` objects."""

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self._next_sequence = 0
        self._live = 0
        # Cancelled handles still sitting in the heap.  The run loop only
        # pays the cancelled-entry scan while this is non-zero.
        self._cancelled = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: SimTime, callback: Callable[[], Any]) -> EventHandle:
        """Schedule ``callback`` to fire at ``time``."""
        if callback is None:
            raise SimulationError("cannot schedule a None callback")
        sequence = self._next_sequence
        self._next_sequence = sequence + 1
        handle = EventHandle(time, sequence, callback)
        heapq.heappush(self._heap, (time, sequence, handle))
        self._live += 1
        return handle

    def pop(self) -> EventHandle:
        """Pop the earliest non-cancelled event.

        Raises :class:`SimulationError` when the queue holds no live event.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            handle = entry[2]
            if handle is None:
                # Raw fire-and-forget entry: wrap it for the caller.
                self._live -= 1
                return EventHandle(entry[0], entry[1], entry[3], entry[4])
            if handle.callback is None:
                # Clamped: a handle cancelled via handle.cancel() directly
                # (bypassing Simulator.cancel) never incremented the
                # counter, and a negative value would permanently enable
                # the run loop's purge branch.
                if self._cancelled > 0:
                    self._cancelled -= 1
                continue
            self._live -= 1
            return handle
        raise SimulationError("the event queue is empty")

    def peek_time(self) -> Optional[SimTime]:
        """Return the firing time of the next live event, or ``None``."""
        heap = self._heap
        while heap:
            handle = heap[0][2]
            if handle is not None and handle.callback is None:
                heapq.heappop(heap)
                if self._cancelled > 0:
                    self._cancelled -= 1
                continue
            break
        if not heap:
            return None
        return heap[0][0]

    def note_cancelled(self) -> None:
        """Record that one previously live event was cancelled externally."""
        if self._live > 0:
            self._live -= 1
        self._cancelled += 1
