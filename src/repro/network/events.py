"""Event queue for the discrete-event simulator.

Events are ordered by their firing time; ties are broken by a strictly
increasing sequence number so that two events scheduled for the same
instant fire in scheduling order.  That property makes every simulation
fully deterministic for a fixed seed.

The heap stores plain ``(time, sequence, handle)`` tuples rather than the
handles themselves: tuple comparison short-circuits on the two primitive
fields in C, which keeps the comparison cost out of the Python interpreter.
The event loop is the single hottest path of every experiment (millions of
pushes and pops per run), so this representation is worth the small
indirection.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.types import SimTime


class EventHandle:
    """A handle returned by scheduling, usable for cancellation."""

    __slots__ = ("time", "sequence", "callback")

    def __init__(self, time: SimTime, sequence: int, callback: Optional[Callable[[], Any]]) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback

    @property
    def cancelled(self) -> bool:
        return self.callback is None

    def cancel(self) -> None:
        """Cancel the event.  Cancelling twice is harmless."""
        self.callback = None

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "cancelled" if self.callback is None else "live"
        return f"EventHandle(t={self.time}, seq={self.sequence}, {state})"


# One heap entry: (time, sequence, handle).  ``time`` and ``sequence``
# drive the ordering; the handle itself is never compared.
_Entry = Tuple[SimTime, int, EventHandle]


class EventQueue:
    """A priority queue of :class:`EventHandle` objects."""

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self._next_sequence = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: SimTime, callback: Callable[[], Any]) -> EventHandle:
        """Schedule ``callback`` to fire at ``time``."""
        if callback is None:
            raise SimulationError("cannot schedule a None callback")
        sequence = self._next_sequence
        self._next_sequence = sequence + 1
        handle = EventHandle(time, sequence, callback)
        heapq.heappush(self._heap, (time, sequence, handle))
        self._live += 1
        return handle

    def pop(self) -> EventHandle:
        """Pop the earliest non-cancelled event.

        Raises :class:`SimulationError` when the queue holds no live event.
        """
        heap = self._heap
        while heap:
            handle = heapq.heappop(heap)[2]
            if handle.callback is None:
                continue
            self._live -= 1
            return handle
        raise SimulationError("the event queue is empty")

    def peek_time(self) -> Optional[SimTime]:
        """Return the firing time of the next live event, or ``None``."""
        heap = self._heap
        while heap and heap[0][2].callback is None:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def note_cancelled(self) -> None:
        """Record that one previously live event was cancelled externally."""
        if self._live > 0:
            self._live -= 1
