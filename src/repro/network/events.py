"""Event queue for the discrete-event simulator.

Events are ordered by their firing time; ties are broken by a strictly
increasing sequence number so that two events scheduled for the same
instant fire in scheduling order.  That property makes every simulation
fully deterministic for a fixed seed.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError
from repro.types import SimTime


@dataclasses.dataclass
class EventHandle:
    """A handle returned by scheduling, usable for cancellation."""

    time: SimTime
    sequence: int
    callback: Optional[Callable[[], Any]]

    @property
    def cancelled(self) -> bool:
        return self.callback is None

    def cancel(self) -> None:
        """Cancel the event.  Cancelling twice is harmless."""
        self.callback = None


class EventQueue:
    """A priority queue of :class:`EventHandle` objects."""

    def __init__(self) -> None:
        self._heap: List[EventHandle] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: SimTime, callback: Callable[[], Any]) -> EventHandle:
        """Schedule ``callback`` to fire at ``time``."""
        if callback is None:
            raise SimulationError("cannot schedule a None callback")
        handle = EventHandle(time=time, sequence=next(self._counter), callback=callback)
        heapq.heappush(self._heap, handle)
        self._live += 1
        return handle

    def pop(self) -> EventHandle:
        """Pop the earliest non-cancelled event.

        Raises :class:`SimulationError` when the queue holds no live event.
        """
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._live -= 1
            return handle
        raise SimulationError("the event queue is empty")

    def peek_time(self) -> Optional[SimTime]:
        """Return the firing time of the next live event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def note_cancelled(self) -> None:
        """Record that one previously live event was cancelled externally."""
        if self._live > 0:
            self._live -= 1


# EventHandle ordering: heapq compares tuples of dataclass fields in order,
# so (time, sequence) drive the ordering; ``callback`` must never be
# compared.  Implement explicit comparisons to keep that guarantee even if
# two events share time and sequence is exhausted (it cannot be, but the
# explicit methods also make intent clear).
def _handle_lt(self: EventHandle, other: EventHandle) -> bool:
    return (self.time, self.sequence) < (other.time, other.sequence)


EventHandle.__lt__ = _handle_lt  # type: ignore[assignment]
