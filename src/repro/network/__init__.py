"""Discrete-event network simulation substrate.

The paper evaluates HammerHead on a geo-distributed AWS testbed.  This
package replaces that testbed with a deterministic discrete-event
simulator: a virtual clock, an event queue, a latency model derived from
representative inter-region round-trip times, and a partial-synchrony
model (GST + Delta) matching the paper's network assumptions.
"""

from repro.network.events import EventHandle, EventQueue
from repro.network.latency import GeoLatencyModel, LatencyModel, UniformLatencyModel
from repro.network.simulator import Simulator
from repro.network.synchrony import AlwaysSynchronous, PartialSynchrony, SynchronyModel
from repro.network.transport import Network, NetworkStats

__all__ = [
    "EventHandle",
    "EventQueue",
    "Simulator",
    "LatencyModel",
    "GeoLatencyModel",
    "UniformLatencyModel",
    "SynchronyModel",
    "AlwaysSynchronous",
    "PartialSynchrony",
    "Network",
    "NetworkStats",
]
