"""Latency models for the simulated network.

The paper deploys validators over thirteen AWS regions; the dominant
performance effect of that topology is the wide spread of inter-region
round-trip times (a few milliseconds inside Europe, ~300 ms between
Europe and the Asia-Pacific regions).  :class:`GeoLatencyModel` encodes
representative one-way delays between those regions.  The numbers are
approximations of publicly reported inter-region RTTs; their exact values
do not matter for the reproduction, only their spread, which is what makes
"remote" leaders slower than well-connected ones (Section 5, claim C1).
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import NetworkError
from repro.types import Region, SimTime

# Approximate one-way latencies (seconds) between region groups.  Regions
# are clustered into coarse geographic areas; latency between two regions
# is looked up by area pair and perturbed per region pair so that no two
# links are exactly identical.
_AREA_OF_REGION: Dict[str, str] = {
    "us-east-1": "us-east",
    "us-west-2": "us-west",
    "ca-central-1": "us-east",
    "eu-central-1": "eu",
    "eu-west-1": "eu",
    "eu-west-2": "eu",
    "eu-west-3": "eu",
    "eu-north-1": "eu",
    "ap-south-1": "ap-south",
    "ap-southeast-1": "ap-se",
    "ap-southeast-2": "ap-au",
    "ap-northeast-1": "ap-ne",
    "ap-northeast-2": "ap-ne",
}

# One-way base latency in seconds between geographic areas.
_AREA_LATENCY: Dict[Tuple[str, str], float] = {
    ("us-east", "us-east"): 0.004,
    ("us-east", "us-west"): 0.032,
    ("us-east", "eu"): 0.042,
    ("us-east", "ap-south"): 0.095,
    ("us-east", "ap-se"): 0.105,
    ("us-east", "ap-au"): 0.100,
    ("us-east", "ap-ne"): 0.080,
    ("us-west", "us-west"): 0.003,
    ("us-west", "eu"): 0.070,
    ("us-west", "ap-south"): 0.110,
    ("us-west", "ap-se"): 0.085,
    ("us-west", "ap-au"): 0.070,
    ("us-west", "ap-ne"): 0.055,
    ("eu", "eu"): 0.010,
    ("eu", "ap-south"): 0.060,
    ("eu", "ap-se"): 0.085,
    ("eu", "ap-au"): 0.140,
    ("eu", "ap-ne"): 0.115,
    ("ap-south", "ap-south"): 0.003,
    ("ap-south", "ap-se"): 0.030,
    ("ap-south", "ap-au"): 0.075,
    ("ap-south", "ap-ne"): 0.065,
    ("ap-se", "ap-se"): 0.003,
    ("ap-se", "ap-au"): 0.048,
    ("ap-se", "ap-ne"): 0.035,
    ("ap-au", "ap-au"): 0.003,
    ("ap-au", "ap-ne"): 0.055,
    ("ap-ne", "ap-ne"): 0.005,
}


def _area_pair_latency(area_a: str, area_b: str) -> float:
    key = (area_a, area_b)
    if key in _AREA_LATENCY:
        return _AREA_LATENCY[key]
    key = (area_b, area_a)
    if key in _AREA_LATENCY:
        return _AREA_LATENCY[key]
    raise NetworkError(f"no latency information between areas {area_a} and {area_b}")


class LatencyModel:
    """Interface of latency models: one-way delay between two regions."""

    def one_way_delay(
        self,
        sender_region: Region,
        recipient_region: Region,
        rng: random.Random,
    ) -> SimTime:
        raise NotImplementedError

    def local_delay(self, rng: random.Random) -> SimTime:
        """Delay of a loop-back message (a node sending to itself)."""
        return 0.0005


class UniformLatencyModel(LatencyModel):
    """A flat latency model: every link has the same base delay plus jitter.

    Useful for unit tests and for isolating protocol effects from
    geography in ablation benchmarks.
    """

    def __init__(self, base_delay: SimTime = 0.05, jitter: SimTime = 0.005) -> None:
        if base_delay < 0 or jitter < 0:
            raise NetworkError("delays must be non-negative")
        self.base_delay = base_delay
        self.jitter = jitter

    def one_way_delay(
        self,
        sender_region: Region,
        recipient_region: Region,
        rng: random.Random,
    ) -> SimTime:
        if sender_region == recipient_region and self.base_delay > 0.002:
            base = self.base_delay / 5.0
        else:
            base = self.base_delay
        return max(0.0002, base + rng.uniform(-self.jitter, self.jitter))


class GeoLatencyModel(LatencyModel):
    """Latency model following the paper's thirteen-region AWS topology."""

    def __init__(
        self,
        jitter_fraction: float = 0.10,
        extra_latency: Optional[Mapping[str, SimTime]] = None,
    ) -> None:
        """Create the model.

        ``jitter_fraction`` scales multiplicative jitter on every message.
        ``extra_latency`` optionally adds a fixed per-region penalty, which
        the fault-injection layer uses to model "degraded" validators such
        as the ones in the Sui incident described in the introduction.
        """
        if jitter_fraction < 0:
            raise NetworkError("jitter_fraction must be non-negative")
        self.jitter_fraction = jitter_fraction
        self.extra_latency = dict(extra_latency or {})
        # Per-pair base delays are pure functions of the region names;
        # memoized because one is computed per message sent.  The dynamic
        # ``extra_latency`` penalties are applied outside the cache.
        self._base_cache: Dict[Tuple[str, str], SimTime] = {}

    def base_delay(self, sender_region: Region, recipient_region: Region) -> SimTime:
        key = (sender_region.name, recipient_region.name)
        cached = self._base_cache.get(key)
        if cached is not None:
            return cached
        area_a = _AREA_OF_REGION.get(sender_region.name)
        area_b = _AREA_OF_REGION.get(recipient_region.name)
        if area_a is None or area_b is None:
            # Unknown (synthetic) regions fall back to a moderate WAN delay.
            base = 0.060
        else:
            base = _area_pair_latency(area_a, area_b)
            # Perturb deterministically per region pair so links are not all
            # identical inside an area pair.  A stable checksum is used
            # instead of ``hash`` so the value does not depend on
            # PYTHONHASHSEED.
            checksum = zlib.crc32(f"{sender_region.name}|{recipient_region.name}".encode("ascii"))
            base += (checksum % 7) * 0.001
        self._base_cache[key] = base
        return base

    def one_way_delay(
        self,
        sender_region: Region,
        recipient_region: Region,
        rng: random.Random,
    ) -> SimTime:
        cached = self._base_cache.get((sender_region.name, recipient_region.name))
        base = cached if cached is not None else self.base_delay(sender_region, recipient_region)
        extra = self.extra_latency
        if extra:
            base += extra.get(sender_region.name, 0.0)
            base += extra.get(recipient_region.name, 0.0)
        jitter = base * self.jitter_fraction
        # Inlined ``rng.uniform(-jitter, jitter)``: uniform(a, b) computes
        # ``a + (b - a) * random()`` with b - a = 2 * jitter exactly, so
        # the expression below is bit-identical while skipping the method
        # call (one draw per message sent).
        return max(0.0002, base + (jitter * 2.0 * rng.random() - jitter))
