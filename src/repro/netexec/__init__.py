"""Real-network execution backend (asyncio sockets) with a sim oracle.

The package has two halves with very different determinism stories:

``codec`` and ``lockstep`` are **pure**: a canonical length-prefixed
wire codec for the existing message dataclasses, and a lockstep
execution mode whose committed order is a content-deterministic
function of the :class:`~repro.sim.experiment.ExperimentConfig` alone
(round advancement waits for every expected vertex; crashes are
plan-driven round decisions; blocks are plan-synthesized).  Lockstep
runs unchanged on the discrete-event simulator (``--backend lockstep``,
the oracle) and over real sockets (``--backend net``), and both must
commit byte-identical ordering digests.

``clock``, ``transport``, and ``runner`` are the **deployment-facing**
half: they read monotonic wall clocks and sockets by design, live
outside the digest purity closure, and are allowlisted for DET002 via
``AnalyzerConfig.wallclock_allowlist`` (see ``repro/analysis/config.py``).

The asyncio imports stay lazy here so that importing pure pieces (the
codec property tests, the lockstep oracle) never drags event-loop
machinery into sim-only processes.
"""

from repro.netexec.codec import (
    CodecError,
    FrameError,
    MAX_FRAME_BYTES,
    decode,
    decode_frames,
    encode,
    encode_frame,
)
from repro.netexec.lockstep import (
    LockstepNode,
    LockstepPlan,
    LockstepSimulationRunner,
    plan_for_config,
    run_lockstep_experiment,
)

__all__ = [
    "CodecError",
    "FrameError",
    "MAX_FRAME_BYTES",
    "decode",
    "decode_frames",
    "encode",
    "encode_frame",
    "LockstepNode",
    "LockstepPlan",
    "LockstepSimulationRunner",
    "plan_for_config",
    "run_lockstep_experiment",
]
