"""Run one experiment over real sockets and assemble an ExperimentResult.

``run_net_experiment`` is the socket-backed sibling of
:func:`repro.netexec.lockstep.run_lockstep_experiment`: the same
:class:`~repro.netexec.lockstep.LockstepPlan`, the same
:class:`~repro.netexec.lockstep.LockstepNode` stack, the same schedule
managers — but the network is an
:class:`~repro.netexec.transport.AsyncioTransport` over Unix domain
sockets (or local TCP) and the clock is the event loop's monotonic
clock.  Because lockstep makes the committed order a pure function of
the plan, the result's ordering digests must be byte-identical to the
oracle's; the CI ``cross-backend-smoke`` job enforces exactly that via
``python -m repro.scenarios diff``.

The run ends on **quiescence**: every alive validator has reached the
plan's final round and the transport has stopped delivering.  A run
that fails to quiesce inside ``runtime_limit`` (a stuck transport, a
dead task) raises :class:`~repro.errors.ReproError` with the per-node
round positions, rather than hanging CI.

Load-derived report fields (throughput, latency, transaction counts)
are zero on both lockstep-family backends — lockstep synthesizes
blocks, it does not model client traffic — so cross-backend artifacts
stay field-comparable.  Wall-clock reads here are diagnostics only
(trace stamps, quiescence timing); the module is DET002-allowlisted and
outside the purity closure.
"""

from __future__ import annotations

import asyncio
import tempfile
from typing import Any, Dict

from repro.errors import ReproError
from repro.metrics.leader_stats import LeaderUtilizationStats
from repro.metrics.report import PerformanceReport
from repro.metrics.reputation import reputation_metrics
from repro.netexec.clock import MonotonicScheduler
from repro.netexec.lockstep import (
    LockstepNode,
    build_committee,
    check_lockstep_quiescence,
    make_schedule_manager_factory,
    plan_for_config,
)
from repro.netexec.transport import AsyncioTransport
from repro.sim.experiment import ExperimentConfig, ExperimentResult
from repro.sim.presets import node_config_for

DEFAULT_RUNTIME_LIMIT = 120.0

# Consecutive idle polls (no new deliveries, all alive nodes at the
# final round) before the run is declared quiescent.
_QUIESCENT_POLLS = 5
_POLL_INTERVAL = 0.05


def run_net_experiment(
    config: ExperimentConfig,
    family: str = "uds",
    runtime_limit: float = DEFAULT_RUNTIME_LIMIT,
) -> ExperimentResult:
    """Run ``config`` in lockstep mode over real sockets."""
    return asyncio.run(_run_async(config.validate(), family, runtime_limit))


async def _run_async(
    config: ExperimentConfig, family: str, runtime_limit: float
) -> ExperimentResult:
    committee = build_committee(config)
    plan = plan_for_config(config, committee)
    loop = asyncio.get_running_loop()
    scheduler = MonotonicScheduler(loop, seed=config.seed)

    node_config = node_config_for(
        config.committee_size, leader_timeout=config.leader_timeout
    )
    if config.min_round_interval is not None:
        node_config.min_round_interval = config.min_round_interval
    if config.max_batch_size is not None:
        node_config.max_batch_size = config.max_batch_size
    node_config.record_sequence = config.record_sequences
    node_config.certificate_batching = config.certificate_batching
    node_config.scoring_rule = config.scoring
    node_config.max_round = plan.max_round
    node_config = node_config.validate()

    with tempfile.TemporaryDirectory(prefix="repro-netexec-") as socket_dir:
        transport = AsyncioTransport(scheduler, socket_dir=socket_dir, family=family)
        factory = make_schedule_manager_factory(
            config, committee, node_config.scoring_rule
        )
        nodes = {}
        for validator in committee.validators:
            nodes[validator] = LockstepNode(
                validator_id=validator,
                committee=committee,
                network=transport,
                schedule_manager=factory(),
                config=node_config,
                schedule_manager_factory=factory,
                plan=plan,
            )

        leader_stats = LeaderUtilizationStats()
        observer = nodes[config.observer]
        observer.on_commit(leader_stats.record_commit)

        tracer = None
        if config.trace:
            from repro.obs.registry import InstrumentationRegistry
            from repro.obs.trace import MemoryTracer

            tracer = MemoryTracer(
                clock=lambda: scheduler.now, max_events=config.trace_limit
            )
            registry = InstrumentationRegistry()
            transport.install_observability(tracer, registry)
            for _validator, node in sorted(nodes.items()):
                node.install_observability(tracer, registry)

        await transport.start()
        for _validator, node in sorted(nodes.items()):
            node.start()
        await _wait_quiescent(plan, nodes, transport, scheduler, runtime_limit)
        await transport.shutdown()
        check_lockstep_quiescence(plan, nodes)

        return _build_result(
            config, plan, nodes, transport, scheduler, leader_stats, tracer
        )


async def _wait_quiescent(plan, nodes, transport, scheduler, runtime_limit) -> None:
    deadline = scheduler.now + runtime_limit
    last_delivered = -1
    idle_polls = 0
    while True:
        await asyncio.sleep(_POLL_INTERVAL)
        if transport.handler_errors:
            raise ReproError(
                "net backend handler failure: "
                f"{transport.handler_errors[0]!r} (see transport.events)"
            )
        if scheduler.now >= deadline:
            positions = {
                validator: (node.current_round, node.crashed)
                for validator, node in sorted(nodes.items())
            }
            raise ReproError(
                f"net backend did not quiesce within {runtime_limit:.0f}s; "
                f"target round {plan.max_round}, positions {positions}, "
                f"last transport events: {transport.events[-5:]}"
            )
        alive_done = all(
            node.crashed or node.current_round >= plan.max_round
            for node in nodes.values()
        )
        if not alive_done:
            idle_polls = 0
            continue
        delivered = transport.stats.messages_delivered
        if delivered != last_delivered:
            last_delivered = delivered
            idle_polls = 0
            continue
        idle_polls += 1
        if idle_polls >= _QUIESCENT_POLLS:
            return


def _build_result(
    config, plan, nodes, transport, scheduler, leader_stats, tracer
) -> ExperimentResult:
    observer = nodes[config.observer]
    leader_stats.finalize_skips(
        observer.consensus.last_ordered_anchor_round,
        observer.schedule_manager.leader_for_round,
    )
    crashed = [
        validator for validator in sorted(nodes) if transport.is_crashed(validator)
    ]
    report = PerformanceReport(
        system=config.protocol,
        committee_size=config.committee_size,
        faults=config.faults,
        input_load_tps=config.input_load_tps,
        duration=config.duration,
        throughput_tps=0.0,
        avg_latency_s=0.0,
        p50_latency_s=0.0,
        p95_latency_s=0.0,
        stdev_latency_s=0.0,
        committed_transactions=0,
        submitted_transactions=0,
        commits=observer.commit_count,
        skipped_anchor_rounds=leader_stats.skips,
        leader_timeouts=sum(
            node.leader_timeouts_suffered for node in nodes.values() if not node.crashed
        ),
        schedule_changes=len(observer.schedule_manager.history) - 1,
        extra={
            "events_fired": float(scheduler.events_fired),
            "messages_delivered": float(transport.stats.messages_delivered),
            "observer_round": float(observer.current_round),
        },
    )
    ordering_digests = {
        validator: (node.consensus.ordered_count, node.consensus.ordering_digest)
        for validator, node in nodes.items()
    }
    ordering_checkpoints = {
        validator: list(node.consensus.ordering_checkpoints)
        for validator, node in nodes.items()
    }
    counters: Dict[str, Any] = {
        "always": {
            "net.messages_sent": float(transport.stats.messages_sent),
            "net.messages_delivered": float(transport.stats.messages_delivered),
            "net.messages_dropped": float(transport.stats.messages_dropped),
            "net.broadcasts": float(transport.stats.broadcasts),
            "net.transport_events": float(len(transport.events)),
            "sim.events_fired": float(scheduler.events_fired),
            "node.proposals_made": float(
                sum(node.proposals_made for node in nodes.values())
            ),
            "node.fetch_requests": float(
                sum(node.fetch_requests_sent for node in nodes.values())
            ),
        }
    }
    return ExperimentResult(
        config=config,
        report=report,
        ordering_digests=ordering_digests,
        ordering_checkpoints=ordering_checkpoints,
        schedule_epochs={
            validator: node.schedule_manager.epochs for validator, node in nodes.items()
        },
        schedule_histories={
            validator: [
                (schedule.epoch, schedule.initial_round)
                for schedule in node.schedule_manager.history
            ]
            for validator, node in nodes.items()
        },
        leader_timeouts={
            validator: node.leader_timeouts_suffered
            for validator, node in nodes.items()
        },
        commits_per_leader=leader_stats.commits_per_leader(),
        skipped_rounds_per_leader=leader_stats.skipped_rounds_per_leader(),
        crashed_validators=crashed,
        # faulty=() mirrors the lockstep oracle, whose time-based fault
        # injector is empty (crashes are plan-driven), so the reputation
        # block of both backends' artifacts matches field for field.
        reputation=reputation_metrics(observer.schedule_manager, faulty=[]),
        counters=counters,
        trace=tracer.export_events() if tracer is not None else [],
        profile={},
    )
