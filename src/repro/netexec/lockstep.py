"""Lockstep execution: a content-deterministic mode both backends share.

The free-running simulation is deterministic because its *time* is
deterministic: every delivery is a seeded draw on one virtual clock, so
parent sets — and with them the committed order — are reproducible.  A
real-network backend has no such clock, and naively replaying the
protocol over sockets commits an order that depends on OS scheduling.

Lockstep mode removes time from the equation instead of reproducing
it.  A :class:`LockstepPlan`, derived purely from the
:class:`~repro.sim.experiment.ExperimentConfig`, fixes everything the
committed order depends on:

* the final round (``max_round``),
* which validators crash, as *round* decisions, not timestamps
  (``crash_rounds``: the validator stops right before proposing that
  round, mirroring the sim's crash-at-time semantics where t=0 means
  "never proposes"),
* the synthetic block carried by each (round, source) proposal.

A :class:`LockstepNode` advances to round ``r+1`` only when it holds
*every* vertex expected at round ``r`` (all validators alive at ``r``),
so its parent set each round is exactly the expected set — under any
network that eventually delivers, on the simulator or over sockets, the
DAG every validator builds is identical, and the Bullshark commit rule
(a pure function of DAG contents) orders the identical prefix.  That is
the cross-validation contract: ``--backend lockstep`` (this file, run
on the discrete-event simulator — the oracle) and ``--backend net``
(``repro/netexec/runner.py``, real asyncio sockets) must produce
byte-identical ordering digests for the same spec + seed.

This module is pure (no wall clock, no sockets): it runs entirely on
the simulated clock and stays outside the analyzer's wall-clock
allowlist.  Plain ``--backend sim`` digests are untouched — lockstep is
a separate mode, not a change to the free-running semantics.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.committee import Committee, equal_stake, geometric_stake, zipfian_stake
from repro.core.manager import (
    HammerHeadScheduleManager,
    ScheduleManager,
    StaticScheduleManager,
)
from repro.core.schedule_change import CommitCountPolicy, RoundBasedPolicy
from repro.core.scoring import make_scoring_rule
from repro.errors import ReproError
from repro.faults.base import FaultInjector, tail_validators
from repro.faults.crash import CrashFault
from repro.node.validator import ValidatorNode
from repro.schedule.round_robin import initial_schedule
from repro.sim.experiment import (
    ExperimentConfig,
    ExperimentResult,
    PROTOCOL_HAMMERHEAD,
)
from repro.sim.runner import SimulationRunner
from repro.types import Round, ValidatorId, VertexId
from repro.workload.transactions import Transaction

# Rounds advance at roughly one per virtual second of configured
# duration (the certified-broadcast round trip is ~0.3-0.5s of simulated
# latency), so duration-many rounds always finish well inside the
# simulated window; the cap bounds socket-backend runtimes.
MAX_LOCKSTEP_ROUNDS = 400


@dataclasses.dataclass(frozen=True)
class LockstepPlan:
    """Everything the committed order depends on, fixed up front."""

    validators: Tuple[ValidatorId, ...]
    max_round: Round
    # (validator, crash round) pairs, sorted by validator; the validator
    # participates in every round strictly below its crash round.
    crash_rounds: Tuple[Tuple[ValidatorId, Round], ...]

    @property
    def committee_size(self) -> int:
        return len(self.validators)

    def crash_round_of(self, validator: ValidatorId) -> Optional[Round]:
        for candidate, round_number in self.crash_rounds:
            if candidate == validator:
                return round_number
        return None

    def expected(self, round_number: Round) -> Tuple[ValidatorId, ...]:
        """Validators that propose at ``round_number``."""
        crashed = {v: r for v, r in self.crash_rounds}
        return tuple(
            v for v in self.validators
            if v not in crashed or round_number < crashed[v]
        )

    def crashed_validators(self) -> Tuple[ValidatorId, ...]:
        return tuple(v for v, _ in self.crash_rounds)

    def block_size(self, round_number: Round, source: ValidatorId) -> int:
        """Synthetic per-proposal block size (a pure function of the slot)."""
        return (round_number * 7 + source * 3) % 5


def build_committee(config: ExperimentConfig) -> Committee:
    """The committee for ``config`` (same construction as the sim runner)."""
    size = config.committee_size
    if config.stake == "equal":
        stake = equal_stake(size)
    elif config.stake == "geometric":
        stake = geometric_stake(size)
    else:
        stake = zipfian_stake(size)
    return Committee.build(size, stake=stake, seed=config.seed)


def _crash_round_of_time(at_time: float) -> Round:
    """Map a sim crash time to a lockstep crash round.

    The convention mirrors the sim at the granularity the ordering
    digest can see: a validator crashed at t=0 never proposes (crash
    round 1), and later crash times stop the validator at a round that
    grows with the time.  The mapping is a convention, not a timing
    claim — lockstep equivalence is defined over the *plan*, and both
    backends apply the identical plan.
    """
    return max(1, int(at_time) + 1)


def plan_for_config(
    config: ExperimentConfig, committee: Optional[Committee] = None
) -> LockstepPlan:
    """Derive the lockstep plan from the experiment config alone.

    Raises :class:`ReproError` for fault kinds the lockstep backends
    cannot express deterministically (anything but crashes), and for
    crash sets that would break liveness (no alive quorum, or a crashed
    observer).
    """
    config = config.validate()
    if committee is None:
        committee = build_committee(config)

    crashes: Dict[ValidatorId, Round] = {}
    if config.faults > 0:
        round_number = _crash_round_of_time(config.fault_time)
        for validator in tail_validators(
            committee, config.faults, protect=(config.observer,)
        ):
            crashes[validator] = round_number
    for plan in config.extra_faults:
        if isinstance(plan, CrashFault):
            round_number = _crash_round_of_time(plan.at_time)
            for validator in plan.validators:
                existing = crashes.get(validator)
                if existing is None or round_number < existing:
                    crashes[validator] = round_number
        else:
            raise ReproError(
                "the lockstep/net backends support crash faults only; "
                f"cannot express fault plan: {plan.describe()}"
            )

    if config.observer in crashes:
        raise ReproError(
            f"observer {config.observer} is crashed by the fault plan; "
            "lockstep runs need a live observer"
        )
    alive = tuple(v for v in committee.validators if v not in crashes)
    if not committee.has_quorum(alive):
        raise ReproError(
            f"crash plan leaves {len(alive)}/{committee.size} validators alive, "
            "below a stake quorum; the lockstep run could never certify a round"
        )

    rounds = int(config.duration)
    max_round = max(4, min(rounds - rounds % 2, MAX_LOCKSTEP_ROUNDS))
    return LockstepPlan(
        validators=tuple(committee.validators),
        max_round=max_round,
        crash_rounds=tuple(sorted(crashes.items())),
    )


def make_schedule_manager_factory(
    config: ExperimentConfig,
    committee: Committee,
    scoring_rule: str,
) -> Callable[[], ScheduleManager]:
    """Per-validator schedule managers (same wiring as the sim runner).

    Shared by the lockstep-on-sim oracle and the socket backend so the
    two can never drift apart on reputation/scheduling construction.
    """

    def factory() -> ScheduleManager:
        schedule = initial_schedule(committee, seed=config.seed)
        if config.protocol != PROTOCOL_HAMMERHEAD:
            return StaticScheduleManager(committee, schedule)
        if config.schedule_change_policy == "commits":
            policy = CommitCountPolicy(config.commits_per_schedule)
        else:
            policy = RoundBasedPolicy(config.rounds_per_schedule)
        scoring = make_scoring_rule(scoring_rule)
        return HammerHeadScheduleManager(
            committee,
            schedule,
            policy=policy,
            scoring=scoring,
            exclude_fraction=config.exclude_fraction,
        )

    return factory


class LockstepNode(ValidatorNode):
    """A validator whose round advancement is content-deterministic.

    Overrides exactly the timing-dependent decision points of
    :class:`~repro.node.validator.ValidatorNode`:

    * advancement waits for *all* expected vertices of the current round
      (not merely a quorum), so parent sets cannot depend on arrival
      timing;
    * advancement is strictly ``r -> r+1`` (no frontier jumps — every
      alive validator must propose in every round, or peers would wait
      forever);
    * pacing and anchor timers are disabled (waiting for the full
      expected set subsumes the anchor-or-timeout condition: an alive
      leader's vertex is always waited for, a crashed leader is not
      expected and is skipped deterministically by the commit rule);
    * crashes are plan-driven round decisions;
    * blocks are plan-synthesized, not drawn from a client pool.

    Everything else — certified broadcast, the DAG store, the commit
    rule, reputation scheduling, the synchronizer — is the production
    path, unmodified.
    """

    def __init__(self, *args, plan: LockstepPlan, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.plan = plan
        self._crash_round = plan.crash_round_of(self.id)
        self._lockstep_waiting_on: Tuple[ValidatorId, ...] = ()

    # -- plan-driven crash ---------------------------------------------------------

    def _enter_round(self, round_number: Round) -> None:
        if self._crash_round is not None and round_number >= self._crash_round:
            self.crash()
            return
        super()._enter_round(round_number)

    # -- content-deterministic advancement ----------------------------------------

    def _start_anchor_timer(self, round_number: Round) -> None:
        # Disabled: lockstep never times a leader out (see class docstring).
        return

    def _maybe_advance(self) -> None:
        if not self.started or self.crashed:
            return
        if self._advance_handle is not None:
            return
        round_number = self.current_round
        if self.config.max_round is not None and round_number >= self.config.max_round:
            return
        # Our own vertex must have been certified and delivered back to us.
        if self.dag.vertex_of(round_number, self.id) is None:
            return
        missing = tuple(
            source for source in self.plan.expected(round_number)
            if self.dag.vertex_of(round_number, source) is None
        )
        self._lockstep_waiting_on = missing
        if missing:
            # Liveness insurance for lossy transports: if the round stays
            # incomplete past the fetch interval, ask a peer explicitly.
            self._schedule_lockstep_repair(round_number)
            return
        self._schedule_advance()

    def _schedule_advance(self) -> None:
        def advance() -> None:
            self._advance_handle = None
            if self.crashed:
                return
            self._enter_round(self.current_round + 1)

        self._advance_handle = self.simulator.schedule(0.0, advance)

    def _schedule_lockstep_repair(self, round_number: Round) -> None:
        if self._fetch_timer is not None:
            return

        def repair() -> None:
            self._fetch_timer = None
            if self.crashed or self.current_round != round_number:
                return
            still = tuple(
                source for source in self.plan.expected(round_number)
                if self.dag.vertex_of(round_number, source) is None
            )
            if not still:
                self._maybe_advance()
                return
            self._fetch_requested.clear()
            self._request_missing(
                [VertexId(round_number, source) for source in still],
                preferred_peer=self._random_peer(),
            )
            self._schedule_lockstep_repair(round_number)

        self._fetch_timer = self.simulator.schedule(
            self.config.fetch_retry_interval, repair
        )

    # -- plan-synthesized workload --------------------------------------------------

    def _next_batch(self):
        round_number = self.current_round
        size = self.plan.block_size(round_number, self.id)
        base = (round_number * self.plan.committee_size + self.id) * 16
        return tuple(
            Transaction(
                tx_id=base + index,
                client_id=self.id,
                submitted_at=0.0,
                target_validator=self.id,
            )
            for index in range(size)
        )


class LockstepSimulationRunner(SimulationRunner):
    """The lockstep oracle: lockstep nodes on the discrete-event simulator."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.plan = plan_for_config(config)
        super().__init__(config)

    def _build_node_config(self):
        base = super()._build_node_config()
        base.max_round = self.plan.max_round
        return base.validate()

    def _schedule_manager_factory(self):
        return make_schedule_manager_factory(
            self.config, self.committee, self.node_config.scoring_rule
        )

    def _build_nodes(self) -> None:
        factory = self._schedule_manager_factory()
        for validator in self.committee.validators:
            self.nodes[validator] = LockstepNode(
                validator_id=validator,
                committee=self.committee,
                network=self.network,
                schedule_manager=factory(),
                config=self.node_config,
                schedule_manager_factory=factory,
                plan=self.plan,
            )

    def _build_faults(self) -> FaultInjector:
        # Crashes are plan-driven round decisions inside LockstepNode;
        # the time-based injector stays empty.
        return FaultInjector([])

    def _start_load(self) -> None:
        # Blocks are plan-synthesized inside LockstepNode._next_batch.
        self._load_generators = []

    def _wire_observers(self) -> None:
        # No client load means no latency/throughput samples; attaching
        # the metrics collector would count plan-synthesized blocks with
        # meaningless submit times.  The report carries zeros for the
        # load-derived fields on *both* lockstep-family backends, so
        # cross-backend artifacts stay comparable.
        observer = self.nodes[self.config.observer]
        observer.on_commit(self.leader_stats.record_commit)


def check_lockstep_quiescence(plan: LockstepPlan, nodes) -> None:
    """Every alive node must have reached the plan's final round."""
    stuck: List[str] = []
    for validator, node in sorted(nodes.items()):
        if node.crashed:
            continue
        if node.current_round < plan.max_round:
            waiting = getattr(node, "_lockstep_waiting_on", ())
            stuck.append(
                f"validator {validator} stopped at round {node.current_round}"
                f"/{plan.max_round} (waiting on sources {list(waiting)})"
            )
    if stuck:
        raise ReproError(
            "lockstep run did not complete every planned round "
            "(increase duration or check transport liveness): " + "; ".join(stuck)
        )


def run_lockstep_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run ``config`` in lockstep mode on the simulator (the oracle)."""
    runner = LockstepSimulationRunner(config)
    result = runner.run()
    check_lockstep_quiescence(runner.plan, runner.nodes)
    return result
