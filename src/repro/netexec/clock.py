"""Monotonic-clock scheduler: the Simulator facade for the net backend.

:class:`~repro.node.validator.ValidatorNode` drives all of its timing
through ``network.simulator`` — ``now``, ``schedule``/``schedule_at``/
``cancel``, the seeded ``rng``, and the ``events_fired`` counter.  This
module implements that exact surface over a running asyncio event loop,
so the full validator stack runs over real sockets unmodified.

``now`` is the loop's monotonic clock re-based to the scheduler's
construction instant.  It is wall time: **non-deterministic by design**
and therefore never digest-bearing — lockstep mode keeps every
digest-relevant decision off the clock (see ``repro/netexec/lockstep.py``),
and these timestamps only reach diagnostics (vertex ``created_at``,
trace stamps, which the artifact diff never compares).  This module is
allowlisted for DET002 (``AnalyzerConfig.wallclock_allowlist``) and
must never be imported by the purity closure.
"""

from __future__ import annotations

import asyncio
import random
from typing import Callable

from repro.errors import SimulationError
from repro.types import SimTime


class MonotonicScheduler:
    """`Simulator`-shaped timing facade over an asyncio event loop."""

    def __init__(self, loop: asyncio.AbstractEventLoop, seed: int) -> None:
        self._loop = loop
        self._epoch = loop.time()
        self._events_fired = 0
        self.seed = seed
        # One shared seeded stream, like Simulator.rng.  The *sequence*
        # of draws differs from the sim's (consumption order follows
        # real scheduling), which is exactly why lockstep keeps every
        # digest-relevant decision off the rng draw order.
        self.rng = random.Random(seed)

    @property
    def now(self) -> SimTime:
        return self._loop.time() - self._epoch

    @property
    def events_fired(self) -> int:
        return self._events_fired

    def schedule(self, delay: SimTime, callback: Callable[[], None]):
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.3f}s into the past")

        def fire() -> None:
            self._events_fired += 1
            callback()

        return self._loop.call_later(delay, fire)

    def schedule_at(self, time: SimTime, callback: Callable[[], None]):
        return self.schedule(max(0.0, time - self.now), callback)

    def cancel(self, handle) -> None:
        handle.cancel()
