"""Canonical length-prefixed wire codec for the protocol messages.

Every value the validators exchange — the broadcast-layer messages in
``repro/rbc/messages.py``, the synchronizer messages in
``repro/node/messages.py``, and the objects they carry (vertices,
transactions, schedules, snapshots) — encodes to a canonical byte
string: one tag byte per value, big-endian fixed-width numbers,
length-prefixed strings/bytes, and *sorted* encodings for sets and
dicts so that equal values always produce identical bytes regardless of
insertion order.  ``decode(encode(x)) == x`` and
``encode(decode(encode(x))) == encode(x)`` hold for every registered
type (pinned by the property suite in
``tests/property/test_prop_netexec_codec.py``).

Frames on the wire are ``>I`` (4-byte big-endian) length prefixes
followed by the encoded body.  The decoder is defensive: every length
field is bounds-checked against the remaining input before any
allocation, oversized/zero-length frames are rejected, and a decoded
body must consume its input exactly — so truncated, padded, or garbage
frames raise :class:`CodecError`/:class:`FrameError` instead of hanging
or crashing the reader (the transport closes the connection with a
logged reason; see ``repro/netexec/transport.py``).

Decoded vertices are integrity-checked: the carried digest must equal
the digest recomputed from the decoded fields, so a corrupted or forged
vertex body is rejected at the codec boundary, before any protocol code
sees it.

This module is pure (no clock, no randomness, no sockets) and is safe
to import from tests and from the lockstep oracle.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any, Callable, Dict, List, Tuple

from repro.dag.vertex import Vertex
from repro.errors import ReproError
from repro.crypto.hashing import vertex_digest
from repro.node.messages import ConsensusSnapshot, FetchRequest, FetchResponse
from repro.rbc.messages import (
    AckMessage,
    BroadcastMessage,
    CertificateBatch,
    CertificateMessage,
    EchoMessage,
    PiggybackedPropose,
    ProposeMessage,
    ReadyMessage,
)
from repro.schedule.base import LeaderSchedule
from repro.types import VertexId
from repro.workload.transactions import Transaction


class CodecError(ReproError):
    """A value cannot be encoded, or a body cannot be decoded."""


class FrameError(CodecError):
    """A frame header/body violates the framing contract."""


# A single frame must fit the largest deep FetchResponse we ever expect
# at supported committee sizes, with a wide margin; anything larger is a
# protocol violation or an attack and is rejected before allocation.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

# Value tags.  Mnemonics follow repro.crypto.hashing._canonical_bytes
# where the two overlap (N/I/S/Y/L/E/D), plus T/F booleans, R float
# ("real"), and O for registered objects.
_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"R"
_TAG_STR = b"S"
_TAG_BYTES = b"Y"
_TAG_TUPLE = b"L"
_TAG_FROZENSET = b"E"
_TAG_DICT = b"D"
_TAG_OBJECT = b"O"


@dataclasses.dataclass(frozen=True)
class Hello:
    """The first frame on every connection: identifies the sender."""

    node_id: int


@dataclasses.dataclass(frozen=True)
class _TypeSpec:
    code: int
    cls: type
    fields: Tuple[str, ...]
    build: Callable[[tuple], Any]


def _build_vertex(fields: tuple) -> Vertex:
    vertex_id, edges, block, digest, created_at = fields
    if not isinstance(vertex_id, VertexId):
        raise CodecError("vertex id field must decode to a VertexId")
    if not isinstance(edges, frozenset):
        raise CodecError("vertex edges field must decode to a frozenset")
    expected = vertex_digest(
        vertex_id.round,
        vertex_id.source,
        sorted(edges),
        len(block),
    )
    if digest != expected:
        raise CodecError(
            f"vertex {vertex_id.round}/{vertex_id.source} digest mismatch: "
            "carried digest does not match the recomputed content digest"
        )
    return Vertex(
        id=vertex_id,
        edges=edges,
        block=block,
        digest=digest,
        created_at=created_at,
    )


def _spec(code: int, cls: type, fields: Tuple[str, ...], build: Callable[[tuple], Any] = None) -> _TypeSpec:
    if build is None:
        def build(values, _cls=cls, _fields=fields):
            return _cls(**dict(zip(_fields, values)))
    return _TypeSpec(code=code, cls=cls, fields=fields, build=build)


# Registered object types.  Codes are part of the wire format: append
# new entries, never renumber existing ones.
_SPECS: Tuple[_TypeSpec, ...] = (
    _spec(1, Hello, ("node_id",)),
    _spec(2, VertexId, ("round", "source"), build=lambda v: VertexId(*v)),
    _spec(3, Vertex, ("id", "edges", "block", "digest", "created_at"), build=_build_vertex),
    _spec(
        4,
        Transaction,
        ("tx_id", "client_id", "submitted_at", "target_validator", "kind", "payload_bytes"),
        build=lambda v: Transaction(*v),
    ),
    _spec(5, LeaderSchedule, ("epoch", "initial_round", "slots")),
    _spec(
        6,
        ConsensusSnapshot,
        (
            "last_ordered_anchor_round",
            "gc_round",
            "schedules",
            "scores",
            "commits_in_epoch",
            "ordered_vertices",
            "vote_accounting",
        ),
    ),
    _spec(7, FetchRequest, ("requester", "missing", "deep")),
    _spec(8, FetchResponse, ("responder", "vertices", "responder_gc_round", "snapshot")),
    _spec(9, BroadcastMessage, ("origin", "round", "digest")),
    _spec(10, ProposeMessage, ("origin", "round", "digest", "payload")),
    _spec(11, AckMessage, ("origin", "round", "digest", "voter")),
    _spec(12, CertificateMessage, ("origin", "round", "digest", "payload", "signers")),
    _spec(13, CertificateBatch, ("origin", "round", "digest", "certificates")),
    _spec(14, EchoMessage, ("origin", "round", "digest", "payload")),
    _spec(15, ReadyMessage, ("origin", "round", "digest")),
    _spec(16, PiggybackedPropose, ("origin", "round", "digest", "payload", "certificates")),
)

# Dispatch must be by exact class, not isinstance: the rbc messages form
# an inheritance chain and each subclass has its own code.
_SPEC_BY_CLASS: Dict[type, _TypeSpec] = {spec.cls: spec for spec in _SPECS}
_SPEC_BY_CODE: Dict[int, _TypeSpec] = {spec.code: spec for spec in _SPECS}

MESSAGE_TYPES: Tuple[type, ...] = tuple(spec.cls for spec in _SPECS)


# -- encoding ----------------------------------------------------------------


def _encode_into(value: Any, out: List[bytes]) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif type(value) is int:
        try:
            out.append(_TAG_INT + _I64.pack(value))
        except struct.error:
            raise CodecError(f"integer {value} exceeds the 64-bit wire range") from None
    elif type(value) is float:
        out.append(_TAG_FLOAT + _F64.pack(value))
    elif type(value) is str:
        raw = value.encode("utf-8")
        out.append(_TAG_STR + _HEADER.pack(len(raw)) + raw)
    elif type(value) is bytes:
        out.append(_TAG_BYTES + _HEADER.pack(len(value)) + value)
    elif type(value) in (tuple, list):
        out.append(_TAG_TUPLE + _HEADER.pack(len(value)))
        for item in value:
            _encode_into(item, out)
    elif type(value) is frozenset or type(value) is set:
        # Canonical order: sort by encoded bytes, so equal sets encode
        # identically whatever their in-memory iteration order.
        out.append(_TAG_FROZENSET + _HEADER.pack(len(value)))
        out.extend(sorted(encode(item) for item in value))
    elif type(value) is dict:
        out.append(_TAG_DICT + _HEADER.pack(len(value)))
        pairs = sorted(
            (encode(key), encode(item)) for key, item in value.items()
        )
        for encoded_key, encoded_value in pairs:
            out.append(encoded_key)
            out.append(encoded_value)
    else:
        spec = _SPEC_BY_CLASS.get(type(value))
        if spec is None:
            raise CodecError(f"type {type(value).__name__} is not wire-encodable")
        out.append(_TAG_OBJECT + bytes([spec.code]))
        for name in spec.fields:
            _encode_into(getattr(value, name), out)


def encode(value: Any) -> bytes:
    """Encode ``value`` to its canonical byte string (no frame header)."""
    out: List[bytes] = []
    _encode_into(value, out)
    return b"".join(out)


def encode_frame(value: Any) -> bytes:
    """Encode ``value`` and prepend the ``>I`` length header."""
    body = encode(value)
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"encoded frame is {len(body)} bytes, above the {MAX_FRAME_BYTES}-byte cap"
        )
    return _HEADER.pack(len(body)) + body


# -- decoding ----------------------------------------------------------------


class _Reader:
    """Bounds-checked cursor over a decode buffer."""

    __slots__ = ("data", "offset")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def take(self, count: int) -> bytes:
        end = self.offset + count
        if count < 0 or end > len(self.data):
            raise CodecError("truncated value: length field exceeds the remaining body")
        chunk = self.data[self.offset:end]
        self.offset = end
        return chunk

    def length(self) -> int:
        (value,) = _HEADER.unpack(self.take(4))
        # Each encoded item is at least one tag byte, so a count larger
        # than the remaining bytes is garbage; rejecting it here keeps a
        # hostile 4-byte count from driving a multi-gigabyte loop.
        if value > len(self.data) - self.offset:
            raise CodecError("length field exceeds the remaining body")
        return value


def _decode_value(reader: _Reader) -> Any:
    tag = reader.take(1)
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        (value,) = _I64.unpack(reader.take(8))
        return value
    if tag == _TAG_FLOAT:
        (value,) = _F64.unpack(reader.take(8))
        return value
    if tag == _TAG_STR:
        raw = reader.take(reader.length())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as error:
            raise CodecError(f"invalid utf-8 in string value: {error}") from error
    if tag == _TAG_BYTES:
        return reader.take(reader.length())
    if tag == _TAG_TUPLE:
        count = reader.length()
        return tuple(_decode_value(reader) for _ in range(count))
    if tag == _TAG_FROZENSET:
        count = reader.length()
        items = tuple(_decode_value(reader) for _ in range(count))
        decoded = frozenset(items)
        if len(decoded) != count:
            raise CodecError("duplicate items in encoded set")
        return decoded
    if tag == _TAG_DICT:
        count = reader.length()
        result = {}
        for _ in range(count):
            key = _decode_value(reader)
            result[key] = _decode_value(reader)
        if len(result) != count:
            raise CodecError("duplicate keys in encoded dict")
        return result
    if tag == _TAG_OBJECT:
        code = reader.take(1)[0]
        spec = _SPEC_BY_CODE.get(code)
        if spec is None:
            raise CodecError(f"unknown wire type code {code}")
        values = tuple(_decode_value(reader) for _ in spec.fields)
        try:
            return spec.build(values)
        except CodecError:
            raise
        except Exception as error:
            raise CodecError(
                f"cannot reconstruct {spec.cls.__name__} from wire fields: {error}"
            ) from error
    raise CodecError(f"unknown value tag {tag!r}")


def decode(body: bytes) -> Any:
    """Decode one canonical value; the body must be consumed exactly."""
    reader = _Reader(body)
    value = _decode_value(reader)
    if reader.offset != len(body):
        raise CodecError(
            f"frame body has {len(body) - reader.offset} trailing bytes after the value"
        )
    return value


def decode_frames(buffer: bytes) -> Tuple[Tuple[Any, ...], bytes]:
    """Decode every complete frame in ``buffer``.

    Returns ``(values, remainder)`` where ``remainder`` is the trailing
    partial frame (possibly empty).  Raises :class:`FrameError` on a
    header whose length is zero or above :data:`MAX_FRAME_BYTES` —
    garbage headers must kill the connection, not stall it.
    """
    values: List[Any] = []
    offset = 0
    while len(buffer) - offset >= 4:
        (length,) = _HEADER.unpack(buffer[offset:offset + 4])
        if length == 0 or length > MAX_FRAME_BYTES:
            raise FrameError(f"frame length {length} outside (0, {MAX_FRAME_BYTES}]")
        if len(buffer) - offset - 4 < length:
            break
        values.append(decode(buffer[offset + 4:offset + 4 + length]))
        offset += 4 + length
    return tuple(values), buffer[offset:]
